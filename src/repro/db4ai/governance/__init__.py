"""Data governance for AI (paper §2.2, category 2)."""

from repro.db4ai.governance.discovery import (
    EnterpriseKnowledgeGraph,
    joinable_pairs,
)
from repro.db4ai.governance.cleaning import (
    CorruptedDataset,
    ActiveCleanSession,
    RandomCleanSession,
    cleaning_curve,
)
from repro.db4ai.governance.labeling import (
    SimulatedCrowd,
    majority_vote,
    DawidSkene,
    active_label_acquisition,
)
from repro.db4ai.governance.lineage import (
    LineageTable,
    LineageTracker,
)

__all__ = [
    "EnterpriseKnowledgeGraph",
    "joinable_pairs",
    "CorruptedDataset",
    "ActiveCleanSession",
    "RandomCleanSession",
    "cleaning_curve",
    "SimulatedCrowd",
    "majority_vote",
    "DawidSkene",
    "active_label_acquisition",
    "LineageTable",
    "LineageTracker",
]
