"""Data labeling with a simulated crowd and truth inference.

The tutorial's labeling section [40, 57]: crowdsourcing platforms label
training data cheaply but noisily, so the DB4AI problem is *truth
inference* — recovering true labels from redundant noisy votes — and
*label acquisition* — spending the label budget where it helps most.

Implemented: a worker pool with per-worker confusion matrices, majority
vote, Dawid–Skene EM (which jointly estimates worker reliabilities and
true labels), and uncertainty-driven active acquisition.
"""

import numpy as np

from repro.common import ensure_rng


class SimulatedCrowd:
    """A pool of workers with hidden per-worker confusion matrices.

    Args:
        n_workers: pool size.
        n_classes: label-space size.
        reliability_range: per-worker probability of answering correctly is
            drawn uniformly from this range; errors are spread over the
            other classes with a worker-specific bias.
        n_spammers: workers who answer uniformly at random (the failure
            mode majority vote handles worst).
        seed: pool seed.
    """

    def __init__(self, n_workers=20, n_classes=3, reliability_range=(0.55, 0.95),
                 n_spammers=3, seed=0):
        rng = ensure_rng(seed)
        self._rng = rng
        self.n_workers = n_workers
        self.n_classes = n_classes
        self.confusion = np.zeros((n_workers, n_classes, n_classes))
        for w in range(n_workers):
            if w < n_spammers:
                self.confusion[w] = np.full((n_classes, n_classes),
                                            1.0 / n_classes)
                continue
            p = rng.uniform(*reliability_range)
            for c in range(n_classes):
                row = rng.dirichlet(np.ones(n_classes - 1)) * (1 - p)
                self.confusion[w, c] = np.insert(row, c, p)

    def label(self, true_class, worker):
        """One noisy label from ``worker`` for an item of ``true_class``."""
        return int(
            self._rng.choice(self.n_classes, p=self.confusion[worker, true_class])
        )

    def collect(self, true_labels, redundancy=3):
        """Random worker assignments with ``redundancy`` votes per item.

        Returns:
            votes: list (per item) of ``(worker, label)`` pairs.
        """
        votes = []
        for t in true_labels:
            workers = self._rng.choice(self.n_workers, size=redundancy,
                                       replace=False)
            votes.append([(int(w), self.label(int(t), int(w))) for w in workers])
        return votes


def majority_vote(votes, n_classes, seed=0):
    """Per-item plurality label (ties broken at random, seeded)."""
    rng = ensure_rng(seed)
    out = []
    for item_votes in votes:
        counts = np.zeros(n_classes)
        for __, label in item_votes:
            counts[label] += 1
        best = np.flatnonzero(counts == counts.max())
        out.append(int(best[rng.integers(0, len(best))]))
    return np.asarray(out)


class DawidSkene:
    """Dawid–Skene EM: jointly infer true labels and worker confusions.

    Args:
        n_classes: label-space size.
        max_iter: EM iterations.
        tol: convergence threshold on posterior change.
    """

    def __init__(self, n_classes, max_iter=50, tol=1e-5, smoothing=0.01):
        self.n_classes = n_classes
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.posteriors_ = None
        self.worker_confusion_ = None
        self.class_prior_ = None

    def fit(self, votes, n_workers):
        """Run EM on the vote lists; returns self."""
        n_items = len(votes)
        K = self.n_classes
        # Init posteriors with majority vote proportions.
        post = np.full((n_items, K), 1.0 / K)
        for i, item_votes in enumerate(votes):
            counts = np.zeros(K)
            for __, label in item_votes:
                counts[label] += 1
            if counts.sum():
                post[i] = (counts + 0.1) / (counts + 0.1).sum()
        for __ in range(self.max_iter):
            # M step: worker confusions + class prior from posteriors.
            conf = np.full((n_workers, K, K), self.smoothing)
            for i, item_votes in enumerate(votes):
                for w, label in item_votes:
                    conf[w, :, label] += post[i]
            conf /= conf.sum(axis=2, keepdims=True)
            prior = post.mean(axis=0)
            # E step: recompute posteriors.
            new_post = np.tile(np.log(np.maximum(prior, 1e-12)), (n_items, 1))
            for i, item_votes in enumerate(votes):
                for w, label in item_votes:
                    new_post[i] += np.log(np.maximum(conf[w, :, label], 1e-12))
            new_post -= new_post.max(axis=1, keepdims=True)
            new_post = np.exp(new_post)
            new_post /= new_post.sum(axis=1, keepdims=True)
            delta = float(np.abs(new_post - post).max())
            post = new_post
            self.worker_confusion_ = conf
            self.class_prior_ = prior
            if delta < self.tol:
                break
        self.posteriors_ = post
        return self

    def predict(self):
        """MAP label per item."""
        return self.posteriors_.argmax(axis=1)

    def worker_reliability(self):
        """Estimated per-worker accuracy (diagonal mass of the confusion)."""
        return self.worker_confusion_.diagonal(axis1=1, axis2=2).mean(axis=1)


def active_label_acquisition(crowd, true_labels, budget, initial_redundancy=1,
                             batch=50, seed=0):
    """Uncertainty-driven label acquisition vs. uniform redundancy.

    Start with one vote per item, then repeatedly spend ``batch`` extra
    votes on the items whose Dawid–Skene posterior is most uncertain,
    until the budget is exhausted.

    Returns:
        ``(inferred_labels, votes)`` after the budget is spent.
    """
    rng = ensure_rng(seed)
    n_items = len(true_labels)
    votes = crowd.collect(true_labels, redundancy=initial_redundancy)
    spent = n_items * initial_redundancy
    while spent + batch <= budget:
        ds = DawidSkene(crowd.n_classes).fit(votes, crowd.n_workers)
        margins = np.sort(ds.posteriors_, axis=1)
        uncertainty = 1.0 - (margins[:, -1] - margins[:, -2])
        order = np.argsort(-uncertainty)
        for i in order[:batch]:
            worker = int(rng.integers(0, crowd.n_workers))
            votes[i].append((worker, crowd.label(int(true_labels[i]), worker)))
        spent += batch
    ds = DawidSkene(crowd.n_classes).fit(votes, crowd.n_workers)
    return ds.predict(), votes
