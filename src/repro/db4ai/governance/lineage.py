"""Row-level data lineage through pipeline transformations.

The tutorial lists data lineage as a governance pillar: when a model
misbehaves, trace its training rows back through filters/joins/maps to the
source records (backward lineage), and when a source record is found to be
corrupt, find everything it influenced (forward lineage).

:class:`LineageTracker` wraps dataset transformations and records
why-provenance — for each output row, the set of contributing input row
ids per source — supporting both directions plus an audit trail of the
operations applied.
"""

from repro.common import ReproError


class LineageTable:
    """A dataset with provenance: rows + per-row contributing source ids.

    Attributes:
        name: dataset name.
        rows: list of row values (any Python objects, commonly dicts).
        provenance: per output row, a dict ``{source_name: frozenset(ids)}``.
    """

    def __init__(self, name, rows, provenance=None, source=True):
        self.name = name
        self.rows = list(rows)
        if provenance is None:
            if not source:
                raise ReproError("derived tables need explicit provenance")
            provenance = [
                {name: frozenset([i])} for i in range(len(self.rows))
            ]
        if len(provenance) != len(self.rows):
            raise ReproError("provenance must align with rows")
        self.provenance = list(provenance)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "LineageTable(%r, rows=%d)" % (self.name, len(self.rows))


def _merge_prov(a, b):
    out = dict(a)
    for src, ids in b.items():
        out[src] = out.get(src, frozenset()) | ids
    return out


class LineageTracker:
    """Applies transformations while recording row-level lineage.

    All operations return new :class:`LineageTable` objects and append an
    entry to :attr:`log` describing the step.
    """

    def __init__(self):
        self.log = []

    def source(self, name, rows):
        """Register a source dataset (identity provenance)."""
        table = LineageTable(name, rows)
        self.log.append(("source", name, len(rows)))
        return table

    def filter(self, table, predicate, name=None):
        """Keep rows satisfying ``predicate(row)``."""
        name = name or "%s_filtered" % table.name
        rows, prov = [], []
        for row, p in zip(table.rows, table.provenance):
            if predicate(row):
                rows.append(row)
                prov.append(p)
        out = LineageTable(name, rows, prov, source=False)
        self.log.append(("filter", table.name, name, len(rows)))
        return out

    def map(self, table, fn, name=None):
        """Transform each row with ``fn(row)`` (1-to-1 provenance)."""
        name = name or "%s_mapped" % table.name
        rows = [fn(r) for r in table.rows]
        out = LineageTable(name, rows, list(table.provenance), source=False)
        self.log.append(("map", table.name, name, len(rows)))
        return out

    def join(self, left, right, key_fn_left, key_fn_right, combine,
             name=None):
        """Hash equi-join; output provenance unions both inputs'."""
        name = name or "%s_join_%s" % (left.name, right.name)
        buckets = {}
        for row, p in zip(right.rows, right.provenance):
            buckets.setdefault(key_fn_right(row), []).append((row, p))
        rows, prov = [], []
        for row, p in zip(left.rows, left.provenance):
            for rrow, rp in buckets.get(key_fn_left(row), ()):
                rows.append(combine(row, rrow))
                prov.append(_merge_prov(p, rp))
        out = LineageTable(name, rows, prov, source=False)
        self.log.append(("join", left.name, right.name, name, len(rows)))
        return out

    def union(self, a, b, name=None):
        """Concatenate two datasets (provenance preserved per row)."""
        name = name or "%s_union_%s" % (a.name, b.name)
        out = LineageTable(
            name, a.rows + b.rows, a.provenance + b.provenance, source=False
        )
        self.log.append(("union", a.name, b.name, name, len(out)))
        return out

    def aggregate(self, table, key_fn, agg_fn, name=None):
        """Group-by aggregation; each group's provenance unions members'."""
        name = name or "%s_agg" % table.name
        groups = {}
        for row, p in zip(table.rows, table.provenance):
            key = key_fn(row)
            bucket = groups.setdefault(key, ([], {}))
            bucket[0].append(row)
            groups[key] = (bucket[0], _merge_prov(bucket[1], p))
        rows, prov = [], []
        for key, (members, p) in groups.items():
            rows.append(agg_fn(key, members))
            prov.append(p)
        out = LineageTable(name, rows, prov, source=False)
        self.log.append(("aggregate", table.name, name, len(rows)))
        return out

    # -- lineage queries ---------------------------------------------------
    @staticmethod
    def backward(table, row_index):
        """Source rows contributing to one output row.

        Returns:
            dict ``{source_name: sorted list of row ids}``.
        """
        if not 0 <= row_index < len(table):
            raise ReproError("row index out of range")
        return {
            src: sorted(ids) for src, ids in table.provenance[row_index].items()
        }

    @staticmethod
    def forward(table, source_name, source_id):
        """Output rows influenced by one source row.

        Returns:
            sorted list of output row indices in ``table``.
        """
        hits = []
        for i, prov in enumerate(table.provenance):
            if source_id in prov.get(source_name, frozenset()):
                hits.append(i)
        return hits
