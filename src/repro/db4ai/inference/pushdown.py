"""Hybrid DB+AI query optimization: pushdown and model cascades.

The tutorial's running example (§2.3): *"find all the patients of a
hospital whose stay time will be longer than 3 days"*. The naive plan
predicts the stay for **every** patient and filters afterwards; the
paper calls this "rather expensive" and asks for co-optimization:

* **predicate pushdown** — evaluate the cheap relational predicates first
  so the expensive model only sees surviving rows;
* **model cascade** — screen the survivors with a cheap high-recall proxy
  model and reserve the expensive model for the proxy's uncertain band.

All three strategies run for real against the engine + NumPy models, and
E16 reports rows-predicted-by-the-expensive-model, wall time, and answer
quality (recall/precision vs. the naive plan's answer).
"""

import time

import numpy as np

from repro.common import ReproError, ensure_rng
from repro.engine.database import Database
from repro.engine.datagen import zipf_integers
from repro.engine.query import ConjunctiveQuery
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema
from repro.ml import LogisticRegression, MLPRegressor, StandardScaler


def make_patients_database(n_patients=20000, seed=0):
    """The hospital-stay substrate: patients table + ground-truth stays.

    ``stay_days`` (the prediction target) depends nonlinearly on age,
    severity, comorbidities and admission type. The table also stores
    ``true_stay`` so experiments can score answer quality, but models are
    trained only on a held-out training split.

    Returns:
        ``(db, feature_columns)``.
    """
    rng = ensure_rng(seed)
    age = rng.integers(18, 95, size=n_patients)
    severity = rng.integers(1, 11, size=n_patients)
    comorbidities = zipf_integers(n_patients, 8, skew=1.2, seed=rng)
    emergency = (rng.random(n_patients) < 0.35).astype(np.int64)
    ward = rng.integers(0, 6, size=n_patients)
    noise = rng.normal(0, 0.6, size=n_patients)
    stay = (
        0.4
        + 0.02 * (age - 18)
        + 0.55 * severity
        + 0.8 * comorbidities
        + 1.5 * emergency
        + 0.6 * np.sin(ward)
        + noise
    )
    stay = np.maximum(0.2, stay)
    schema = TableSchema(
        "patients",
        [
            ColumnSchema("p_id", DataType.INT),
            ColumnSchema("age", DataType.INT),
            ColumnSchema("severity", DataType.INT),
            ColumnSchema("comorbidities", DataType.INT),
            ColumnSchema("emergency", DataType.INT),
            ColumnSchema("ward", DataType.INT),
            ColumnSchema("true_stay", DataType.FLOAT),
        ],
    )
    table = Table(schema, columns={
        "p_id": np.arange(n_patients),
        "age": age,
        "severity": severity,
        "comorbidities": comorbidities,
        "emergency": emergency,
        "ward": ward,
        "true_stay": stay,
    })
    db = Database()
    db.catalog.register_table(table)
    db.catalog.analyze("patients")
    features = ["age", "severity", "comorbidities", "emergency", "ward"]
    return db, features


class HybridQuery:
    """A query mixing relational predicates and a model predicate.

    Example: relational ``age > 60`` plus model ``predicted_stay > 3``.

    Attributes:
        table: the table queried.
        predicates: relational :class:`Predicate` list.
        features: model input columns.
        threshold: the model-predicate cut ("> threshold" selects).
    """

    def __init__(self, table, predicates, features, threshold=3.0):
        self.table = table
        self.predicates = list(predicates)
        self.features = list(features)
        self.threshold = float(threshold)


def train_stay_models(db, features, n_train=4000, seed=0):
    """Train the expensive regressor and the cheap proxy classifier.

    The expensive model is an MLP regressor of the stay; the proxy is a
    logistic classifier of ``stay > threshold`` whose decision scores are
    used with two cutoffs in the cascade (confident-yes / confident-no).

    Returns:
        dict with ``expensive``, ``proxy``, ``scaler``.
    """
    query = ConjunctiveQuery(
        tables=[db.catalog.table("patients").name],
        projections=[("patients", f) for f in features]
        + [("patients", "true_stay")],
        limit=n_train,
    )
    result = db.run_query_object(query)
    data = np.asarray(result.rows, dtype=float)
    X, y = data[:, :-1], data[:, -1]
    scaler = StandardScaler()
    Xs = scaler.fit_transform(X)
    expensive = MLPRegressor(hidden=(64, 64), epochs=120, seed=seed)
    expensive.fit(Xs, y)
    proxy = LogisticRegression(lr=0.3, epochs=400, seed=seed)
    proxy.fit(Xs, (y > 3.0).astype(float))
    return {"expensive": expensive, "proxy": proxy, "scaler": scaler}


def _fetch_rows(db, query_obj):
    result = db.run_query_object(query_obj)
    return result


class _Strategy:
    name = "base"

    def run(self, db, models, hybrid):
        raise NotImplementedError


class NaiveStrategy(_Strategy):
    """Predict for every row, then apply all predicates (the paper's
    "rather expensive" plan)."""

    name = "naive"

    def run(self, db, models, hybrid):
        t0 = time.perf_counter()
        query = ConjunctiveQuery(
            tables=[hybrid.table],
            projections=[(hybrid.table, "p_id")]
            + [(hybrid.table, f) for f in hybrid.features],
        )
        result = _fetch_rows(db, query)
        rows = np.asarray(result.rows, dtype=float)
        ids = rows[:, 0].astype(int)
        X = models["scaler"].transform(rows[:, 1:])
        preds = models["expensive"].predict(X)
        keep = preds > hybrid.threshold
        # Apply relational predicates post hoc.
        mask = np.ones(len(rows), dtype=bool)
        feature_pos = {f: i + 1 for i, f in enumerate(hybrid.features)}
        for p in hybrid.predicates:
            col = rows[:, feature_pos[p.column.lower()]]
            mask &= _apply_op(col, p.op, p.value)
        selected = set(ids[keep & mask].tolist())
        return {
            "selected": selected,
            "expensive_rows": len(rows),
            "seconds": time.perf_counter() - t0,
        }


def _apply_op(col, op, value):
    if op == "=":
        return col == value
    if op == "!=":
        return col != value
    if op == "<":
        return col < value
    if op == "<=":
        return col <= value
    if op == ">":
        return col > value
    return col >= value


class PushdownStrategy(_Strategy):
    """Push relational predicates into the scan; predict survivors only."""

    name = "pushdown"

    def run(self, db, models, hybrid):
        t0 = time.perf_counter()
        query = ConjunctiveQuery(
            tables=[hybrid.table],
            predicates=hybrid.predicates,
            projections=[(hybrid.table, "p_id")]
            + [(hybrid.table, f) for f in hybrid.features],
        )
        result = _fetch_rows(db, query)
        rows = np.asarray(result.rows, dtype=float)
        if len(rows) == 0:
            return {"selected": set(), "expensive_rows": 0,
                    "seconds": time.perf_counter() - t0}
        ids = rows[:, 0].astype(int)
        X = models["scaler"].transform(rows[:, 1:])
        preds = models["expensive"].predict(X)
        selected = set(ids[preds > hybrid.threshold].tolist())
        return {
            "selected": selected,
            "expensive_rows": len(rows),
            "seconds": time.perf_counter() - t0,
        }


class CascadeStrategy(_Strategy):
    """Pushdown + cheap-proxy screening before the expensive model.

    The proxy's probability splits survivors into confident-no (dropped),
    confident-yes (accepted), and an uncertain band sent to the expensive
    model. Thresholds trade answer quality against expensive-model rows —
    the E16 ablation sweeps them.

    Args:
        low: below this proxy probability, reject without the big model.
        high: above this, accept without the big model.
    """

    name = "cascade"

    def __init__(self, low=0.1, high=0.9):
        if not 0.0 <= low < high <= 1.0:
            raise ReproError("need 0 <= low < high <= 1")
        self.low = low
        self.high = high

    def run(self, db, models, hybrid):
        t0 = time.perf_counter()
        query = ConjunctiveQuery(
            tables=[hybrid.table],
            predicates=hybrid.predicates,
            projections=[(hybrid.table, "p_id")]
            + [(hybrid.table, f) for f in hybrid.features],
        )
        result = _fetch_rows(db, query)
        rows = np.asarray(result.rows, dtype=float)
        if len(rows) == 0:
            return {"selected": set(), "expensive_rows": 0,
                    "seconds": time.perf_counter() - t0}
        ids = rows[:, 0].astype(int)
        X = models["scaler"].transform(rows[:, 1:])
        proba = models["proxy"].predict_proba(X)
        accept = proba >= self.high
        uncertain = (proba > self.low) & ~accept
        selected = set(ids[accept].tolist())
        n_expensive = int(uncertain.sum())
        if n_expensive:
            preds = models["expensive"].predict(X[uncertain])
            selected |= set(ids[uncertain][preds > hybrid.threshold].tolist())
        return {
            "selected": selected,
            "expensive_rows": n_expensive,
            "seconds": time.perf_counter() - t0,
        }


def run_hybrid_query(db, models, hybrid, strategies=None, truth_column="true_stay"):
    """Run all strategies; score each against the ground-truth answer.

    The reference answer uses the stored true stay (not the naive plan),
    so quality reflects real correctness.

    Returns:
        list of dict rows with strategy, rows predicted by the expensive
        model, wall seconds, precision and recall.
    """
    if strategies is None:
        strategies = [NaiveStrategy(), PushdownStrategy(), CascadeStrategy()]
    # Ground truth under the full hybrid predicate.
    query = ConjunctiveQuery(
        tables=[hybrid.table],
        predicates=hybrid.predicates,
        projections=[(hybrid.table, "p_id"), (hybrid.table, truth_column)],
    )
    result = _fetch_rows(db, query)
    rows = np.asarray(result.rows, dtype=float)
    truth = (
        set(rows[rows[:, 1] > hybrid.threshold][:, 0].astype(int).tolist())
        if len(rows)
        else set()
    )
    out = []
    for strategy in strategies:
        r = strategy.run(db, models, hybrid)
        selected = r["selected"]
        tp = len(selected & truth)
        precision = tp / len(selected) if selected else 0.0
        recall = tp / len(truth) if truth else 1.0
        out.append({
            "strategy": strategy.name,
            "expensive_rows": r["expensive_rows"],
            "seconds": r["seconds"],
            "precision": precision,
            "recall": recall,
        })
    return out
