"""Model inference inside the database (paper §2.2, category 4)."""

from repro.db4ai.inference.operators import (
    ModelScanOperator,
    udf_per_row_inference,
    vectorized_inference,
    select_operator,
)
from repro.db4ai.inference.pushdown import (
    HybridQuery,
    NaiveStrategy,
    PushdownStrategy,
    CascadeStrategy,
    run_hybrid_query,
    make_patients_database,
)

__all__ = [
    "ModelScanOperator",
    "udf_per_row_inference",
    "vectorized_inference",
    "select_operator",
    "HybridQuery",
    "NaiveStrategy",
    "PushdownStrategy",
    "CascadeStrategy",
    "run_hybrid_query",
    "make_patients_database",
]
