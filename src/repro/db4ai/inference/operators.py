"""In-database ML operators: operator support and operator selection.

The tutorial's "operator support" point (SystemML [7], MADlib [22]): an ML
model invoked through a per-row UDF loses the set-oriented execution the
database is good at; a native *vectorized* operator processes column
batches with the same semantics at a fraction of the cost. "Operator
selection" then picks the physical implementation by cost.

Both implementations below are real (they run the same model), and
:func:`select_operator` chooses between them with a calibrated cost model,
mirroring how an in-database optimizer would.
"""

import time

import numpy as np

from repro.common import ReproError


def udf_per_row_inference(model, X):
    """Per-row UDF execution: one model call per tuple (the slow path).

    Returns:
        ``(predictions, wall_seconds)``.
    """
    X = np.asarray(X, dtype=float)
    out = np.empty(len(X))
    t0 = time.perf_counter()
    for i in range(len(X)):
        out[i] = float(np.asarray(model.predict(X[i : i + 1])).ravel()[0])
    return out, time.perf_counter() - t0


def vectorized_inference(model, X, batch_size=4096):
    """Vectorized operator: batched matrix execution (the fast path).

    Returns:
        ``(predictions, wall_seconds)``.
    """
    X = np.asarray(X, dtype=float)
    chunks = []
    t0 = time.perf_counter()
    for start in range(0, len(X), batch_size):
        chunks.append(np.asarray(model.predict(X[start : start + batch_size])))
    out = np.concatenate(chunks) if chunks else np.empty(0)
    return out, time.perf_counter() - t0


class ModelScanOperator:
    """A physical operator applying a model to a relation's feature columns.

    Bridges :mod:`repro.ml` models into the engine's execution world: takes
    an :class:`~repro.engine.executor.Relation`-like ``(columns, rows)``,
    evaluates the model on the named feature columns, and emits rows with
    the prediction appended. Execution mode is chosen by
    :func:`select_operator` unless forced.

    Args:
        model: fitted estimator with ``predict``.
        feature_columns: list of ``(table, column)`` inputs.
        mode: ``"auto"``, ``"udf"``, or ``"vectorized"``.
        output_name: appended column name.
    """

    def __init__(self, model, feature_columns, mode="auto",
                 output_name="prediction"):
        if mode not in ("auto", "udf", "vectorized"):
            raise ReproError("mode must be auto, udf, or vectorized")
        self.model = model
        self.feature_columns = list(feature_columns)
        self.mode = mode
        self.output_name = output_name
        self.last_mode = None
        self.last_seconds = None

    def apply(self, columns, rows):
        """Run inference; returns ``(new_columns, new_rows)``."""
        col_index = {
            (t.lower(), c.lower()): i for i, (t, c) in enumerate(columns)
        }
        positions = []
        for t, c in self.feature_columns:
            key = (t.lower(), c.lower())
            if key not in col_index:
                raise ReproError("missing feature column %s.%s" % (t, c))
            positions.append(col_index[key])
        X = np.asarray(
            [[row[p] for p in positions] for row in rows], dtype=float
        )
        if len(X) == 0:
            return columns + [("ml", self.output_name)], []
        mode = self.mode
        if mode == "auto":
            mode = select_operator(len(X))
        if mode == "udf":
            preds, seconds = udf_per_row_inference(self.model, X)
        else:
            preds, seconds = vectorized_inference(self.model, X)
        self.last_mode = mode
        self.last_seconds = seconds
        new_rows = [row + (float(p),) for row, p in zip(rows, preds)]
        return columns + [("ml", self.output_name)], new_rows


def select_operator(n_rows, udf_cost_per_row=1.0, vector_setup=50.0,
                    vector_cost_per_row=0.02):
    """Cost-based choice between UDF and vectorized execution.

    The UDF path has no setup but high per-row cost; the vectorized path
    pays batch setup (buffer allocation, layout transform) but tiny
    per-row cost. For very small inputs the UDF wins, mirroring real
    operator-selection logic.

    Returns:
        ``"udf"`` or ``"vectorized"``.
    """
    udf_cost = udf_cost_per_row * n_rows
    vec_cost = vector_setup + vector_cost_per_row * n_rows
    return "udf" if udf_cost <= vec_cost else "vectorized"
