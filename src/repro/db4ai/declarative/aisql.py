"""AISQL: SQL extended with in-database model training and inference.

The tutorial's DB4AI section opens with declarative language models:
"SQL can be extended to support AI models [66]". This module adds three
statements to the engine via its statement-hook extension point::

    CREATE MODEL churn KIND classifier ON users TARGET churned
        FEATURES (age, logins, spend) WHERE age > 18
        WITH (epochs = 200, hidden = 32)

    PREDICT churn ON users WHERE age > 18 LIMIT 10

    EVALUATE churn ON users_holdout

Training data never leaves the database: feature extraction runs through
the engine's own planner/executor, the fitted model lands in the
ModelDB-lite registry with lineage recording exactly which rows trained
it, and PREDICT executes inference next to the data — the import/export
cost the tutorial complains about simply never happens.
"""

import numpy as np

from repro.common import ParseError
from repro.engine.query import ConjunctiveQuery, Predicate
from repro.engine.sql.lexer import TokenType, tokenize
from repro.engine.types import DataType
from repro.db4ai.training.registry import ModelRegistry
from repro.ml import (
    LinearRegression,
    MLPClassifier,
    MLPRegressor,
    StandardScaler,
    accuracy,
    r2_score,
)

_KINDS = ("regressor", "classifier", "linear")


class CreateModelStmt:
    """Parsed ``CREATE MODEL`` statement."""

    def __init__(self, name, kind, table, target, features, predicates,
                 params):
        self.name = name
        self.kind = kind
        self.table = table
        self.target = target
        self.features = features
        self.predicates = predicates
        self.params = params


class PredictStmt:
    """Parsed ``PREDICT`` statement."""

    def __init__(self, model, table, predicates, limit):
        self.model = model
        self.table = table
        self.predicates = predicates
        self.limit = limit


class EvaluateStmt:
    """Parsed ``EVALUATE`` statement."""

    def __init__(self, model, table, predicates):
        self.model = model
        self.table = table
        self.predicates = predicates


class PredictResult:
    """Rows with an appended prediction column."""

    def __init__(self, columns, rows, model_name):
        self.columns = list(columns)
        self.rows = rows
        self.model_name = model_name

    def __repr__(self):
        return "PredictResult(%d rows from %s)" % (len(self.rows), self.model_name)


class _AISQLParser:
    """Parses the three AISQL statements from a token stream."""

    def __init__(self, text):
        self.tokens = tokenize(text)
        self.pos = 0

    def _peek(self):
        return self.tokens[self.pos]

    def _advance(self):
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _accept(self, type_, value=None):
        if self._peek().matches(type_, value):
            return self._advance()
        return None

    def _expect(self, type_, value=None):
        tok = self._accept(type_, value)
        if tok is None:
            got = self._peek()
            raise ParseError(
                "AISQL: expected %s%s, found %r"
                % (type_.value, " %r" % value if value else "", got.value),
                got.position,
            )
        return tok

    def _ident(self):
        tok = self._peek()
        if tok.type is TokenType.IDENT:
            return self._advance().value
        raise ParseError("AISQL: expected identifier, found %r" % (tok.value,),
                         tok.position)

    def _predicates(self, table):
        preds = []
        if not self._accept(TokenType.KEYWORD, "WHERE"):
            return preds
        while True:
            col = self._ident()
            op = self._expect(TokenType.OP).value
            vtok = self._peek()
            if vtok.type not in (TokenType.NUMBER, TokenType.STRING):
                raise ParseError("AISQL: WHERE needs literal values",
                                 vtok.position)
            self._advance()
            preds.append(Predicate(table, col, op, vtok.value))
            if not self._accept(TokenType.KEYWORD, "AND"):
                break
        return preds

    def parse(self):
        """Dispatch on the statement head; returns a parsed statement."""
        if self._accept(TokenType.KEYWORD, "CREATE"):
            self._expect(TokenType.KEYWORD, "MODEL")
            return self._create_model()
        if self._accept(TokenType.KEYWORD, "PREDICT"):
            return self._predict()
        head = self._peek()
        if head.type is TokenType.IDENT and head.value.upper() == "EVALUATE":
            self._advance()
            return self._evaluate()
        raise ParseError("not an AISQL statement")

    def _create_model(self):
        name = self._ident()
        kind = "regressor"
        tok = self._peek()
        if tok.type is TokenType.IDENT and tok.value.upper() == "KIND":
            self._advance()
            ktok = self._peek()
            if ktok.type is TokenType.STRING:
                kind = self._advance().value.lower()
            else:
                kind = self._ident().lower()
            if kind not in _KINDS:
                raise ParseError(
                    "AISQL: KIND must be one of %s" % (", ".join(_KINDS),)
                )
        self._expect(TokenType.KEYWORD, "ON")
        table = self._ident()
        self._expect(TokenType.KEYWORD, "TARGET")
        target = self._ident()
        self._expect(TokenType.KEYWORD, "FEATURES")
        self._expect(TokenType.PUNCT, "(")
        features = [self._ident()]
        while self._accept(TokenType.PUNCT, ","):
            features.append(self._ident())
        self._expect(TokenType.PUNCT, ")")
        predicates = self._predicates(table)
        params = {}
        if self._accept(TokenType.KEYWORD, "WITH"):
            self._expect(TokenType.PUNCT, "(")
            while True:
                key = self._ident()
                self._expect(TokenType.OP, "=")
                vtok = self._peek()
                if vtok.type not in (TokenType.NUMBER, TokenType.STRING):
                    raise ParseError("AISQL: WITH values must be literals",
                                     vtok.position)
                self._advance()
                params[key.lower()] = vtok.value
                if not self._accept(TokenType.PUNCT, ","):
                    break
            self._expect(TokenType.PUNCT, ")")
        return CreateModelStmt(name, kind, table, target, features,
                               predicates, params)

    def _predict(self):
        model = self._ident()
        self._expect(TokenType.KEYWORD, "ON")
        table = self._ident()
        predicates = self._predicates(table)
        limit = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            tok = self._expect(TokenType.NUMBER)
            limit = int(tok.value)
        return PredictStmt(model, table, predicates, limit)

    def _evaluate(self):
        model = self._ident()
        self._expect(TokenType.KEYWORD, "ON")
        table = self._ident()
        predicates = self._predicates(table)
        return EvaluateStmt(model, table, predicates)


class AISQLExtension:
    """Installs AISQL statement handling on a :class:`Database`.

    Args:
        registry: an optional shared :class:`ModelRegistry`.

    Usage::

        ext = AISQLExtension()
        ext.install(db)
        db.execute("CREATE MODEL m KIND regressor ON t TARGET y FEATURES (a, b)")
    """

    _HEADS = ("CREATE MODEL", "PREDICT", "EVALUATE")

    def __init__(self, registry=None):
        self.registry = registry or ModelRegistry()

    def install(self, database):
        """Register the statement hook on the database's query pipeline.

        Returns self for chaining. Feature extraction for ``CREATE MODEL``
        / ``PREDICT`` / ``EVALUATE`` then runs through the staged pipeline,
        so repeated ``PREDICT`` statements over the same feature query hit
        the plan cache instead of replanning. A read-only *inspector* is
        registered alongside the hook, so the session layer's dry-run and
        policy gates can classify and cost AISQL statements — tables,
        feature columns, and the plannable feature query — without
        executing them.
        """
        database.pipeline.statement_hooks.append(self._hook)
        database.pipeline.statement_inspectors.append(self._inspect)
        return self

    # ------------------------------------------------------------------
    def _hook(self, database, sql_text):
        head = sql_text.lstrip().upper()
        if not any(head.startswith(h) for h in self._HEADS):
            return None
        stmt = _AISQLParser(sql_text).parse()
        if isinstance(stmt, CreateModelStmt):
            return self._train(database, stmt)
        if isinstance(stmt, PredictStmt):
            return self._predict(database, stmt)
        return self._evaluate(database, stmt)

    def _inspect(self, database, sql_text):
        """Describe an AISQL statement without executing it.

        The ``statement_inspectors`` contract: returns ``None`` for
        statements this extension doesn't own, else a dict with the
        statement's kind, referenced tables and columns, and — when the
        feature set is known — the plannable feature
        :class:`ConjunctiveQuery` the session layer can cost.
        """
        head = sql_text.lstrip().upper()
        if not any(head.startswith(h) for h in self._HEADS):
            return None
        stmt = _AISQLParser(sql_text).parse()
        limit = None
        if isinstance(stmt, CreateModelStmt):
            kind = "CREATE MODEL"
            feature_cols = list(stmt.features) + [stmt.target]
        else:
            kind = "PREDICT" if isinstance(stmt, PredictStmt) else "EVALUATE"
            limit = getattr(stmt, "limit", None)
            try:
                bundle = self.registry.get(stmt.model).model
                feature_cols = list(bundle["features"])
                if kind == "EVALUATE":
                    feature_cols.append(bundle["target"])
            except Exception:
                # Unknown model: the statement would fail at execution,
                # but kind/table gates should still see it.
                feature_cols = []
        columns = [(stmt.table, c) for c in feature_cols]
        columns.extend((stmt.table, p.column) for p in stmt.predicates)
        query = None
        if feature_cols:
            query = ConjunctiveQuery(
                tables=[stmt.table],
                predicates=stmt.predicates,
                projections=[(stmt.table, c) for c in feature_cols],
                limit=limit,
            )
        return {
            "kind": kind,
            "tables": [stmt.table],
            "columns": columns,
            "query": query,
        }

    # ------------------------------------------------------------------
    def _fetch(self, database, table, columns, predicates, limit=None):
        """Pull columns through the engine (predicates pushed down)."""
        schema = database.catalog.table(table).schema
        for c in columns:
            col = schema.column(c)
            if col.dtype is DataType.TEXT:
                raise ParseError(
                    "AISQL supports numeric features; %r is TEXT" % (c,)
                )
        query = ConjunctiveQuery(
            tables=[table],
            predicates=predicates,
            projections=[(table, c) for c in columns],
            limit=limit,
        )
        result = database.run_query_object(query)
        data = np.asarray(result.rows, dtype=float)
        if data.size == 0:
            data = data.reshape(0, len(columns))
        return data

    def _build_model(self, kind, params, seed=0):
        epochs = int(params.get("epochs", 150))
        hidden = int(params.get("hidden", 32))
        lr = float(params.get("lr", 1e-3))
        if kind == "regressor":
            return MLPRegressor(hidden=(hidden, hidden), epochs=epochs,
                                lr=lr, seed=seed)
        if kind == "classifier":
            return MLPClassifier(hidden=(hidden, hidden), epochs=epochs,
                                 lr=lr, seed=seed)
        return LinearRegression()

    def _train(self, database, stmt):
        data = self._fetch(
            database, stmt.table, stmt.features + [stmt.target],
            stmt.predicates,
        )
        if len(data) == 0:
            raise ParseError("CREATE MODEL: training query returned no rows")
        X, y = data[:, :-1], data[:, -1]
        scaler = StandardScaler()
        Xs = scaler.fit_transform(X)
        seed = int(stmt.params.get("seed", 0))
        model = self._build_model(stmt.kind, stmt.params, seed=seed)
        model.fit(Xs, y)
        if stmt.kind == "classifier":
            train_metric = {"train_accuracy": accuracy(y, model.predict(Xs))}
        else:
            train_metric = {"train_r2": r2_score(y, model.predict(Xs))}
        bundle = {"model": model, "scaler": scaler, "kind": stmt.kind,
                  "features": stmt.features, "target": stmt.target}
        record = self.registry.register(
            stmt.name,
            bundle,
            params=stmt.params,
            metrics=train_metric,
            lineage={
                "table": stmt.table,
                "predicates": [str(p) for p in stmt.predicates],
                "n_rows": len(y),
                "features": stmt.features,
                "target": stmt.target,
            },
        )
        return "CREATE MODEL %s v%d (%s)" % (
            record.name, record.version,
            ", ".join("%s=%.4g" % kv for kv in train_metric.items()),
        )

    def _predict(self, database, stmt):
        record = self.registry.get(stmt.model)
        bundle = record.model
        X = self._fetch(
            database, stmt.table, bundle["features"], stmt.predicates,
            limit=stmt.limit,
        )
        if len(X) == 0:
            return PredictResult(
                bundle["features"] + ["prediction"], [], stmt.model
            )
        preds = bundle["model"].predict(bundle["scaler"].transform(X))
        rows = [tuple(x) + (float(p),) for x, p in zip(X, preds)]
        return PredictResult(
            bundle["features"] + ["prediction"], rows, stmt.model
        )

    def _evaluate(self, database, stmt):
        record = self.registry.get(stmt.model)
        bundle = record.model
        data = self._fetch(
            database, stmt.table, bundle["features"] + [bundle["target"]],
            stmt.predicates,
        )
        if len(data) == 0:
            raise ParseError("EVALUATE: query returned no rows")
        X, y = data[:, :-1], data[:, -1]
        preds = bundle["model"].predict(bundle["scaler"].transform(X))
        if bundle["kind"] == "classifier":
            metric = {"accuracy": accuracy(y, preds)}
        else:
            metric = {"r2": r2_score(y, preds)}
        record.metrics.update(metric)
        return metric
