"""Declarative language model: AISQL (paper §2.2, category 1)."""

from repro.db4ai.declarative.aisql import (
    AISQLExtension,
    CreateModelStmt,
    PredictStmt,
    EvaluateStmt,
    PredictResult,
)

__all__ = [
    "AISQLExtension",
    "CreateModelStmt",
    "PredictStmt",
    "EvaluateStmt",
    "PredictResult",
]
