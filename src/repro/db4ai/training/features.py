"""Feature selection with batching + materialization (Zhang et al. [85]).

Feature-selection workloads evaluate many overlapping feature *sets*; the
dominant cost is recomputing feature columns. The cited work shows that
**materializing** computed features and **batching** the evaluations cuts
the enumeration cost superlinearly in the overlap.

:class:`FeatureComputeEngine` executes feature-set evaluations under two
policies — recompute-always vs. materialize-and-reuse — charging each
feature's compute cost honestly, so E15 can report total compute for the
same greedy forward-selection trajectory under both policies. The features
themselves are real (NumPy transforms of base columns) and model quality
is evaluated with a ridge fit per candidate set.
"""

import numpy as np

from repro.common import ReproError, ensure_rng
from repro.ml import RidgeRegression, r2_score


class FeatureSpec:
    """One derivable feature.

    Attributes:
        name: feature name.
        compute_cost: abstract cost units charged per (re)computation —
            proportional to the rows scanned and transform complexity.
        fn: ``(base_columns dict) -> 1-D array``.
    """

    def __init__(self, name, compute_cost, fn):
        self.name = name
        self.compute_cost = float(compute_cost)
        self.fn = fn

    def __repr__(self):
        return "FeatureSpec(%r, cost=%g)" % (self.name, self.compute_cost)


def default_feature_library(n_base=4):
    """A library of derived features over ``n_base`` base columns.

    Mix of cheap (identity, scaling) and expensive (pairwise interactions,
    rolling aggregates) transforms — the cost spread that makes
    materialization matter.
    """
    specs = []
    for i in range(n_base):
        specs.append(FeatureSpec("x%d" % i, 1.0,
                                 lambda cols, i=i: cols[i]))
        specs.append(FeatureSpec("x%d_sq" % i, 2.0,
                                 lambda cols, i=i: cols[i] ** 2))
        specs.append(FeatureSpec("x%d_log" % i, 2.0,
                                 lambda cols, i=i: np.log1p(np.abs(cols[i]))))
    for i in range(n_base):
        for j in range(i + 1, n_base):
            specs.append(FeatureSpec(
                "x%d_x%d" % (i, j), 5.0,
                lambda cols, i=i, j=j: cols[i] * cols[j],
            ))
    for i in range(n_base):
        def rolling(cols, i=i):
            c = cols[i]
            out = np.convolve(c, np.ones(16) / 16.0, mode="same")
            return out
        specs.append(FeatureSpec("x%d_roll" % i, 8.0, rolling))
    return specs


class FeatureComputeEngine:
    """Evaluates feature sets, charging compute per policy.

    Args:
        base_columns: dict index -> base column arrays.
        target: target vector.
        specs: the feature library.
        materialize: when True, computed features are cached and reused
            across evaluations (the [85] optimization); when False, every
            evaluation recomputes its features.
    """

    def __init__(self, base_columns, target, specs, materialize=True):
        self.base_columns = base_columns
        self.target = np.asarray(target, dtype=float)
        self.specs = {s.name: s for s in specs}
        self.materialize = materialize
        self._cache = {}
        self.compute_cost = 0.0
        self.evaluations = 0

    def _column(self, name):
        spec = self.specs.get(name)
        if spec is None:
            raise ReproError("unknown feature %r" % (name,))
        if self.materialize and name in self._cache:
            return self._cache[name]
        value = np.asarray(spec.fn(self.base_columns), dtype=float)
        self.compute_cost += spec.compute_cost
        if self.materialize:
            self._cache[name] = value
        return value

    def evaluate(self, feature_names, train_frac=0.7, alpha=1.0):
        """Fit ridge on the feature set; returns holdout R^2."""
        self.evaluations += 1
        X = np.column_stack([self._column(n) for n in feature_names])
        n = len(self.target)
        split = int(n * train_frac)
        model = RidgeRegression(alpha=alpha)
        model.fit(X[:split], self.target[:split])
        return r2_score(self.target[split:], model.predict(X[split:]))


def greedy_forward_selection(engine, k=6, candidates=None):
    """Greedy forward selection of ``k`` features through ``engine``.

    Returns:
        ``(selected_names, score_trajectory)``.
    """
    if candidates is None:
        candidates = list(engine.specs)
    selected = []
    trajectory = []
    best_score = -np.inf
    for __ in range(k):
        best_name = None
        for name in candidates:
            if name in selected:
                continue
            score = engine.evaluate(selected + [name])
            if score > best_score + 1e-12:
                best_score = score
                best_name = name
        if best_name is None:
            break
        selected.append(best_name)
        trajectory.append(best_score)
    return selected, trajectory


def make_regression_data(n_rows=3000, n_base=4, seed=0, noise=0.2):
    """Synthetic base columns + target with planted nonlinear structure.

    The target depends on an interaction and a square term, so forward
    selection must explore the expensive derived features to win.
    """
    rng = ensure_rng(seed)
    cols = {i: rng.normal(size=n_rows) for i in range(n_base)}
    y = (
        1.5 * cols[0]
        + 2.0 * cols[0] * cols[1]
        + 1.0 * cols[2] ** 2
        - 0.5 * cols[3]
        + noise * rng.normal(size=n_rows)
    )
    return cols, y
