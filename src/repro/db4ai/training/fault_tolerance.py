"""Fault-tolerant in-database training (paper §2.3, DB4AI challenge 4).

"Existing learning model training does not consider error tolerance. If a
process crashes ... the whole task will fail." This module adds the
database answer: periodic **checkpointing** of training state and
deterministic **resume**, so a crash costs at most one checkpoint interval
instead of the whole run.

:class:`CheckpointedTrainer` drives any step-based trainable (a protocol
with ``get_state``/``set_state``/``train_steps``) and guarantees that a
crash-and-resume run reproduces the uninterrupted run exactly — the
property the tests assert bit-for-bit.
"""

import copy

import numpy as np

from repro.common import ModelError
from repro.ml.mlp import MLP, Adam


class SimulatedCrash(Exception):
    """Raised by fault injectors to simulate a worker crash."""


class CheckpointStore:
    """In-memory checkpoint store (stand-in for a table in the database).

    Real in-database training would persist this via the storage engine;
    the store keeps ``(step, state)`` snapshots and returns the latest on
    recovery.
    """

    def __init__(self, keep_last=3):
        if keep_last < 1:
            raise ModelError("keep_last must be >= 1")
        self.keep_last = keep_last
        self._checkpoints = []
        self.writes = 0

    def save(self, step, state):
        """Persist a snapshot (deep-copied, like a real serialization)."""
        self._checkpoints.append((step, copy.deepcopy(state)))
        self._checkpoints = self._checkpoints[-self.keep_last:]
        self.writes += 1

    def latest(self):
        """``(step, state)`` of the newest checkpoint, or ``None``."""
        if not self._checkpoints:
            return None
        step, state = self._checkpoints[-1]
        return step, copy.deepcopy(state)

    def __len__(self):
        return len(self._checkpoints)


class CheckpointableMLPTrainer:
    """A step-based MLP regression trainer with full-state capture.

    Training is organized in *steps* (one mini-batch each) with all
    randomness derived from ``(seed, step)`` so that replay from any
    checkpoint is exact.

    Args:
        X, y: the training data (assumed already inside the database).
        hidden: network hidden sizes.
        batch_size, lr, seed: training hyperparameters.
    """

    def __init__(self, X, y, hidden=(32, 32), batch_size=32, lr=1e-3, seed=0):
        self.X = np.asarray(X, dtype=float)
        self.y = np.asarray(y, dtype=float).ravel()
        if len(self.X) != len(self.y):
            raise ModelError("X and y must align")
        self.batch_size = min(batch_size, len(self.y))
        self.lr = lr
        self.seed = seed
        self.net = MLP([self.X.shape[1], *hidden, 1], seed=seed)
        self.opt = Adam(self.net.params, lr=lr)
        self.step = 0

    def _batch(self, step):
        rng = np.random.default_rng((self.seed, step))
        idx = rng.integers(0, len(self.y), size=self.batch_size)
        return self.X[idx], self.y[idx]

    def train_steps(self, n_steps):
        """Run ``n_steps`` mini-batch steps; returns final batch loss."""
        loss = None
        for __ in range(n_steps):
            xb, yb = self._batch(self.step)
            pred = self.net.forward(xb)
            err = pred.ravel() - yb
            loss = float(np.mean(err**2))
            grads, ___ = self.net.backward(
                (2.0 * err / len(err)).reshape(-1, 1)
            )
            self.opt.step(grads)
            self.step += 1
        return loss

    def predict(self, X):
        """Predictions of the current model."""
        out = self.net.forward(np.asarray(X, dtype=float), cache=False)
        return np.asarray(out).ravel()

    # -- state capture ----------------------------------------------------
    def get_state(self):
        """Full training state: step, weights, optimizer moments."""
        return {
            "step": self.step,
            "weights": [w.copy() for w in self.net.weights],
            "biases": [b.copy() for b in self.net.biases],
            "adam_m": [m.copy() for m in self.opt._m],
            "adam_v": [v.copy() for v in self.opt._v],
            "adam_t": self.opt._t,
        }

    def set_state(self, state):
        """Restore a previously captured state."""
        self.step = state["step"]
        for w, saved in zip(self.net.weights, state["weights"]):
            w[...] = saved
        for b, saved in zip(self.net.biases, state["biases"]):
            b[...] = saved
        for m, saved in zip(self.opt._m, state["adam_m"]):
            m[...] = saved
        for v, saved in zip(self.opt._v, state["adam_v"]):
            v[...] = saved
        self.opt._t = state["adam_t"]


class CheckpointedTrainer:
    """Runs a trainable to a step target with checkpoints and crash recovery.

    Args:
        trainable: object with ``step``/``train_steps``/``get_state``/
            ``set_state`` (e.g. :class:`CheckpointableMLPTrainer`).
        store: a :class:`CheckpointStore`.
        checkpoint_every: steps between snapshots.
    """

    def __init__(self, trainable, store=None, checkpoint_every=50):
        if checkpoint_every < 1:
            raise ModelError("checkpoint_every must be >= 1")
        self.trainable = trainable
        self.store = store if store is not None else CheckpointStore()
        self.checkpoint_every = checkpoint_every
        self.recoveries = 0

    def train(self, total_steps, crash_at=None):
        """Train to ``total_steps``, optionally crashing once at a step.

        Args:
            total_steps: target global step count.
            crash_at: if given, a :class:`SimulatedCrash` is raised when
                training crosses this step — callers exercise recovery by
                calling :meth:`recover_and_resume`.
        """
        self.store.save(self.trainable.step, self.trainable.get_state())
        while self.trainable.step < total_steps:
            next_stop = min(
                total_steps,
                self.trainable.step + self.checkpoint_every,
            )
            if crash_at is not None and self.trainable.step < crash_at <= next_stop:
                # Simulate dying mid-interval: progress past the checkpoint
                # is lost.
                self.trainable.train_steps(crash_at - self.trainable.step)
                raise SimulatedCrash("crashed at step %d" % crash_at)
            self.trainable.train_steps(next_stop - self.trainable.step)
            self.store.save(self.trainable.step, self.trainable.get_state())
        return self.trainable

    def recover_and_resume(self, total_steps):
        """Restore the latest checkpoint and finish training."""
        latest = self.store.latest()
        if latest is None:
            raise ModelError("no checkpoint to recover from")
        step, state = latest
        self.trainable.set_state(state)
        self.recoveries += 1
        return self.train(total_steps)

    @property
    def lost_steps_bound(self):
        """Max steps a crash can cost (the checkpoint interval)."""
        return self.checkpoint_every
