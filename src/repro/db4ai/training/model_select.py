"""Model selection: search throughput under parallel execution strategies.

The tutorial frames model selection as a *throughput* problem — "the
number of training configurations tested per unit time" — and lists the
parallelism strategies: task parallel (Ray [58]), bulk synchronous
parallel (MLbase [33]), and parameter server [43].

:func:`simulate_parallel_search` replays the same configuration queue
under each strategy with heterogeneous job durations and stragglers
(deterministic given the seed) and reports configs/hour and makespan.
:func:`successive_halving` adds the budget-allocation dimension: under a
fixed compute budget, adaptive halving finds better configs than grid.
"""

import numpy as np

from repro.common import ReproError, ensure_rng


class TrainingJob:
    """One training configuration to evaluate.

    Attributes:
        job_id: index in the search space.
        params: hyperparameter dict.
        base_duration: seconds to train to completion on one worker.
        quality_fn: ``budget_fraction -> validation score`` — quality as a
            function of how much of the training budget the job received
            (successive halving exploits the partial-budget signal).
    """

    def __init__(self, job_id, params, base_duration, quality_fn):
        self.job_id = job_id
        self.params = dict(params)
        self.base_duration = float(base_duration)
        self.quality_fn = quality_fn

    def quality(self, budget_fraction=1.0):
        """Validation score after ``budget_fraction`` of full training."""
        return float(self.quality_fn(budget_fraction))

    def __repr__(self):
        return "TrainingJob(#%d, %.1fs)" % (self.job_id, self.base_duration)


def make_search_space(n_configs=64, seed=0):
    """A hyperparameter grid with a hidden quality landscape.

    Quality follows a learning curve ``q_max * (1 - exp(-3 * budget))``
    with config-dependent ``q_max`` (peaked around hidden optimal
    hyperparameters) and duration growing with model size.
    """
    rng = ensure_rng(seed)
    opt_lr, opt_width = 0.35, 0.6
    jobs = []
    for i in range(n_configs):
        lr = float(rng.uniform(0.0, 1.0))
        width = float(rng.uniform(0.0, 1.0))
        depth = int(rng.integers(1, 5))
        q_max = float(
            0.95
            - 0.8 * (lr - opt_lr) ** 2
            - 0.5 * (width - opt_width) ** 2
            - 0.02 * abs(depth - 2)
            + rng.normal(0.0, 0.01)
        )
        duration = 30.0 + 60.0 * width * depth / 4.0 + float(rng.uniform(0, 15))

        def quality_fn(budget, q_max=q_max):
            return max(0.0, q_max * (1.0 - np.exp(-3.0 * max(budget, 1e-6))))

        jobs.append(
            TrainingJob(i, {"lr": lr, "width": width, "depth": depth},
                        duration, quality_fn)
        )
    return jobs


def simulate_parallel_search(jobs, n_workers=8, strategy="task", seed=0,
                             straggler_prob=0.15, straggler_factor=3.0,
                             sync_overhead=2.0, server_capacity=None):
    """Simulate running all jobs under one parallelism strategy.

    Strategies:

    * ``"task"`` — dynamic work stealing: each worker pulls the next job
      when free (Ray-style). Stragglers delay only their own worker.
    * ``"bsp"`` — bulk synchronous rounds of ``n_workers`` jobs: every
      round waits for its slowest job (stragglers stall everyone) plus a
      synchronization overhead.
    * ``"ps"`` — parameter server: workers train asynchronously but share
      a server whose bandwidth caps effective parallelism; each job pays a
      communication tax that grows with concurrent writers, modeled via an
      effective capacity.

    Returns:
        dict with ``makespan`` (s), ``throughput`` (configs/hour), and
        ``worker_busy`` utilization.
    """
    rng = ensure_rng(seed)
    durations = []
    for job in jobs:
        d = job.base_duration
        if rng.random() < straggler_prob:
            d *= straggler_factor
        durations.append(d)
    durations = np.asarray(durations)
    if strategy == "task":
        workers = np.zeros(n_workers)
        for d in durations:
            w = int(np.argmin(workers))
            workers[w] += d
        makespan = float(workers.max())
        busy = float(durations.sum() / (makespan * n_workers))
    elif strategy == "bsp":
        makespan = 0.0
        for start in range(0, len(durations), n_workers):
            round_d = durations[start : start + n_workers]
            makespan += float(round_d.max()) + sync_overhead
        busy = float(durations.sum() / (makespan * n_workers))
    elif strategy == "ps":
        capacity = server_capacity or max(2, n_workers // 2)
        # Communication tax: effective speed scales down when more than
        # `capacity` workers hammer the server concurrently.
        slowdown = max(1.0, n_workers / capacity) ** 0.5
        workers = np.zeros(n_workers)
        for d in durations:
            w = int(np.argmin(workers))
            workers[w] += d * slowdown
        makespan = float(workers.max())
        busy = float((durations * slowdown).sum() / (makespan * n_workers))
    else:
        raise ReproError("strategy must be task, bsp, or ps")
    throughput = len(jobs) / makespan * 3600.0
    return {"makespan": makespan, "throughput": throughput,
            "worker_busy": busy}


def successive_halving(jobs, budget_seconds, eta=3, seed=0):
    """Successive halving under a wall-clock compute budget.

    Rounds: train all survivors for an equal slice of budget, keep the top
    ``1/eta`` fraction, until one survives or the budget runs out.

    Returns:
        dict with ``best_quality``, ``configs_touched``, ``budget_used``.
    """
    if not jobs:
        raise ReproError("empty search space")
    survivors = list(jobs)
    spent = 0.0
    # budgets hold the *training fraction* (epoch share) each config got.
    budgets = {j.job_id: 0.0 for j in jobs}
    n_rounds = max(1, int(np.ceil(np.log(len(jobs)) / np.log(eta))))
    frac_step = 1.0 / n_rounds
    while len(survivors) > 1:
        round_cost = sum(frac_step * j.base_duration for j in survivors)
        if spent + round_cost > budget_seconds:
            break
        for j in survivors:
            budgets[j.job_id] = min(1.0, budgets[j.job_id] + frac_step)
            spent += frac_step * j.base_duration
        scored = sorted(
            survivors, key=lambda j: -j.quality(budgets[j.job_id])
        )
        keep = max(1, len(scored) // eta)
        survivors = scored[:keep]
    best = survivors[0]
    # Standard protocol: the search *selects* a config; the winner is then
    # trained to completion, so methods are compared on the quality of the
    # configuration they found under equal search budgets.
    return {
        "best_quality": best.quality(1.0),
        "configs_touched": len(jobs),
        "budget_used": spent,
        "best_params": best.params,
    }


def grid_under_budget(jobs, budget_seconds, seed=0):
    """Baseline: fully train configs in order until the budget runs out."""
    spent = 0.0
    best_q = 0.0
    touched = 0
    best_params = None
    for job in jobs:
        if spent + job.base_duration > budget_seconds:
            break
        spent += job.base_duration
        touched += 1
        q = job.quality(1.0)
        if q > best_q:
            best_q = q
            best_params = job.params
    return {"best_quality": best_q, "configs_touched": touched,
            "budget_used": spent, "best_params": best_params}
