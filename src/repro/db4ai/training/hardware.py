"""Hardware acceleration of in-database training (DAnA [52], ColumnML [29]).

The cited systems pipe training data from the buffer pool straight into an
FPGA/accelerator, bypassing the CPU, and show *crossover* results: offload
wins once data volume and model compute amortize the transfer setup, and
column-stores feed accelerators better than row-stores because only the
needed columns move.

This analytic model reproduces those crossovers from first principles:
``time = layout-dependent scan + transfer + device compute``, per device.
"""

from repro.common import ReproError


class DeviceSpec:
    """A compute device for in-database training.

    Attributes:
        name: device name.
        compute_gflops: effective training throughput.
        transfer_gbps: host->device bandwidth (None = in-place, no copy).
        setup_ms: fixed invocation overhead.
    """

    def __init__(self, name, compute_gflops, transfer_gbps=None, setup_ms=0.0):
        self.name = name
        self.compute_gflops = float(compute_gflops)
        self.transfer_gbps = transfer_gbps
        self.setup_ms = float(setup_ms)

    def __repr__(self):
        return "DeviceSpec(%r, %.0f GFLOPs)" % (self.name, self.compute_gflops)


#: Calibrated device roster (relative numbers matter, not absolutes).
DEVICES = {
    "cpu": DeviceSpec("cpu", compute_gflops=50.0, transfer_gbps=None,
                      setup_ms=0.0),
    "fpga": DeviceSpec("fpga", compute_gflops=400.0, transfer_gbps=8.0,
                       setup_ms=30.0),
    "gpu": DeviceSpec("gpu", compute_gflops=2000.0, transfer_gbps=12.0,
                      setup_ms=80.0),
}


def scan_time_s(n_rows, n_cols_needed, n_cols_total, layout="column",
                value_bytes=8, scan_gbps=6.0):
    """Seconds to read the training columns out of storage.

    Row stores must read whole rows; column stores read only the needed
    columns — the ColumnML advantage.
    """
    if layout == "column":
        data = n_rows * n_cols_needed * value_bytes
    elif layout == "row":
        data = n_rows * n_cols_total * value_bytes
    else:
        raise ReproError("layout must be 'row' or 'column'")
    return data / (scan_gbps * 1e9)


def training_time(device, n_rows, n_cols_needed, n_cols_total=20,
                  layout="column", epochs=10, flops_per_value=200,
                  value_bytes=8):
    """End-to-end seconds to train on one device.

    Components: storage scan (layout-dependent), host->device transfer
    (None for CPU), device compute over ``epochs`` passes.

    Returns:
        dict with ``scan``, ``transfer``, ``compute``, ``total`` seconds.
    """
    if isinstance(device, str):
        device = DEVICES[device]
    scan = scan_time_s(n_rows, n_cols_needed, n_cols_total, layout,
                       value_bytes)
    data_bytes = n_rows * n_cols_needed * value_bytes
    if device.transfer_gbps is None:
        transfer = 0.0
    else:
        transfer = data_bytes / (device.transfer_gbps * 1e9)
    flops = n_rows * n_cols_needed * flops_per_value * epochs
    compute = flops / (device.compute_gflops * 1e9)
    total = scan + transfer + compute + device.setup_ms / 1000.0
    return {"scan": scan, "transfer": transfer, "compute": compute,
            "total": total}


def crossover_table(row_counts, devices=("cpu", "fpga", "gpu"),
                    layouts=("row", "column"), **kwargs):
    """Training time per (device, layout) across data sizes.

    Returns:
        list of dict rows: ``{"n_rows", "device", "layout", "total_s"}`` —
        the E15 crossover table showing where offload starts to win and
        how much the columnar layout helps.
    """
    out = []
    for n_rows in row_counts:
        for device in devices:
            for layout in layouts:
                t = training_time(device, n_rows, n_cols_needed=6,
                                  layout=layout, **kwargs)
                out.append({
                    "n_rows": n_rows,
                    "device": device,
                    "layout": layout,
                    "total_s": t["total"],
                })
    return out


def best_device(n_rows, layout="column", **kwargs):
    """The fastest device for a given scale (argmin of total time)."""
    times = {
        name: training_time(name, n_rows, n_cols_needed=6, layout=layout,
                            **kwargs)["total"]
        for name in DEVICES
    }
    return min(times, key=times.get), times
