"""Model training optimization (paper §2.2, category 3)."""

from repro.db4ai.training.registry import ModelRecord, ModelRegistry
from repro.db4ai.training.features import (
    FeatureSpec,
    FeatureComputeEngine,
    greedy_forward_selection,
)
from repro.db4ai.training.model_select import (
    TrainingJob,
    make_search_space,
    simulate_parallel_search,
    successive_halving,
)
from repro.db4ai.training.hardware import (
    DeviceSpec,
    DEVICES,
    training_time,
    crossover_table,
)
from repro.db4ai.training.fault_tolerance import (
    CheckpointStore,
    CheckpointableMLPTrainer,
    CheckpointedTrainer,
    SimulatedCrash,
)

__all__ = [
    "CheckpointStore",
    "CheckpointableMLPTrainer",
    "CheckpointedTrainer",
    "SimulatedCrash",
    "ModelRecord",
    "ModelRegistry",
    "FeatureSpec",
    "FeatureComputeEngine",
    "greedy_forward_selection",
    "TrainingJob",
    "make_search_space",
    "simulate_parallel_search",
    "successive_halving",
    "DeviceSpec",
    "DEVICES",
    "training_time",
    "crossover_table",
]
