"""ModelDB-lite: a versioned in-database model registry (Vartak et al. [75]).

Model training is trial-and-error; the registry tracks every trained model
with its hyperparameters, metrics, training-data lineage, and parent
version, and supports the queries a practitioner actually runs: "best
model for task X", "what produced this model", "all versions of Y".
"""

import time

from repro.common import CatalogError


class ModelRecord:
    """One registered model version.

    Attributes:
        name: logical model name.
        version: integer version within the name (1-based).
        model: the fitted estimator object.
        params: hyperparameter dict.
        metrics: evaluation metrics dict.
        lineage: description of training data (table name, predicate, row
            count, feature columns...).
        parent: ``(name, version)`` of the model this was derived from.
        created_at: registration timestamp (seconds).
        tags: free-form string tags.
    """

    def __init__(self, name, version, model, params=None, metrics=None,
                 lineage=None, parent=None, tags=()):
        self.name = name
        self.version = version
        self.model = model
        self.params = dict(params or {})
        self.metrics = dict(metrics or {})
        self.lineage = dict(lineage or {})
        self.parent = parent
        self.created_at = time.time()
        self.tags = set(tags)

    @property
    def key(self):
        """``(name, version)`` identity."""
        return (self.name, self.version)

    def __repr__(self):
        return "ModelRecord(%s v%d, metrics=%r)" % (
            self.name, self.version, self.metrics
        )


class ModelRegistry:
    """Stores, versions, and searches model records."""

    def __init__(self):
        self._by_name = {}

    def register(self, name, model, params=None, metrics=None, lineage=None,
                 parent=None, tags=()):
        """Register a new version of ``name``; returns the record."""
        versions = self._by_name.setdefault(name.lower(), [])
        record = ModelRecord(
            name, len(versions) + 1, model, params, metrics, lineage, parent,
            tags,
        )
        versions.append(record)
        return record

    def get(self, name, version=None):
        """Fetch a record (latest version by default)."""
        versions = self._by_name.get(name.lower())
        if not versions:
            raise CatalogError("no model named %r" % (name,))
        if version is None:
            return versions[-1]
        if not 1 <= version <= len(versions):
            raise CatalogError(
                "model %r has versions 1..%d, not %r"
                % (name, len(versions), version)
            )
        return versions[version - 1]

    def has_model(self, name):
        """Whether any version of ``name`` exists."""
        return name.lower() in self._by_name

    def versions(self, name):
        """All versions of one model name."""
        versions = self._by_name.get(name.lower())
        if not versions:
            raise CatalogError("no model named %r" % (name,))
        return list(versions)

    def all_records(self):
        """Every record across names and versions."""
        out = []
        for versions in self._by_name.values():
            out.extend(versions)
        return out

    def best(self, metric, higher_is_better=True, tag=None):
        """The record with the best value of ``metric`` (optionally tagged)."""
        pool = [
            r
            for r in self.all_records()
            if metric in r.metrics and (tag is None or tag in r.tags)
        ]
        if not pool:
            raise CatalogError("no models with metric %r" % (metric,))
        return (max if higher_is_better else min)(
            pool, key=lambda r: r.metrics[metric]
        )

    def search(self, predicate):
        """Records satisfying ``predicate(record)``."""
        return [r for r in self.all_records() if predicate(r)]

    def lineage_chain(self, name, version=None):
        """Walk parents back to the root; returns records newest-first."""
        chain = [self.get(name, version)]
        while chain[-1].parent is not None:
            chain.append(self.get(*chain[-1].parent))
        return chain

    def __len__(self):
        return len(self.all_records())
