"""DB-for-AI: database techniques that optimize ML workflows (paper §2.2).

Subpackages mirror the tutorial's four DB4AI categories:

* :mod:`repro.db4ai.declarative` — AISQL: ``CREATE MODEL`` / ``PREDICT``
  statements executed inside the database.
* :mod:`repro.db4ai.governance` — data discovery (Aurum-lite EKG), data
  cleaning (ActiveClean-lite), data labeling (crowd + truth inference),
  and data lineage.
* :mod:`repro.db4ai.training` — feature-selection materialization, model
  selection with parallel search, the model registry (ModelDB-lite), and
  the hardware-acceleration cost model.
* :mod:`repro.db4ai.inference` — in-database operators, operator
  selection, and hybrid DB+AI query optimization (pushdown, cascades).
"""
