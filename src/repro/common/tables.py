"""Result-table formatting shared by benchmarks and EXPERIMENTS.md.

Every experiment in the benchmark harness emits a :class:`ResultTable` so
that console output, markdown snippets, and CSV files all agree. Keeping a
single formatting path is what lets EXPERIMENTS.md be regenerated rather
than hand-edited.
"""


def _format_cell(value, floatfmt):
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


class ResultTable:
    """A small, ordered, column-typed result table.

    Args:
        title: human-readable experiment title (printed as a header).
        columns: ordered list of column names.
        floatfmt: ``format()`` spec applied to float cells (default ``.4g``).
    """

    def __init__(self, title, columns, floatfmt=".4g"):
        if not columns:
            raise ValueError("a ResultTable needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.floatfmt = floatfmt
        self.rows = []

    def add_row(self, *values, **named):
        """Append a row, either positionally or by column name.

        Positional values must match the column count exactly; named values
        must cover every column. Mixing the two styles is rejected to keep
        call sites unambiguous.
        """
        if values and named:
            raise ValueError("pass either positional values or named values")
        if named:
            missing = [c for c in self.columns if c not in named]
            if missing:
                raise ValueError("missing columns: %s" % ", ".join(missing))
            extra = [k for k in named if k not in self.columns]
            if extra:
                raise ValueError("unknown columns: %s" % ", ".join(extra))
            row = [named[c] for c in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    "expected %d values, got %d" % (len(self.columns), len(values))
                )
            row = list(values)
        self.rows.append(row)
        return self

    def column(self, name):
        """Return the values of one column as a list."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError("no column named %r" % (name,))
        return [row[idx] for row in self.rows]

    def _rendered(self):
        header = [str(c) for c in self.columns]
        body = [
            [_format_cell(v, self.floatfmt) for v in row] for row in self.rows
        ]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return header, body, widths

    def to_text(self):
        """Render as an aligned plain-text table with a title header."""
        header, body, widths = self._rendered()
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append(sep)
        for row in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self):
        """Render as a GitHub-flavored markdown table (with title header)."""
        header, body, __ = self._rendered()
        lines = ["### %s" % self.title, ""]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in body:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_csv(self):
        """Render as CSV text (no title; header row first)."""
        def esc(cell):
            if any(ch in cell for ch in ",\"\n"):
                return '"' + cell.replace('"', '""') + '"'
            return cell

        header, body, __ = self._rendered()
        lines = [",".join(esc(h) for h in header)]
        for row in body:
            lines.append(",".join(esc(c) for c in row))
        return "\n".join(lines)

    def show(self):
        """Print the plain-text rendering (used by benches and examples)."""
        print()
        print(self.to_text())
        print()
        return self

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "ResultTable(title=%r, columns=%r, rows=%d)" % (
            self.title,
            self.columns,
            len(self.rows),
        )
