"""Seeded-randomness helpers.

The whole library follows one convention: any function or class that draws
random numbers accepts a ``seed`` argument that may be ``None``, an ``int``,
or a :class:`numpy.random.Generator`. :func:`ensure_rng` converts all three
into a generator, so components compose without sharing hidden global state.
"""

import numpy as np


def ensure_rng(seed=None):
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Args:
        seed: ``None`` (fresh entropy), an ``int`` seed, or an existing
            ``Generator`` (returned unchanged so callers can thread one
            generator through a pipeline).

    Returns:
        numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, count):
    """Derive ``count`` independent child generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so children are
    statistically independent and the derivation is stable across runs.

    Args:
        seed: anything :func:`ensure_rng` accepts.
        count: number of child generators to produce.

    Returns:
        list[numpy.random.Generator]
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %r" % (count,))
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
