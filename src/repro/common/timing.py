"""Wall-clock timing helpers used by the experiment harness."""

import time
from contextlib import contextmanager


class Stopwatch:
    """Accumulating stopwatch.

    A stopwatch can be started and stopped repeatedly; ``elapsed`` is the
    total time spent between start/stop pairs. Useful for timing only the
    optimizer portion of a loop that also executes queries.
    """

    def __init__(self):
        self._start = None
        self._elapsed = 0.0

    def start(self):
        """Begin (or resume) timing. Idempotent while running."""
        if self._start is None:
            self._start = time.perf_counter()
        return self

    def stop(self):
        """Pause timing and fold the interval into ``elapsed``."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self

    def reset(self):
        """Zero the accumulated time and stop the watch."""
        self._start = None
        self._elapsed = 0.0
        return self

    @property
    def running(self):
        """Whether the watch is currently accumulating time."""
        return self._start is not None

    @property
    def elapsed(self):
        """Total accumulated seconds (including the open interval, if any)."""
        extra = 0.0
        if self._start is not None:
            extra = time.perf_counter() - self._start
        return self._elapsed + extra


@contextmanager
def timed(sink=None, key=None):
    """Context manager yielding a :class:`Stopwatch` around a block.

    Args:
        sink: optional ``dict``; when given together with ``key`` the elapsed
            seconds are stored into ``sink[key]`` on exit.
        key: dictionary key used with ``sink``.

    Example:
        >>> times = {}
        >>> with timed(times, "fit"):
        ...     _ = sum(range(1000))
        >>> times["fit"] >= 0.0
        True
    """
    watch = Stopwatch().start()
    try:
        yield watch
    finally:
        watch.stop()
        if sink is not None and key is not None:
            sink[key] = watch.elapsed
