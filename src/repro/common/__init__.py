"""Shared utilities: errors, seeded randomness, timing, table reporting.

Everything in :mod:`repro` that needs randomness accepts either an integer
seed or a :class:`numpy.random.Generator`; :func:`ensure_rng` normalizes
the two so experiments are reproducible end to end.
"""

from repro.common.errors import (
    ReproError,
    EngineError,
    CatalogError,
    ParseError,
    PlanError,
    ExecutionError,
    ModelError,
    NotFittedError,
)
from repro.common.rng import ensure_rng, spawn_rngs
from repro.common.timing import Stopwatch, timed
from repro.common.tables import ResultTable

__all__ = [
    "ReproError",
    "EngineError",
    "CatalogError",
    "ParseError",
    "PlanError",
    "ExecutionError",
    "ModelError",
    "NotFittedError",
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "ResultTable",
]
