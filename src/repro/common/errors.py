"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still being able to discriminate by subsystem. Engine-raised errors
additionally share :class:`EngineError`, the base the session API's
``repro.engine.errors`` module re-exports and extends — catching
``EngineError`` means "anything the database engine can signal" (parse,
catalog, planning, execution, policy, admission) without also swallowing
ML-layer misuse (:class:`ModelError`).

The classes live here, below the engine, so both ``repro.common`` and
``repro.engine.errors`` can expose the *same* objects (back-compat
aliases, not copies) without a layering cycle.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EngineError(ReproError):
    """Base class for every error the database engine raises.

    The root of the ``repro.engine.errors`` hierarchy: parse, catalog,
    plan, execution, policy, session, and admission errors all derive
    from it.
    """


class CatalogError(EngineError):
    """A catalog object (table, column, index, view) is missing or invalid."""


class ParseError(EngineError):
    """SQL (or AISQL) text could not be tokenized or parsed.

    Attributes:
        position: character offset in the input where the error was detected,
            or ``None`` when the error is not tied to a single location.
    """

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class PlanError(EngineError):
    """A logical or physical plan is malformed or cannot be produced."""


class ExecutionError(EngineError):
    """A physical operator failed while producing rows."""


class ModelError(ReproError):
    """An ML model was misused (bad shapes, invalid hyperparameters...)."""


class NotFittedError(ModelError):
    """A model method requiring a fitted model was called before ``fit``."""
