"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library signals with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """A catalog object (table, column, index, view) is missing or invalid."""


class ParseError(ReproError):
    """SQL (or AISQL) text could not be tokenized or parsed.

    Attributes:
        position: character offset in the input where the error was detected,
            or ``None`` when the error is not tied to a single location.
    """

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class PlanError(ReproError):
    """A logical or physical plan is malformed or cannot be produced."""


class ExecutionError(ReproError):
    """A physical operator failed while producing rows."""


class ModelError(ReproError):
    """An ML model was misused (bad shapes, invalid hyperparameters...)."""


class NotFittedError(ModelError):
    """A model method requiring a fitted model was called before ``fit``."""
