"""Bridge: learned access control → engine session policies.

Closes the loop between the security experiments and the engine's
session layer. The access-control track trains controllers that judge
``(role, action, purpose, sensitivity, off_hours, bulk)`` requests; the
engine's :class:`~repro.engine.session.policy.Policy` wants declarative
table/column/statement gates. :func:`derive_policy` asks a fitted
controller about every column in a catalog — sensitivity read from the
schema's ground-truth :attr:`ColumnSchema.sensitive` flag — and compiles
the answers into a ``Policy`` a session can enforce, so a "support role,
support_ticket purpose, off hours" caller gets exactly the column
visibility the learned controller would grant, statement by statement.

Layering: ai4db imports the engine (never the reverse) — this module is
the sanctioned direction for wiring learned components into sessions.
"""

from repro.engine.session.policy import Policy

#: Controller actions that justify write statement kinds.
_WRITE_ACTIONS = ("update",)

#: Statement kinds granted when a write action is permitted.
_WRITE_KINDS = ("INSERT", "CREATE TABLE", "CREATE INDEX", "ANALYZE")


def column_sensitivity(column):
    """Map a :class:`ColumnSchema` to the controller's sensitivity vocab.

    The engine schema carries one bit (``sensitive``); the controllers
    were trained on four levels. Sensitive columns map to ``"pii"`` (the
    level the hidden policy guards hardest), everything else to
    ``"internal"``.
    """
    return "pii" if getattr(column, "sensitive", False) else "internal"


def derive_policy(catalog, controller, role, purpose, *, off_hours=False,
                  bulk=False, max_rows=None, max_cost=None):
    """Compile a fitted access controller into a session :class:`Policy`.

    Args:
        catalog: the :class:`~repro.engine.catalog.Catalog` whose
            columns the policy should cover.
        controller: a fitted access controller (anything with
            ``predict(requests) -> 0/1 array`` over
            ``(role, action, purpose, sensitivity, off_hours, bulk)``
            rows — :class:`LearnedAccessController` or
            :class:`StaticACLBaseline`).
        role / purpose: the caller's identity and stated purpose.
        off_hours / bulk: request context, applied to every probe.
        max_rows / max_cost: optional resource ceilings passed through
            to the policy (``bulk=False`` callers typically set
            ``max_rows``).

    Returns:
        a :class:`Policy` whose ``deny_columns`` are the columns the
        controller denies ``read`` on, and whose ``statement_kinds``
        are ``{"SELECT"}`` plus the write kinds iff the controller
        permits ``update`` on internal data.
    """
    probes = []
    probe_columns = []
    for name in catalog.table_names():
        schema = catalog.table(name).schema
        for column in schema.columns:
            probes.append((role, "read", purpose,
                           column_sensitivity(column), off_hours, bulk))
            probe_columns.append("%s.%s" % (name.lower(),
                                            column.name.lower()))
    deny_columns = []
    if probes:
        verdicts = controller.predict(probes)
        deny_columns = [
            col for col, verdict in zip(probe_columns, verdicts)
            if not int(verdict)
        ]
    kinds = ["SELECT", "PREDICT", "EVALUATE"]
    write_probe = [(role, action, purpose, "internal", off_hours, bulk)
                   for action in _WRITE_ACTIONS]
    if write_probe and all(int(v) for v in controller.predict(write_probe)):
        kinds.extend(_WRITE_KINDS)
        kinds.append("CREATE MODEL")
    return Policy(
        statement_kinds=kinds,
        deny_columns=deny_columns,
        max_rows=max_rows,
        max_cost=max_cost,
    )
