"""Sensitive-data discovery: learned column classification vs. name rules.

Traditional sensitive-data discovery keys on column *names* ("ssn",
"email"); it misses sensitive data hiding behind neutral names
(``col_17``, ``contact``) and false-positives on lookalike names. The
learned approach the tutorial describes classifies columns from **content
features** (value patterns, digit structure, entropy) combined with name
tokens — reproduced here over a synthetic column generator with ground
truth.
"""

import math
import re

import numpy as np

from repro.common import ensure_rng
from repro.ml import RandomForestClassifier, precision_recall_f1

_FIRST = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"]
_LAST = ["smith", "jones", "lee", "garcia", "chen", "patel", "kim", "novak"]
_STREETS = ["oak st", "maple ave", "2nd st", "park rd", "hill blvd"]
_CITIES = ["springfield", "rivertown", "lakeview", "hillcrest"]
_CATEGORIES = ["red", "green", "blue", "small", "large", "basic", "pro"]


def _luhn_checksum_ok(digits):
    total = 0
    for i, d in enumerate(reversed(digits)):
        d = int(d)
        if i % 2 == 1:
            d *= 2
            if d > 9:
                d -= 9
        total += d
    return total % 10 == 0


class SensitiveColumnGenerator:
    """Generates labeled columns: (name, values, is_sensitive).

    Sensitive kinds: email, ssn, phone, credit_card, full_name, address,
    salary. Non-sensitive kinds: row ids, category codes, quantities,
    timestamps, booleans, city names. Half of the sensitive columns get a
    *misleading neutral name* (``field_7``) and some non-sensitive columns
    get lookalike names (``email_opt_in``) — the cases that separate
    learned content inspection from name rules.
    """

    SENSITIVE_KINDS = ["email", "ssn", "phone", "credit_card", "full_name",
                       "address", "salary"]
    PLAIN_KINDS = ["row_id", "category", "quantity", "timestamp", "flag",
                   "city"]

    def __init__(self, seed=0, neutral_name_fraction=0.5):
        self._rng = ensure_rng(seed)
        self.neutral_name_fraction = neutral_name_fraction
        self._counter = 0

    def _values(self, kind, n):
        rng = self._rng
        if kind == "email":
            return ["%s.%s%d@example.com" % (
                _FIRST[rng.integers(0, len(_FIRST))],
                _LAST[rng.integers(0, len(_LAST))],
                rng.integers(1, 99),
            ) for __ in range(n)]
        if kind == "ssn":
            return ["%03d-%02d-%04d" % (
                rng.integers(1, 900), rng.integers(1, 99), rng.integers(1, 9999)
            ) for __ in range(n)]
        if kind == "phone":
            return ["+1-%03d-%03d-%04d" % (
                rng.integers(200, 999), rng.integers(100, 999),
                rng.integers(0, 9999),
            ) for __ in range(n)]
        if kind == "credit_card":
            out = []
            for __ in range(n):
                digits = [int(d) for d in str(rng.integers(10**14, 10**15))]
                # Fix the Luhn check digit.
                for check in range(10):
                    if _luhn_checksum_ok(digits + [check]):
                        out.append("".join(map(str, digits + [check])))
                        break
            return out
        if kind == "full_name":
            return ["%s %s" % (
                _FIRST[rng.integers(0, len(_FIRST))].title(),
                _LAST[rng.integers(0, len(_LAST))].title(),
            ) for __ in range(n)]
        if kind == "address":
            return ["%d %s, %s" % (
                rng.integers(1, 9999),
                _STREETS[rng.integers(0, len(_STREETS))],
                _CITIES[rng.integers(0, len(_CITIES))],
            ) for __ in range(n)]
        if kind == "salary":
            return [str(int(v)) for v in rng.lognormal(11, 0.4, n)]
        if kind == "row_id":
            return [str(i) for i in range(n)]
        if kind == "category":
            return [
                _CATEGORIES[rng.integers(0, len(_CATEGORIES))] for __ in range(n)
            ]
        if kind == "quantity":
            return [str(int(v)) for v in rng.integers(0, 500, n)]
        if kind == "timestamp":
            return ["2026-%02d-%02d %02d:%02d" % (
                rng.integers(1, 13), rng.integers(1, 29),
                rng.integers(0, 24), rng.integers(0, 60),
            ) for __ in range(n)]
        if kind == "flag":
            return [("true" if rng.random() < 0.5 else "false") for __ in range(n)]
        if kind == "city":
            return [_CITIES[rng.integers(0, len(_CITIES))] for __ in range(n)]
        raise ValueError("unknown kind %r" % (kind,))

    _HONEST_NAMES = {
        "email": "email", "ssn": "ssn", "phone": "phone_number",
        "credit_card": "card_number", "full_name": "customer_name",
        "address": "home_address", "salary": "salary",
        "row_id": "id", "category": "category", "quantity": "qty",
        "timestamp": "created_at", "flag": "active", "city": "city",
    }

    _LOOKALIKE_NAMES = ["email_opt_in", "ssn_verified", "phone_contacted",
                        "name_length", "card_on_file"]

    def generate(self, n_columns=120, rows_per_column=60):
        """Returns ``(names, value_lists, labels, kinds)``."""
        rng = self._rng
        names, values, labels, kinds = [], [], [], []
        for __ in range(n_columns):
            sensitive = rng.random() < 0.45
            pool = self.SENSITIVE_KINDS if sensitive else self.PLAIN_KINDS
            kind = pool[int(rng.integers(0, len(pool)))]
            if sensitive and rng.random() < self.neutral_name_fraction:
                name = "field_%d" % self._counter  # hides from name rules
            elif not sensitive and rng.random() < 0.2:
                name = self._LOOKALIKE_NAMES[
                    int(rng.integers(0, len(self._LOOKALIKE_NAMES)))
                ]  # fools name rules
            else:
                name = self._HONEST_NAMES[kind]
            self._counter += 1
            names.append(name)
            values.append(self._values(kind, rows_per_column))
            labels.append(1 if sensitive else 0)
            kinds.append(kind)
        return names, values, np.array(labels), kinds


class RegexRuleDiscovery:
    """Baseline: flag columns whose *name* matches a sensitive pattern."""

    name = "name-rules"

    PATTERNS = [r"ssn", r"email", r"phone", r"card", r"salary", r"name",
                r"address"]

    def __init__(self):
        self._patterns = [re.compile(p, re.IGNORECASE) for p in self.PATTERNS]

    def predict(self, names, value_lists=None):
        """1 = flagged sensitive (content ignored)."""
        return np.array(
            [int(any(p.search(n) for p in self._patterns)) for n in names]
        )


def _entropy(text):
    if not text:
        return 0.0
    counts = {}
    for c in text:
        counts[c] = counts.get(c, 0) + 1
    n = len(text)
    return -sum(v / n * math.log2(v / n) for v in counts.values())


_CONTENT_PATTERNS = {
    "email_like": re.compile(r"^[^@\s]+@[^@\s]+\.[a-z]{2,}$", re.IGNORECASE),
    "ssn_like": re.compile(r"^\d{3}-\d{2}-\d{4}$"),
    "phone_like": re.compile(r"^\+?[\d\-\(\) ]{7,16}$"),
    "date_like": re.compile(r"^\d{4}-\d{2}-\d{2}"),
}

_NAME_TOKENS = ["ssn", "email", "phone", "card", "salary", "name", "address",
                "id", "qty", "flag", "field"]


def column_features(name, values):
    """Name-token + content-statistics features for one column."""
    sample = [str(v) for v in values[:50]]
    feats = []
    lname = name.lower()
    for tok in _NAME_TOKENS:
        feats.append(1.0 if tok in lname else 0.0)
    lengths = [len(s) for s in sample]
    feats.append(float(np.mean(lengths)))
    feats.append(float(np.std(lengths)))
    digit_fracs = [sum(c.isdigit() for c in s) / max(1, len(s)) for s in sample]
    feats.append(float(np.mean(digit_fracs)))
    feats.append(float(np.mean([s.count("-") for s in sample])))
    feats.append(float(np.mean([s.count("@") for s in sample])))
    feats.append(float(np.mean([s.count(" ") for s in sample])))
    feats.append(float(np.mean([_entropy(s) for s in sample])))
    for pat in _CONTENT_PATTERNS.values():
        feats.append(float(np.mean([bool(pat.match(s)) for s in sample])))
    # Luhn-pass rate among 13-19 digit strings (credit-card signal).
    luhn = []
    for s in sample:
        digits = re.sub(r"\D", "", s)
        if 13 <= len(digits) <= 19:
            luhn.append(float(_luhn_checksum_ok([int(d) for d in digits])))
    feats.append(float(np.mean(luhn)) if luhn else 0.0)
    feats.append(len(set(sample)) / max(1, len(sample)))  # distinct ratio
    return np.asarray(feats)


class LearnedSensitiveDiscovery:
    """Random forest over name + content features."""

    name = "learned"

    def __init__(self, seed=0):
        self.model = RandomForestClassifier(n_estimators=30, max_depth=8,
                                            seed=seed)

    def fit(self, names, value_lists, labels):
        X = np.stack([
            column_features(n, v) for n, v in zip(names, value_lists)
        ])
        self.model.fit(X, np.asarray(labels, dtype=float))
        return self

    def predict(self, names, value_lists):
        """1 = flagged sensitive."""
        X = np.stack([
            column_features(n, v) for n, v in zip(names, value_lists)
        ])
        return self.model.predict(X)


def discovery_f1(detector, names, value_lists, labels):
    """Precision/recall/F1 of a discovery method."""
    preds = detector.predict(names, value_lists)
    return precision_recall_f1(labels, preds)
