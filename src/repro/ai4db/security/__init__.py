"""Learned database security (paper §2.1, category 5)."""

from repro.ai4db.security.sql_injection import (
    InjectionCorpusGenerator,
    SignatureRuleDetector,
    LearnedInjectionDetector,
    evaluate_detector,
)
from repro.ai4db.security.discovery import (
    SensitiveColumnGenerator,
    RegexRuleDiscovery,
    LearnedSensitiveDiscovery,
)
from repro.ai4db.security.access_control import (
    AccessRequestGenerator,
    StaticACLBaseline,
    LearnedAccessController,
)
from repro.ai4db.security.session_policy import (
    column_sensitivity,
    derive_policy,
)

__all__ = [
    "InjectionCorpusGenerator",
    "SignatureRuleDetector",
    "LearnedInjectionDetector",
    "evaluate_detector",
    "SensitiveColumnGenerator",
    "RegexRuleDiscovery",
    "LearnedSensitiveDiscovery",
    "AccessRequestGenerator",
    "StaticACLBaseline",
    "LearnedAccessController",
    "column_sensitivity",
    "derive_policy",
]
