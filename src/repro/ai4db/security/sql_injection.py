"""SQL-injection detection: learned classifiers vs. signature rules.

The tutorial cites classification-tree [47, 69] and neural [5, 72]
injection detectors. The experimental story they share: signature rules
catch textbook attacks but miss *obfuscated* variants (comment insertion,
case mangling, encodings), while learned detectors generalize from lexical
statistics. The corpus generator below produces benign statements from
application templates plus five attack families, each with an obfuscated
variant, so E13 can report per-family recall.
"""

import re

import numpy as np

from repro.common import ensure_rng
from repro.ml import (
    DecisionTreeClassifier,
    LogisticRegression,
    StandardScaler,
    precision_recall_f1,
)

_BENIGN_TEMPLATES = [
    "SELECT name, email FROM users WHERE id = {n}",
    "SELECT * FROM orders WHERE customer_id = {n} AND status = '{w}'",
    "SELECT COUNT(*) FROM sessions WHERE user_id = {n}",
    "INSERT INTO audit (user_id, action) VALUES ({n}, '{w}')",
    "SELECT p.title FROM posts p WHERE p.author = '{w}' ORDER BY p.id LIMIT {n}",
    "SELECT balance FROM accounts WHERE iban = '{w}{n}'",
    "SELECT * FROM products WHERE price < {n} AND category = '{w}'",
    "SELECT id FROM users WHERE lower(email) = '{w}@example.com'",
]

_WORDS = ["pending", "shipped", "alice", "bob", "garden", "tools", "books",
          "active", "eu", "billing"]

_ATTACKS = {
    "tautology": [
        "SELECT * FROM users WHERE name = '' OR '1'='1'",
        "SELECT * FROM accounts WHERE id = {n} OR 1=1",
        "SELECT * FROM users WHERE email = 'x' OR 'a'='a' -- '",
    ],
    "union": [
        "SELECT name FROM products WHERE id = {n} UNION SELECT password FROM users",
        "SELECT title FROM posts WHERE id = {n} UNION SELECT card_number FROM payments -- ",
    ],
    "piggyback": [
        "SELECT * FROM users WHERE id = {n}; DROP TABLE users",
        "SELECT * FROM logs WHERE day = {n}; DELETE FROM audit",
    ],
    "comment": [
        "SELECT * FROM users WHERE name = 'admin' -- ' AND password = 'x'",
        "SELECT * FROM users WHERE id = {n} /* bypass */ OR 1=1",
    ],
    "blind": [
        "SELECT * FROM users WHERE id = {n} AND SUBSTR(password,1,1) = 'a'",
        "SELECT * FROM users WHERE id = {n} AND 1=(SELECT COUNT(*) FROM users)",
    ],
}


def _obfuscate(text, rng):
    """Apply the evasions real attackers use against signature filters."""
    choice = rng.integers(0, 4)
    if choice == 0:
        # Inline-comment splitting of keywords.
        for kw in ("UNION", "SELECT", "OR", "AND", "DROP"):
            text = re.sub(r"\b%s\b" % kw, kw[0] + "/**/" + kw[1:], text, count=1)
        return text
    if choice == 1:
        # Random case mangling.
        return "".join(
            c.upper() if rng.random() < 0.5 else c.lower() for c in text
        )
    if choice == 2:
        # Whitespace variation.
        return text.replace(" ", "  ").replace("=", " = ")
    # Alternate tautology spelling (avoids the classic '1'='1' signature).
    return text.replace("'1'='1'", "'abc' LIKE 'abc'").replace(
        "1=1", "2>1"
    )


class InjectionCorpusGenerator:
    """Labeled corpus of benign and attack statements.

    Args:
        obfuscate_fraction: share of attacks passed through the obfuscator.
        seed: generation seed.
    """

    def __init__(self, obfuscate_fraction=0.5, seed=0):
        self.obfuscate_fraction = obfuscate_fraction
        self._rng = ensure_rng(seed)

    def _fill(self, template):
        return template.format(
            n=int(self._rng.integers(1, 100000)),
            w=_WORDS[int(self._rng.integers(0, len(_WORDS)))],
        )

    def generate(self, n_benign=400, n_attacks=200):
        """Returns ``(texts, labels, families)``; family is ``None`` for
        benign, else the attack family (with ``+obf`` suffix if
        obfuscated)."""
        texts, labels, families = [], [], []
        for __ in range(n_benign):
            template = _BENIGN_TEMPLATES[
                int(self._rng.integers(0, len(_BENIGN_TEMPLATES)))
            ]
            texts.append(self._fill(template))
            labels.append(0)
            families.append(None)
        family_names = sorted(_ATTACKS)
        for __ in range(n_attacks):
            family = family_names[int(self._rng.integers(0, len(family_names)))]
            template = _ATTACKS[family][
                int(self._rng.integers(0, len(_ATTACKS[family])))
            ]
            text = self._fill(template)
            if self._rng.random() < self.obfuscate_fraction:
                text = _obfuscate(text, self._rng)
                family = family + "+obf"
            texts.append(text)
            labels.append(1)
            families.append(family)
        return texts, np.array(labels), families


class SignatureRuleDetector:
    """Baseline: the classic WAF-style signature list."""

    name = "signature-rules"

    SIGNATURES = [
        r"'1'\s*=\s*'1'",
        r"\b1\s*=\s*1\b",
        r"\bUNION\s+SELECT\b",
        r";\s*DROP\s+TABLE",
        r";\s*DELETE\s+FROM",
        r"--\s*$",
        r"--\s",
    ]

    def __init__(self):
        self._patterns = [re.compile(s, re.IGNORECASE) for s in self.SIGNATURES]

    def predict(self, texts):
        """1 = flagged as injection."""
        return np.array(
            [int(any(p.search(t) for p in self._patterns)) for t in texts]
        )


_KEYWORDS = ["union", "select", "drop", "delete", "insert", "or", "and",
             "like", "substr", "count"]


def lexical_features(text):
    """Lexical statistics robust to case/whitespace obfuscation."""
    lower = re.sub(r"/\*.*?\*/", " ", text.lower())  # strip inline comments
    tokens = re.findall(r"[a-z_]+|[0-9]+|[^\sa-z0-9_]", lower)
    n = max(1, len(text))
    feats = [
        len(text),
        text.count("'") / n * 100,
        text.count('"') / n * 100,
        text.count(";"),
        text.count("-") / n * 100,
        text.count("=") ,
        text.count("(") ,
        lower.count("/**/") + text.count("/*"),
        sum(c.isupper() for c in text) / n,
        sum(c.isdigit() for c in text) / n,
        len(tokens),
    ]
    for kw in _KEYWORDS:
        feats.append(sum(1 for t in tokens if t == kw))
    # Comparison-of-literals signal: any op between two literals/quoted.
    feats.append(
        len(re.findall(r"('[^']*'|\b\d+\b)\s*(=|>|<|like)\s*('[^']*'|\b\d+\b)",
                       lower))
    )
    # Statement count (piggyback signal).
    feats.append(lower.count(";"))
    return np.asarray(feats, dtype=float)


class LearnedInjectionDetector:
    """Classifier over lexical features (tree or logistic).

    Args:
        kind: ``"tree"`` (classification-tree detectors [47, 69]) or
            ``"logistic"``.
        seed: training seed.
    """

    def __init__(self, kind="tree", seed=0):
        self.kind = kind
        self.scaler = StandardScaler()
        if kind == "tree":
            self.model = DecisionTreeClassifier(max_depth=8, seed=seed)
        elif kind == "logistic":
            self.model = LogisticRegression(lr=0.3, epochs=600, seed=seed)
        else:
            raise ValueError("kind must be 'tree' or 'logistic'")
        self.name = "learned-%s" % kind

    def fit(self, texts, labels):
        X = np.stack([lexical_features(t) for t in texts])
        X = self.scaler.fit_transform(X)
        self.model.fit(X, np.asarray(labels, dtype=float))
        return self

    def predict(self, texts):
        """1 = flagged as injection."""
        X = np.stack([lexical_features(t) for t in texts])
        X = self.scaler.transform(X)
        return self.model.predict(X)


def evaluate_detector(detector, texts, labels, families=None):
    """Precision/recall/F1 overall plus per-family recall.

    Returns:
        dict with ``precision``, ``recall``, ``f1`` and (when families are
        given) ``family_recall`` mapping family -> recall.
    """
    preds = detector.predict(texts)
    precision, recall, f1 = precision_recall_f1(labels, preds)
    out = {"precision": precision, "recall": recall, "f1": f1}
    if families is not None:
        per = {}
        for fam in sorted({f for f in families if f}):
            idx = [i for i, f in enumerate(families) if f == fam]
            caught = sum(int(preds[i]) for i in idx)
            per[fam] = caught / max(1, len(idx))
        out["family_recall"] = per
    return out
