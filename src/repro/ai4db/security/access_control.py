"""Purpose-based access control: learned decisions vs. a static ACL matrix.

Colombo & Ferrari [9] argue for *purpose-aware* access control: whether a
request is legitimate depends not only on (role, action) but on the stated
purpose, the data's sensitivity, and context (time, volume). A static ACL
matrix over (role, action) cannot express those interactions; a classifier
trained on audited decisions can.

The generator embeds a hidden context-sensitive policy; both methods are
scored on held-out requests, with the *false-permit rate* (security
failures) reported separately from overall accuracy.
"""

import numpy as np

from repro.common import ensure_rng
from repro.ml import OneHotEncoder, RandomForestClassifier

ROLES = ["analyst", "engineer", "support", "marketing", "admin", "auditor"]
ACTIONS = ["read", "aggregate", "export", "update", "delete"]
PURPOSES = ["reporting", "debugging", "support_ticket", "campaign", "audit",
            "ad_hoc"]
SENSITIVITY = ["public", "internal", "pii", "financial"]


def _hidden_policy(role, action, purpose, sensitivity, off_hours, bulk):
    """The ground-truth policy (context-sensitive by construction)."""
    if role == "admin":
        return True
    if role == "auditor":
        return action in ("read", "aggregate") and purpose == "audit"
    if sensitivity == "public":
        return action != "delete"
    if sensitivity == "internal":
        if action in ("read", "aggregate"):
            return True
        if action == "export":
            return purpose in ("reporting", "audit") and not bulk
        return role == "engineer" and purpose == "debugging"
    if sensitivity == "pii":
        if role == "support" and purpose == "support_ticket" and action == "read":
            return not off_hours
        if role == "analyst" and action == "aggregate" and purpose == "reporting":
            return True
        return False
    # financial
    if role == "analyst" and action in ("read", "aggregate"):
        return purpose in ("reporting", "audit") and not bulk and not off_hours
    return False


class AccessRequestGenerator:
    """Generates labeled access requests under the hidden policy.

    Returns rows ``(role, action, purpose, sensitivity, off_hours, bulk)``
    and the policy's allow/deny label. A ``label_noise`` fraction flips
    labels to model imperfect audit data.
    """

    def __init__(self, seed=0, label_noise=0.02):
        self._rng = ensure_rng(seed)
        self.label_noise = label_noise

    def generate(self, n=2000):
        """Returns ``(requests, labels)``."""
        rng = self._rng
        requests = []
        labels = []
        for __ in range(n):
            role = ROLES[int(rng.integers(0, len(ROLES)))]
            action = ACTIONS[int(rng.integers(0, len(ACTIONS)))]
            purpose = PURPOSES[int(rng.integers(0, len(PURPOSES)))]
            sens = SENSITIVITY[int(rng.integers(0, len(SENSITIVITY)))]
            off_hours = bool(rng.random() < 0.3)
            bulk = bool(rng.random() < 0.25)
            allow = _hidden_policy(role, action, purpose, sens, off_hours, bulk)
            if rng.random() < self.label_noise:
                allow = not allow
            requests.append((role, action, purpose, sens, off_hours, bulk))
            labels.append(1 if allow else 0)
        return requests, np.array(labels)


class StaticACLBaseline:
    """Baseline: a (role, action) permission matrix learned by majority.

    This is how a DBA would configure GRANTs from the same audit log: for
    each (role, action) pair, allow iff the majority of audited requests
    were allowed. Context (purpose, sensitivity, time) is invisible to it.
    """

    name = "static-acl"

    def fit(self, requests, labels):
        votes = {}
        for (role, action, *_), y in zip(requests, labels):
            key = (role, action)
            allow, total = votes.get(key, (0, 0))
            votes[key] = (allow + int(y), total + 1)
        self._matrix = {
            key: (allow / total) >= 0.5 for key, (allow, total) in votes.items()
        }
        return self

    def predict(self, requests):
        """1 = permit."""
        return np.array(
            [
                int(self._matrix.get((r[0], r[1]), False))
                for r in requests
            ]
        )


class LearnedAccessController:
    """Random forest over one-hot request context (purpose-based AC)."""

    name = "learned"

    def __init__(self, seed=0):
        self._enc_role = OneHotEncoder()
        self._enc_action = OneHotEncoder()
        self._enc_purpose = OneHotEncoder()
        self._enc_sens = OneHotEncoder()
        self.model = RandomForestClassifier(n_estimators=30, max_depth=10,
                                            seed=seed)

    def _features(self, requests, fit=False):
        roles = [r[0] for r in requests]
        actions = [r[1] for r in requests]
        purposes = [r[2] for r in requests]
        sens = [r[3] for r in requests]
        extras = np.array([[float(r[4]), float(r[5])] for r in requests])
        if fit:
            blocks = [
                self._enc_role.fit_transform(roles),
                self._enc_action.fit_transform(actions),
                self._enc_purpose.fit_transform(purposes),
                self._enc_sens.fit_transform(sens),
            ]
        else:
            blocks = [
                self._enc_role.transform(roles),
                self._enc_action.transform(actions),
                self._enc_purpose.transform(purposes),
                self._enc_sens.transform(sens),
            ]
        return np.hstack(blocks + [extras])

    def fit(self, requests, labels):
        X = self._features(requests, fit=True)
        self.model.fit(X, np.asarray(labels, dtype=float))
        return self

    def predict(self, requests):
        """1 = permit."""
        return self.model.predict(self._features(requests))


def false_permit_rate(labels, preds):
    """Fraction of true-deny requests the method permitted (security risk)."""
    labels = np.asarray(labels)
    preds = np.asarray(preds)
    denies = labels == 0
    if not denies.any():
        return 0.0
    return float(np.mean(preds[denies] == 1))
