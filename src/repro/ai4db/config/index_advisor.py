"""Learned index advisors vs. the classical greedy what-if advisor.

The advisor problem: given a workload and a budget of ``k`` single-column
indexes, pick the set minimizing total workload cost. All advisors use the
engine's *what-if* machinery — hypothetical indexes costed by the planner
without being built — exactly how AutoAdmin-style tools and the learned
advisors the tutorial cites ([30], [50], [65]) interact with the engine.

* :class:`GreedyIndexAdvisor` — classic iterative what-if greedy.
* :class:`RLIndexAdvisor` — Q-learning over (chosen-set, add-index) MDP
  (Sadri et al. [65]).
* :class:`ClassifierIndexAdvisor` — learns "is this index beneficial?"
  from labeled what-if evaluations on training workloads (ML-enhanced
  advisor, Ma et al. [50]), then ranks candidates without what-if calls at
  recommendation time.
"""

import numpy as np

from repro.engine.optimizer.planner import Planner
from repro.ml import QLearningAgent, RandomForestClassifier


class IndexCandidate:
    """One candidate single-column index.

    Attributes:
        table, column: the indexed column.
        name: generated index name.
    """

    def __init__(self, table, column):
        self.table = table
        self.column = column
        self.name = "idx_%s_%s" % (table.lower(), column.lower())

    def key(self):
        """Hashable identity."""
        return (self.table.lower(), self.column.lower())

    def __repr__(self):
        return "IndexCandidate(%s.%s)" % (self.table, self.column)

    def __eq__(self, other):
        return isinstance(other, IndexCandidate) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())


def enumerate_index_candidates(workload):
    """All (table, column) pairs appearing in workload filter predicates."""
    seen = {}
    for q in workload:
        for p in q.predicates:
            cand = IndexCandidate(p.table, p.column)
            seen.setdefault(cand.key(), cand)
    return list(seen.values())


def workload_cost(catalog, workload, weights=None, include_hypothetical=True):
    """Total estimated workload cost under the catalog's current indexes."""
    planner = Planner(
        catalog, include_hypothetical=include_hypothetical, use_views=False
    )
    weights = weights or [1.0] * len(workload)
    total = 0.0
    for q, w in zip(workload, weights):
        plan = planner.plan(q)
        total += w * plan.est_cost
    return total


class _WhatIfSession:
    """Creates/drops hypothetical indexes around an evaluation."""

    def __init__(self, catalog):
        self.catalog = catalog
        self._created = []

    def cost_with(self, candidates, workload, weights=None):
        """Workload cost if exactly ``candidates`` were added as indexes."""
        created = []
        try:
            for cand in candidates:
                if self.catalog.index_on(cand.table, cand.column) is None:
                    self.catalog.create_index(
                        cand.name, cand.table, cand.column, hypothetical=True
                    )
                    created.append(cand.name)
            return workload_cost(self.catalog, workload, weights)
        finally:
            for name in created:
                self.catalog.drop_index(name)


class GreedyIndexAdvisor:
    """Classical iterative what-if greedy (AutoAdmin-style baseline)."""

    name = "greedy"

    def recommend(self, catalog, workload, budget, weights=None):
        """Pick up to ``budget`` candidates, best marginal gain first.

        Returns:
            ``(chosen, final_cost)``.
        """
        session = _WhatIfSession(catalog)
        candidates = enumerate_index_candidates(workload)
        chosen = []
        current_cost = session.cost_with([], workload, weights)
        while len(chosen) < budget:
            best_cand, best_cost = None, current_cost
            for cand in candidates:
                if cand in chosen:
                    continue
                cost = session.cost_with(chosen + [cand], workload, weights)
                if cost < best_cost - 1e-9:
                    best_cand, best_cost = cand, cost
            if best_cand is None:
                break
            chosen.append(best_cand)
            current_cost = best_cost
        return chosen, current_cost


class RLIndexAdvisor:
    """Q-learning over index-set construction (Sadri et al. [65]).

    State: frozenset of chosen candidate indices. Action: add one candidate.
    Episode ends at the budget; reward at each step is the (normalized)
    cost reduction achieved by the added index. After training, the greedy
    policy rollout gives the recommendation.

    Args:
        episodes: training episodes.
        seed: exploration seed.
    """

    name = "rl"

    def __init__(self, episodes=150, seed=0):
        self.episodes = episodes
        self.seed = seed

    def recommend(self, catalog, workload, budget, weights=None):
        session = _WhatIfSession(catalog)
        candidates = enumerate_index_candidates(workload)
        if not candidates:
            return [], workload_cost(catalog, workload, weights)
        base_cost = session.cost_with([], workload, weights)
        cost_cache = {frozenset(): base_cost}

        def cost_of(chosen_idx):
            key = frozenset(chosen_idx)
            if key not in cost_cache:
                cost_cache[key] = session.cost_with(
                    [candidates[i] for i in key], workload, weights
                )
            return cost_cache[key]

        agent = QLearningAgent(
            n_actions=len(candidates),
            alpha=0.3,
            gamma=1.0,
            epsilon=0.4,
            epsilon_decay=0.98,
            seed=self.seed,
        )
        for __ in range(self.episodes):
            chosen = []
            for __step in range(min(budget, len(candidates))):
                state = frozenset(chosen)
                valid = [i for i in range(len(candidates)) if i not in chosen]
                action = agent.act(state, valid_actions=valid)
                prev = cost_of(chosen)
                chosen = chosen + [action]
                new = cost_of(chosen)
                reward = (prev - new) / max(base_cost, 1e-9)
                done = len(chosen) >= budget
                next_valid = [i for i in range(len(candidates)) if i not in chosen]
                agent.update(
                    state, action, reward, frozenset(chosen), done, next_valid
                )
            agent.decay()
        # Greedy rollout of the learned policy.
        chosen = []
        for __ in range(min(budget, len(candidates))):
            valid = [i for i in range(len(candidates)) if i not in chosen]
            if not valid:
                break
            action = agent.act(frozenset(chosen), valid_actions=valid, greedy=True)
            chosen.append(action)
        picked = [candidates[i] for i in chosen]
        return picked, cost_of(chosen)


class ClassifierIndexAdvisor:
    """Supervised advisor: predict index benefit from features, then rank.

    Features per candidate: column selectivity (1/ndv), table row count
    (log), how many workload queries filter the column, the mean predicate
    selectivity on it, and the fraction of equality predicates. Labels come
    from what-if evaluations on *training* workloads; at recommendation
    time no what-if calls are needed — the tutorial's point about advisors
    that amortize tuning cost.
    """

    name = "classifier"

    def __init__(self, benefit_threshold=0.01, seed=0):
        self.benefit_threshold = benefit_threshold
        self.seed = seed
        self.model = RandomForestClassifier(n_estimators=20, max_depth=6, seed=seed)
        self._fitted = False

    @staticmethod
    def _features(catalog, workload, cand):
        stats = catalog.stats(cand.table)
        col = stats.column(cand.column) if stats.has_column(cand.column) else None
        ndv = col.n_distinct if col is not None else 1
        n_rows = max(1, stats.n_rows)
        touching = [
            p
            for q in workload
            for p in q.predicates
            if (p.table.lower(), p.column.lower()) == cand.key()
        ]
        n_queries = sum(
            1
            for q in workload
            if any((p.table.lower(), p.column.lower()) == cand.key()
                   for p in q.predicates)
        )
        sels = []
        eq_frac = 0.0
        if touching and col is not None:
            sels = [col.selectivity(p.op, p.value) for p in touching
                    if isinstance(p.value, (int, float, str))]
            eq_frac = float(np.mean([p.op == "=" for p in touching]))
        mean_sel = float(np.mean(sels)) if sels else 1.0
        return np.array([
            1.0 / ndv,
            np.log1p(n_rows),
            n_queries / max(1, len(workload)),
            mean_sel,
            eq_frac,
        ])

    def fit(self, catalog, training_workloads, weights=None):
        """Label candidates on training workloads via what-if evaluation."""
        X, y = [], []
        session = _WhatIfSession(catalog)
        for workload in training_workloads:
            base = session.cost_with([], workload, weights)
            for cand in enumerate_index_candidates(workload):
                cost = session.cost_with([cand], workload, weights)
                benefit = (base - cost) / max(base, 1e-9)
                X.append(self._features(catalog, workload, cand))
                y.append(1 if benefit > self.benefit_threshold else 0)
        self.model.fit(np.stack(X), np.array(y, dtype=float))
        self._fitted = True
        return self

    def recommend(self, catalog, workload, budget, weights=None):
        """Rank candidates by predicted benefit probability; take top-k."""
        candidates = enumerate_index_candidates(workload)
        if not candidates:
            return [], workload_cost(catalog, workload, weights)
        if not self._fitted:
            raise RuntimeError("ClassifierIndexAdvisor used before fit")
        X = np.stack([self._features(catalog, workload, c) for c in candidates])
        probs = self.model.predict_proba(X)
        order = np.argsort(-probs)
        picked = [candidates[i] for i in order[:budget] if probs[i] >= 0.5]
        session = _WhatIfSession(catalog)
        return picked, session.cost_with(picked, workload, weights)


def realize_indexes(catalog, chosen):
    """Actually build the chosen indexes (drop-in after recommendation)."""
    built = []
    for cand in chosen:
        if catalog.index_on(cand.table, cand.column, include_hypothetical=False):
            continue
        built.append(catalog.create_index(cand.name, cand.table, cand.column))
    return built
