"""Learned SQL rewriting: MCTS over rule-application orderings.

The tutorial's observation: traditional rewriters apply rules in a fixed
(top-down) order and can miss better final queries, because rules interact
— e.g., propagating an equality constant may enable a contradiction
detection or make a join redundant. The learned rewriter treats rewriting
as a search problem over rule sequences and optimizes the *final plan
cost* directly, the deep-RL formulation the tutorial sketches.
"""

import numpy as np

from repro.common import ensure_rng
from repro.engine.optimizer.planner import Planner
from repro.engine.optimizer.rules import apply_rules_fixed_order, default_rules
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.ml import MCTS


def plan_cost(catalog, query, cost_model=None):
    """Estimated cost of the best plan for ``query`` (no views)."""
    planner = Planner(catalog, use_views=False, cost_model=cost_model)
    return planner.plan(query).est_cost


def rewrite_benefit(catalog, original, rewritten, cost_model=None):
    """Relative cost reduction achieved by a rewrite."""
    before = plan_cost(catalog, original, cost_model)
    after = plan_cost(catalog, rewritten, cost_model)
    return (before - after) / max(before, 1e-9)


class FixedOrderRewriter:
    """Traditional baseline: registry order, repeat to fixpoint."""

    name = "fixed-order"

    def __init__(self, rules=None):
        self.rules = rules if rules is not None else default_rules()

    def rewrite(self, query, catalog):
        """Returns ``(rewritten_query, applied_rule_names)``."""
        return apply_rules_fixed_order(query, self.rules, catalog=catalog)


class LearnedRewriter:
    """MCTS rewriter: search rule sequences, minimize final plan cost.

    State: ``(query, depth)``; actions: rules that currently apply (plus an
    implicit stop when none do or depth is exhausted); terminal reward:
    ``-log10(final plan cost)``. Each query is searched independently — the
    policy cost is bounded by ``n_iterations`` planner calls, which is the
    trade the deep-RL rewriting papers make as well.

    Args:
        rules: rule registry (default: the engine's standard rules).
        n_iterations: MCTS iterations per query.
        max_depth: maximum rule applications in one sequence.
        seed: rollout seed.
    """

    name = "learned"

    def __init__(self, rules=None, n_iterations=80, max_depth=6, seed=0):
        self.rules = rules if rules is not None else default_rules()
        self.n_iterations = n_iterations
        self.max_depth = max_depth
        self.seed = seed

    def rewrite(self, query, catalog):
        """Returns ``(rewritten_query, applied_rule_names)``."""
        rules = self.rules
        cost_cache = {}

        def cached_cost(q):
            # signature() covers the full query shape (incl. LIMIT).
            key = q.signature()
            if key not in cost_cache:
                cost_cache[key] = plan_cost(catalog, q)
            return cost_cache[key]

        def actions_fn(state):
            q, depth, __ = state
            if depth >= self.max_depth:
                return []
            acts = []
            for i, rule in enumerate(rules):
                if rule.apply(q, catalog=catalog) is not None:
                    acts.append(i)
            return acts

        def step_fn(state, action):
            q, depth, trace = state
            new_q = rules[action].apply(q, catalog=catalog)
            return (new_q, depth + 1, trace + (rules[action].name,))

        def reward_fn(state):
            q, __, ___ = state
            return -float(np.log10(cached_cost(q) + 1.0))

        mcts = MCTS(actions_fn, step_fn, reward_fn, c_uct=0.5, seed=self.seed)
        best_state, __ = mcts.search(
            (query, 0, ()), n_iterations=self.n_iterations
        )
        if best_state is None:
            return query, []
        best_q, __, trace = best_state
        # Never return something worse than the input.
        if cached_cost(best_q) > cached_cost(query):
            return query, []
        return best_q, list(trace)


def make_rewrite_corpus(catalog, fact_table, dim_tables, edges, n_queries=30,
                        n_values=100, seed=0):
    """Queries with planted rewrite opportunities over a star schema.

    Each query gets a random mix of: duplicate predicates, slack range
    predicates, a constant that propagates across a join, an unused
    key–FK joined dimension, and (rarely) a contradiction.

    Args:
        catalog: catalog with the schema loaded and analyzed.
        fact_table: fact table name.
        dim_tables: list of ``(dim_table, fact_fk_column, dim_key_column)``.
        edges: join edges usable in queries.
        n_values: constant domain for predicates.

    Returns:
        list of :class:`ConjunctiveQuery`.
    """
    rng = ensure_rng(seed)
    queries = []
    for __ in range(n_queries):
        k = int(rng.integers(1, len(dim_tables) + 1))
        picks = [dim_tables[i] for i in rng.choice(len(dim_tables), size=k,
                                                   replace=False)]
        tables = [fact_table] + [d[0] for d in picks]
        q_edges = [
            JoinEdge(fact_table, fk, dim, key) for dim, fk, key in picks
        ]
        predicates = []
        v = int(rng.integers(10, n_values))
        # Slack ranges on the fact table: val > v-20 AND val > v (redundant).
        predicates.append(Predicate(fact_table, "val", ">", max(0, v - 20)))
        predicates.append(Predicate(fact_table, "val", ">", v))
        if rng.random() < 0.5:
            predicates.append(Predicate(fact_table, "val", ">", v))  # duplicate
        # A join-key constant that can propagate to the dimension side.
        if picks and rng.random() < 0.6:
            dim, fk, key = picks[0]
            predicates.append(
                Predicate(fact_table, fk, "=", int(rng.integers(0, 50)))
            )
        # Rare contradiction.
        if rng.random() < 0.15:
            predicates.append(Predicate(fact_table, "val", "<", max(0, v - 30)))
        # The last dimension is referenced by nothing else -> redundant join.
        queries.append(
            ConjunctiveQuery(
                tables=tables,
                join_edges=q_edges,
                predicates=predicates,
                aggregates=[Aggregate("count")],
            )
        )
    return queries
