"""Learned knob tuning: CDBTune-lite, QTune-lite, and the baselines.

The tuners share one protocol: a fixed budget of *observations* of the
knob-response simulator (the expensive resource on a real system is
exactly these trial runs), after which the tuner's best-found throughput
is compared. This mirrors the CDBTune/QTune evaluation: performance
reached vs. tuning cost.

* :class:`CDBTuneLite` — DDPG over (internal metrics -> knob vector),
  reward = relative throughput improvement [87].
* :class:`QTuneLite` — same agent but the state also encodes workload
  (query) features, enabling workload-aware tuning across mixes [42].
* :class:`BayesianOptimizationTuner` — GP + expected improvement
  (OtterTune-style [3]).
* :class:`RandomSearchTuner`, :class:`GridSearchTuner`,
  :class:`DefaultConfigTuner` — the non-learning baselines.
"""

import numpy as np

from repro.common import ensure_rng
from repro.ml import BayesianOptimizer, DDPGAgent


class TuningResult:
    """Outcome of one tuning session.

    Attributes:
        best_vector: best normalized knob vector found.
        best_throughput: observed throughput at the best vector.
        history: list of throughput observations, in evaluation order.
        evaluations: number of simulator observations consumed.
    """

    def __init__(self, best_vector, best_throughput, history):
        self.best_vector = np.asarray(best_vector, dtype=float)
        self.best_throughput = float(best_throughput)
        self.history = list(history)

    @property
    def evaluations(self):
        return len(self.history)

    def best_so_far(self):
        """Cumulative-max curve over the history (for convergence plots)."""
        return np.maximum.accumulate(np.asarray(self.history, dtype=float))

    def __repr__(self):
        return "TuningResult(best=%.1f tps, evals=%d)" % (
            self.best_throughput, self.evaluations
        )


class _BaseTuner:
    """Shared bookkeeping: evaluate, track best, honor the budget."""

    name = "base"

    def tune(self, simulator, workload, budget):
        """Run a session of ``budget`` observations; returns TuningResult."""
        raise NotImplementedError


class DefaultConfigTuner(_BaseTuner):
    """Evaluates only the vendor default configuration (the no-DBA floor)."""

    name = "default"

    def tune(self, simulator, workload, budget):
        x = simulator.default_vector()
        tps = simulator.throughput(x, workload)
        return TuningResult(x, tps, [tps])


class RandomSearchTuner(_BaseTuner):
    """Uniform random search over the normalized knob cube."""

    name = "random"

    def __init__(self, seed=0):
        self._rng = ensure_rng(seed)

    def tune(self, simulator, workload, budget):
        best_x, best_tps, history = None, -np.inf, []
        for __ in range(budget):
            x = self._rng.random(simulator.dim)
            tps = simulator.throughput(x, workload)
            history.append(tps)
            if tps > best_tps:
                best_x, best_tps = x, tps
        return TuningResult(best_x, best_tps, history)


class GridSearchTuner(_BaseTuner):
    """Axis-aligned grid around the default (how DBAs actually sweep knobs).

    With d knobs and budget B the grid explores one knob at a time at
    ``B // d`` levels while holding the others at default — cheap but blind
    to interactions, which is exactly why it plateaus below the learned
    tuners on the interacting surface.
    """

    name = "grid"

    def tune(self, simulator, workload, budget):
        d = simulator.dim
        default = simulator.default_vector()
        best_x, best_tps, history = default.copy(), -np.inf, []
        levels = max(2, budget // d)
        current = default.copy()
        consumed = 0
        for k in range(d):
            if consumed >= budget:
                break
            best_level = current[k]
            for v in np.linspace(0.0, 1.0, levels):
                if consumed >= budget:
                    break
                x = current.copy()
                x[k] = v
                tps = simulator.throughput(x, workload)
                consumed += 1
                history.append(tps)
                if tps > best_tps:
                    best_x, best_tps = x.copy(), tps
                    best_level = v
            current[k] = best_level
        return TuningResult(best_x, best_tps, history)


class BayesianOptimizationTuner(_BaseTuner):
    """OtterTune-lite: GP surrogate + expected-improvement acquisition."""

    name = "bo"

    def __init__(self, seed=0, init_points=8, n_candidates=256):
        self.seed = seed
        self.init_points = init_points
        self.n_candidates = n_candidates

    def tune(self, simulator, workload, budget):
        bo = BayesianOptimizer(
            bounds=[(0.0, 1.0)] * simulator.dim,
            init_points=self.init_points,
            n_candidates=self.n_candidates,
            seed=self.seed,
            noise=1e-3,
        )
        history = []
        for __ in range(budget):
            x = bo.suggest()
            tps = simulator.throughput(x, workload)
            # Normalize objective so GP hyperparameters stay reasonable.
            bo.observe(x, tps / 1000.0)
            history.append(tps)
        best_x, best_scaled = bo.best
        return TuningResult(best_x, best_scaled * 1000.0, history)


class CDBTuneLite(_BaseTuner):
    """DDPG knob tuner conditioned on internal database metrics [87].

    Each step: observe the metrics vector at the current config, emit a knob
    vector (action in [-1, 1]^d mapped to [0, 1]^d), observe throughput, and
    learn from the relative improvement over the session's starting point.

    Args:
        episode_len: steps before resetting to the default config.
        train_steps_per_obs: gradient steps per observation.
        seed: agent seed.
    """

    name = "cdbtune"

    def __init__(self, episode_len=10, train_steps_per_obs=4, seed=0,
                 workload_aware=False):
        self.episode_len = episode_len
        self.train_steps_per_obs = train_steps_per_obs
        self.seed = seed
        self.workload_aware = workload_aware
        self._agent = None

    def _state(self, simulator, x, workload):
        metrics = simulator.metrics(x, workload)
        if self.workload_aware:
            return np.concatenate([metrics, workload.as_vector()])
        return metrics

    def _ensure_agent(self, simulator):
        if self._agent is None:
            state_dim = 5 + (4 if self.workload_aware else 0)
            # gamma=0: knob tuning is a contextual bandit — the config fully
            # determines performance, so the critic learns Q(state, config)
            # = immediate reward and the actor learns state -> best config.
            self._agent = DDPGAgent(
                state_dim=state_dim,
                action_dim=simulator.dim,
                gamma=0.0,
                noise_scale=0.6,
                noise_decay=0.985,
                batch_size=32,
                seed=self.seed,
            )
        return self._agent

    def pretrain(self, simulator, workloads, budget_per_workload=150,
                 rounds=2):
        """Offline pretraining across workloads (CDBTune's offline phase).

        Real deployments train the agent against replayed workloads for
        hours before any online session; the observations consumed here are
        *not* counted against the online tuning budget, matching the
        paper's evaluation protocol.
        """
        for __ in range(rounds):
            for workload in workloads:
                self.tune(simulator, workload, budget_per_workload)
        return self

    def tune(self, simulator, workload, budget):
        agent = self._ensure_agent(simulator)
        default = simulator.default_vector()
        base_tps = simulator.throughput(default, workload)
        history = [base_tps]
        best_x, best_tps = default.copy(), base_tps
        state = self._state(simulator, default, workload)
        # First online action: exploit the (possibly pretrained) policy.
        action = agent.act(state, noisy=False)
        step_in_episode = 0
        consumed = 1
        while consumed < budget:
            x = (action + 1.0) / 2.0
            tps = simulator.throughput(x, workload)
            consumed += 1
            history.append(tps)
            if tps > best_tps:
                best_x, best_tps = x.copy(), tps
            reward = (tps - base_tps) / max(base_tps, 1e-9)
            next_state = self._state(simulator, x, workload)
            agent.remember(state, action, reward, next_state, True)
            for __ in range(self.train_steps_per_obs):
                agent.train_step()
            state = next_state
            step_in_episode += 1
            if step_in_episode >= self.episode_len:
                agent.decay()
                state = self._state(simulator, default, workload)
                step_in_episode = 0
            action = agent.act(state)
        return TuningResult(best_x, best_tps, history)


class QTuneLite(CDBTuneLite):
    """Query-aware DDPG tuner: state includes workload features [42].

    Identical machinery to :class:`CDBTuneLite` but the agent sees the
    workload vector, so one agent can be trained across workload mixes and
    tune each appropriately (the E1 "mixed workload" row).
    """

    name = "qtune"

    def __init__(self, episode_len=10, train_steps_per_obs=4, seed=0):
        super().__init__(
            episode_len=episode_len,
            train_steps_per_obs=train_steps_per_obs,
            seed=seed,
            workload_aware=True,
        )


def run_tuning_session(tuners, simulator, workload, budget):
    """Run several tuners on the same surface; returns {name: TuningResult}.

    The simulator's evaluation counter is reset per tuner so each gets the
    same observation budget.
    """
    results = {}
    for tuner in tuners:
        simulator.evaluations = 0
        results[tuner.name] = tuner.tune(simulator, workload, budget)
    return results
