"""Learned database configuration (paper §2.1, category 1)."""

from repro.ai4db.config.knob_tuning import (
    TuningResult,
    DefaultConfigTuner,
    RandomSearchTuner,
    GridSearchTuner,
    BayesianOptimizationTuner,
    CDBTuneLite,
    QTuneLite,
    run_tuning_session,
)
from repro.ai4db.config.index_advisor import (
    IndexCandidate,
    enumerate_index_candidates,
    workload_cost,
    GreedyIndexAdvisor,
    RLIndexAdvisor,
    ClassifierIndexAdvisor,
)
from repro.ai4db.config.view_advisor import (
    ViewCandidate,
    enumerate_view_candidates,
    materialize_view,
    GreedyViewAdvisor,
    RLViewAdvisor,
)
from repro.ai4db.config.sql_rewriter import (
    LearnedRewriter,
    FixedOrderRewriter,
    rewrite_benefit,
    make_rewrite_corpus,
)
from repro.ai4db.config.partitioner import (
    PartitioningCostModel,
    HeuristicPartitioner,
    RLPartitioner,
)

__all__ = [
    "TuningResult",
    "DefaultConfigTuner",
    "RandomSearchTuner",
    "GridSearchTuner",
    "BayesianOptimizationTuner",
    "CDBTuneLite",
    "QTuneLite",
    "run_tuning_session",
    "IndexCandidate",
    "enumerate_index_candidates",
    "workload_cost",
    "GreedyIndexAdvisor",
    "RLIndexAdvisor",
    "ClassifierIndexAdvisor",
    "ViewCandidate",
    "enumerate_view_candidates",
    "materialize_view",
    "GreedyViewAdvisor",
    "RLViewAdvisor",
    "LearnedRewriter",
    "FixedOrderRewriter",
    "rewrite_benefit",
    "make_rewrite_corpus",
    "PartitioningCostModel",
    "HeuristicPartitioner",
    "RLPartitioner",
]
