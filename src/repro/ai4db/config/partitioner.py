"""Learned database partitioning (Hilprecht et al. [23], lite).

Given a multi-table workload and ``n_nodes``, choose a partition key per
table. The cost model captures the two forces the tutorial names — load
balance vs. access efficiency:

* a query with an equality predicate on a table's partition key touches one
  node (routed); otherwise it fans out to all nodes;
* a join whose two sides are co-partitioned on the join columns is local;
  otherwise one side must be reshuffled (cost ∝ its rows);
* skewed partition keys (few distinct values / heavy hitters) imbalance the
  nodes, so the busiest node dominates latency.

The RL advisor explores per-table key choices as a sequential MDP; the
heuristic baseline picks each table's most-frequently-filtered column —
the "single column mostly" tradition the paper calls out.
"""

import numpy as np

from repro.ml import QLearningAgent


class PartitioningCostModel:
    """Scores a partitioning assignment against a workload.

    Args:
        catalog: catalog with table statistics.
        n_nodes: number of partitions/nodes.
        shuffle_cost_per_row: network cost of repartitioning one row.
    """

    def __init__(self, catalog, n_nodes=4, shuffle_cost_per_row=2.0):
        self.catalog = catalog
        self.n_nodes = n_nodes
        self.shuffle_cost_per_row = shuffle_cost_per_row

    def _skew_factor(self, table, column):
        """Busiest-node load multiplier for hashing on ``column``.

        Estimated from column statistics: with ``ndv`` distinct values
        hashed onto ``n`` nodes, low-cardinality or heavy-hitter columns
        leave some node with far more than ``1/n`` of the rows.
        """
        stats = self.catalog.stats(table)
        if not stats.has_column(column):
            return float(self.n_nodes)
        col = stats.column(column)
        ndv = max(1, col.n_distinct)
        # Three skew sources: too few distinct values to fill the nodes
        # (k/ndv), a heavy hitter pinning one node (top_frac * k), and
        # balls-into-bins variance that fades as ndv grows.
        base = max(1.0, self.n_nodes / ndv)
        if col.top_values:
            top_frac = max(col.top_values.values()) / max(1, stats.n_rows)
            base = max(base, top_frac * self.n_nodes)
        return base * (1.0 + 1.0 / np.sqrt(ndv))

    def query_cost(self, query, assignment):
        """Cost of one query under ``assignment`` (table -> column)."""
        total = 0.0
        for t in query.tables:
            stats = self.catalog.stats(t)
            rows = stats.n_rows
            key = assignment.get(t.lower())
            skew = self._skew_factor(t, key) if key else float(self.n_nodes)
            routed = key is not None and any(
                p.op == "=" and p.table.lower() == t.lower()
                and p.column.lower() == key.lower()
                for p in query.predicates
            )
            if routed:
                # One node scans its share (with skew on the hot node).
                total += rows / self.n_nodes * skew
            else:
                # All nodes scan in parallel; busiest node dominates.
                total += rows / self.n_nodes * skew
                total += rows * 0.05  # fan-out coordination overhead
        for e in query.join_edges:
            lkey = assignment.get(e.left_table.lower())
            rkey = assignment.get(e.right_table.lower())
            co_partitioned = (
                lkey is not None
                and rkey is not None
                and lkey.lower() == e.left_column.lower()
                and rkey.lower() == e.right_column.lower()
            )
            if not co_partitioned:
                smaller = min(
                    self.catalog.stats(e.left_table).n_rows,
                    self.catalog.stats(e.right_table).n_rows,
                )
                total += self.shuffle_cost_per_row * smaller
        return total

    def workload_cost(self, workload, assignment):
        """Total workload cost under an assignment."""
        return sum(self.query_cost(q, assignment) for q in workload)

    def candidate_keys(self, table):
        """Columns worth considering as partition keys (all columns)."""
        return [c.name for c in self.catalog.table(table).schema.columns]


class HeuristicPartitioner:
    """Baseline: partition each table on its most-filtered column."""

    name = "heuristic"

    def recommend(self, cost_model, tables, workload):
        """Returns ``(assignment, cost)``."""
        assignment = {}
        for t in tables:
            counts = {}
            for q in workload:
                for p in q.predicates:
                    if p.table.lower() == t.lower():
                        counts[p.column.lower()] = counts.get(p.column.lower(), 0) + 1
            if counts:
                key = max(counts, key=counts.get)
            else:
                key = cost_model.candidate_keys(t)[0].lower()
            assignment[t.lower()] = key
        return assignment, cost_model.workload_cost(workload, assignment)


class RLPartitioner:
    """Q-learning over sequential per-table key choices ([23] lite).

    State: tuple of decisions made so far; actions: candidate key index for
    the next table; terminal reward: normalized cost reduction vs. the
    heuristic assignment. Exact for small schemas, and unlike the heuristic
    it discovers co-partitioning (choosing *join* keys over filter keys
    when shuffles dominate).
    """

    name = "rl"

    def __init__(self, episodes=300, seed=0):
        self.episodes = episodes
        self.seed = seed

    def recommend(self, cost_model, tables, workload):
        tables = list(tables)
        key_options = [cost_model.candidate_keys(t) for t in tables]
        heuristic_cost = HeuristicPartitioner().recommend(
            cost_model, tables, workload
        )[1]
        max_actions = max(len(opts) for opts in key_options)
        agent = QLearningAgent(
            n_actions=max_actions,
            alpha=0.3,
            gamma=1.0,
            epsilon=0.4,
            epsilon_decay=0.99,
            seed=self.seed,
        )
        cost_cache = {}

        def assignment_of(decisions):
            return {
                tables[i].lower(): key_options[i][a].lower()
                for i, a in enumerate(decisions)
            }

        def cost_of(decisions):
            key = tuple(decisions)
            if key not in cost_cache:
                cost_cache[key] = cost_model.workload_cost(
                    workload, assignment_of(decisions)
                )
            return cost_cache[key]

        for __ in range(self.episodes):
            decisions = []
            for i in range(len(tables)):
                state = tuple(decisions)
                valid = list(range(len(key_options[i])))
                action = agent.act(state, valid_actions=valid)
                decisions.append(action)
                done = len(decisions) == len(tables)
                reward = 0.0
                if done:
                    reward = (heuristic_cost - cost_of(decisions)) / max(
                        heuristic_cost, 1e-9
                    )
                next_valid = (
                    list(range(len(key_options[len(decisions)])))
                    if not done
                    else None
                )
                agent.update(
                    state, action, reward, tuple(decisions), done, next_valid
                )
            agent.decay()
        decisions = []
        for i in range(len(tables)):
            valid = list(range(len(key_options[i])))
            decisions.append(
                agent.act(tuple(decisions), valid_actions=valid, greedy=True)
            )
        assignment = assignment_of(decisions)
        return assignment, cost_of(decisions)
