"""Materialized-view advisors: DRL selection vs. greedy benefit-per-byte.

Candidates are the distinct join templates in the workload (same table set
+ join edges). Materializing one turns every matching query into a view
scan plus residual filters. The selection problem under a space budget is
the classic view-selection knapsack; Han et al. [21] attack it with deep
RL for dynamic workloads, greedy benefit-per-byte is the static baseline.
"""


from repro.engine.catalog import ViewDef
from repro.engine.optimizer.planner import Planner
from repro.engine.query import ConjunctiveQuery
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, TableSchema
from repro.ml import QLearningAgent


class ViewCandidate:
    """A candidate materialized view (join template).

    Attributes:
        query: the defining join-only :class:`ConjunctiveQuery` (no filter
            predicates — the view is usable by any predicate superset).
        frequency: how many workload queries match the template.
        name: generated view name.
    """

    _counter = [0]

    def __init__(self, query, frequency):
        self.query = query
        self.frequency = frequency
        ViewCandidate._counter[0] += 1
        self.name = "mv_%d" % ViewCandidate._counter[0]

    def key(self):
        """Hashable identity: table set + edge set."""
        return (
            tuple(sorted(t.lower() for t in self.query.tables)),
            tuple(sorted(e.key() for e in self.query.join_edges)),
        )

    def __repr__(self):
        return "ViewCandidate(%s, freq=%d)" % (
            "+".join(sorted(self.query.tables)), self.frequency
        )


def enumerate_view_candidates(workload, min_frequency=2, min_tables=2):
    """Join templates appearing at least ``min_frequency`` times."""
    groups = {}
    for q in workload:
        if len(q.tables) < min_tables:
            continue
        template = ConjunctiveQuery(tables=q.tables, join_edges=q.join_edges)
        key = (
            tuple(sorted(t.lower() for t in template.tables)),
            tuple(sorted(e.key() for e in template.join_edges)),
        )
        groups.setdefault(key, []).append(template)
    out = []
    for templates in groups.values():
        if len(templates) >= min_frequency:
            out.append(ViewCandidate(templates[0], len(templates)))
    return out


def materialize_view(database, candidate):
    """Execute the view's defining join and register it in the catalog.

    The materialized table stores *all* columns of the joined tables with
    ``table__column`` names (see :class:`~repro.engine.catalog.ViewDef`).

    Returns:
        the registered :class:`ViewDef`.
    """
    catalog = database.catalog
    planner = Planner(catalog, use_views=False, cost_model=database.cost_model)
    plan = planner.plan(candidate.query)
    result = database.executor.execute(plan)
    columns = []
    for t, c in result.columns:
        base_col = catalog.table(t).schema.column(c)
        columns.append(ColumnSchema("%s__%s" % (t, c), base_col.dtype))
    schema = TableSchema(candidate.name, columns)
    data = {}
    for j, col in enumerate(columns):
        data[col.name] = [row[j] for row in result.rows]
    table = Table(schema, columns=data)
    view = ViewDef(candidate.name, candidate.query, table)
    catalog.register_view(view)
    return view


def _estimated_view_rows(catalog, candidate):
    """Estimate a candidate's materialized size without building it."""
    from repro.engine.optimizer.cardinality import TraditionalEstimator

    est = TraditionalEstimator(catalog)
    return max(1.0, est.estimate_subset(candidate.query, candidate.query.tables))


def _estimated_view_bytes(catalog, candidate):
    row_bytes = sum(
        catalog.table(t).row_bytes() for t in candidate.query.tables
    )
    return _estimated_view_rows(catalog, candidate) * row_bytes


def workload_cost_with_views(database, workload, views):
    """Estimated workload cost given a set of *registered* view names.

    Uses the planner's view matching; other registered views are ignored by
    temporarily filtering.
    """
    catalog = database.catalog
    keep = {v.lower() for v in views}
    all_views = catalog.views()
    removed = []
    for v in all_views:
        if v.name.lower() not in keep:
            catalog.drop_view(v.name)
            removed.append(v)
    try:
        planner = Planner(catalog, use_views=True, cost_model=database.cost_model)
        total = 0.0
        for q in workload:
            total += planner.plan(q).est_cost
        return total
    finally:
        for v in removed:
            catalog.register_view(v)


class GreedyViewAdvisor:
    """Greedy benefit-per-byte selection under a space budget (baseline)."""

    name = "greedy"

    def recommend(self, database, workload, space_budget_bytes,
                  candidates=None):
        """Pick candidates maximizing marginal benefit per byte.

        Candidates are materialized lazily as chosen (real systems estimate
        first, build after; we build to measure honestly).

        Returns:
            ``(chosen_candidates, final_cost)``.
        """
        catalog = database.catalog
        if candidates is None:
            candidates = enumerate_view_candidates(workload)
        chosen = []
        chosen_names = []
        used_bytes = 0
        current = workload_cost_with_views(database, workload, chosen_names)
        remaining = list(candidates)
        while remaining:
            scored = []
            for cand in remaining:
                est_bytes = _estimated_view_bytes(catalog, cand)
                if used_bytes + est_bytes > space_budget_bytes:
                    continue
                already = {v.name for v in catalog.views()}
                if cand.name not in already:
                    materialize_view(database, cand)
                cost = workload_cost_with_views(
                    database, workload, chosen_names + [cand.name]
                )
                benefit = current - cost
                actual_bytes = next(
                    v for v in catalog.views() if v.name == cand.name
                ).size_bytes()
                scored.append((benefit / max(actual_bytes, 1.0), benefit,
                               cost, actual_bytes, cand))
            scored = [s for s in scored if s[1] > 1e-9
                      and used_bytes + s[3] <= space_budget_bytes]
            if not scored:
                break
            scored.sort(key=lambda s: -s[0])
            __, benefit, cost, nbytes, cand = scored[0]
            chosen.append(cand)
            chosen_names.append(cand.name)
            used_bytes += nbytes
            current = cost
            remaining = [c for c in remaining if c is not cand]
        # Drop unchosen materializations to leave the catalog clean.
        for v in list(database.catalog.views()):
            if v.name not in chosen_names:
                database.catalog.drop_view(v.name)
        return chosen, current


class RLViewAdvisor:
    """Q-learning view selection (Han et al. [21] regime, tabular-scale).

    State: frozenset of chosen candidate indices; actions: add a candidate
    that fits the remaining budget, or STOP. Reward: normalized workload
    cost reduction per step. Useful over greedy when benefits interact
    (two views that share tables cannibalize each other's benefit).
    """

    name = "rl"

    def __init__(self, episodes=120, seed=0):
        self.episodes = episodes
        self.seed = seed

    def recommend(self, database, workload, space_budget_bytes,
                  candidates=None):
        catalog = database.catalog
        if candidates is None:
            candidates = enumerate_view_candidates(workload)
        if not candidates:
            return [], workload_cost_with_views(database, workload, [])
        # Materialize all candidates once; selection toggles visibility.
        sizes = []
        for cand in candidates:
            if cand.name not in {v.name for v in catalog.views()}:
                materialize_view(database, cand)
            sizes.append(
                next(v for v in catalog.views() if v.name == cand.name).size_bytes()
            )
        base_cost = workload_cost_with_views(database, workload, [])
        cost_cache = {frozenset(): base_cost}

        def cost_of(chosen_idx):
            key = frozenset(chosen_idx)
            if key not in cost_cache:
                names = [candidates[i].name for i in key]
                cost_cache[key] = workload_cost_with_views(
                    database, workload, names
                )
            return cost_cache[key]

        stop_action = len(candidates)
        agent = QLearningAgent(
            n_actions=len(candidates) + 1,
            alpha=0.3,
            gamma=1.0,
            epsilon=0.4,
            epsilon_decay=0.97,
            seed=self.seed,
        )

        def valid_actions(chosen, used):
            acts = [stop_action]
            for i in range(len(candidates)):
                if i not in chosen and used + sizes[i] <= space_budget_bytes:
                    acts.append(i)
            return acts

        for __ in range(self.episodes):
            chosen, used = [], 0
            while True:
                state = frozenset(chosen)
                valid = valid_actions(chosen, used)
                action = agent.act(state, valid_actions=valid)
                if action == stop_action:
                    agent.update(state, action, 0.0, state, True)
                    break
                prev = cost_of(chosen)
                chosen = chosen + [action]
                used += sizes[action]
                new = cost_of(chosen)
                reward = (prev - new) / max(base_cost, 1e-9)
                next_valid = valid_actions(chosen, used)
                done = next_valid == [stop_action]
                agent.update(
                    state, action, reward, frozenset(chosen), done, next_valid
                )
                if done:
                    break
            agent.decay()
        # Greedy rollout.
        chosen, used = [], 0
        while True:
            valid = valid_actions(chosen, used)
            action = agent.act(frozenset(chosen), valid_actions=valid, greedy=True)
            if action == stop_action or action in chosen:
                break
            chosen.append(action)
            used += sizes[action]
        picked = [candidates[i] for i in chosen]
        final = cost_of(chosen)
        picked_names = {c.name for c in picked}
        for v in list(catalog.views()):
            if v.name in {c.name for c in candidates} and v.name not in picked_names:
                catalog.drop_view(v.name)
        return picked, final
