"""AI-for-DB: learned database components (paper §2.1).

Subpackages mirror the tutorial's five AI4DB categories:

* :mod:`repro.ai4db.config` — learned database configuration (knob tuning,
  index/view advisors, SQL rewriting, partitioning).
* :mod:`repro.ai4db.optimization` — learned database optimization
  (cardinality/cost estimation, join ordering, end-to-end optimizer).
* :mod:`repro.ai4db.design` — learned database design (learned indexes,
  KV-store design continuum, transaction management).
* :mod:`repro.ai4db.monitoring` — learned database monitoring (forecasting,
  performance prediction, root-cause diagnosis, activity monitoring).
* :mod:`repro.ai4db.security` — learned database security (sensitive-data
  discovery, access control, SQL-injection detection).
"""
