"""Learned plan-cost estimation.

The analytic cost model is only as good as its cardinality inputs; the
learned cost model (Sun & Li [70] estimate cost and cardinality jointly;
Marcus et al. [56] regress plan latency) instead learns executed work
directly from plan structure. Here a plan is featurized into operator
counts and size statistics and a gradient-boosted regressor predicts the
executor's measured work.
"""

import numpy as np

from repro.common import ModelError, NotFittedError
from repro.engine import plans as P
from repro.ml import GradientBoostingRegressor

_OP_TYPES = [
    "SeqScan", "IndexScan", "ViewScan", "HashJoin", "NestedLoopJoin",
    "CrossJoin", "Filter", "Project", "HashAggregate", "Sort", "Limit",
]


class PlanFeaturizer:
    """Encodes a physical plan as a fixed-length dense vector.

    Features per plan: operator-type counts, tree depth, sums and maxima of
    per-node ``est_rows`` (log-scaled), the root's analytic ``est_cost``
    (log-scaled) — letting the model learn a *correction* on top of the
    analytic estimate — and scan-level predicate counts.
    """

    def __init__(self):
        self._op_pos = {name: i for i, name in enumerate(_OP_TYPES)}

    @property
    def dim(self):
        """Feature-vector length."""
        return len(_OP_TYPES) + 6

    def featurize(self, plan):
        """Encode one annotated physical plan."""
        vec = np.zeros(self.dim)
        total_log_rows = 0.0
        max_log_rows = 0.0
        n_predicates = 0
        depth = 0

        def walk(node, d):
            nonlocal total_log_rows, max_log_rows, n_predicates, depth
            depth = max(depth, d)
            pos = self._op_pos.get(node.op_name)
            if pos is not None:
                vec[pos] += 1.0
            rows = node.est_rows if node.est_rows is not None else 0.0
            lr = float(np.log1p(max(rows, 0.0)))
            total_log_rows += lr
            max_log_rows = max(max_log_rows, lr)
            if isinstance(node, P.SeqScan):
                n_predicates += len(node.predicates)
            elif isinstance(node, P.IndexScan):
                n_predicates += 1 + len(node.residual)
            for child in node.children:
                walk(child, d + 1)

        walk(plan, 1)
        base = len(_OP_TYPES)
        vec[base] = total_log_rows
        vec[base + 1] = max_log_rows
        vec[base + 2] = depth
        vec[base + 3] = n_predicates
        est_cost = plan.est_cost if plan.est_cost is not None else 0.0
        vec[base + 4] = float(np.log1p(max(est_cost, 0.0)))
        vec[base + 5] = float(np.log1p(max(plan.est_rows or 0.0, 0.0)))
        return vec


class LearnedCostModel:
    """Gradient-boosted regressor from plan features to log executed work.

    Args:
        n_estimators, max_depth, learning_rate: boosting hyperparameters.
    """

    def __init__(self, n_estimators=80, max_depth=4, learning_rate=0.1):
        self.featurizer = PlanFeaturizer()
        self.model = GradientBoostingRegressor(
            n_estimators=n_estimators,
            max_depth=max_depth,
            learning_rate=learning_rate,
        )
        self._fitted = False

    def fit(self, plans, measured_work):
        """Train on (annotated plan, executed work) pairs."""
        if len(plans) != len(measured_work):
            raise ModelError("plans and work measurements must align")
        X = np.stack([self.featurizer.featurize(p) for p in plans])
        y = np.log1p(np.maximum(np.asarray(measured_work, dtype=float), 0.0))
        self.model.fit(X, y)
        self._fitted = True
        return self

    def predict(self, plans):
        """Predicted executed work for each plan."""
        if not self._fitted:
            raise NotFittedError("LearnedCostModel used before fit")
        X = np.stack([self.featurizer.featurize(p) for p in plans])
        return np.maximum(np.expm1(self.model.predict(X)), 0.0)
