"""Learned cardinality estimation (MSCN-lite).

Reproduces the shape of the learned-estimator results the tutorial cites
(Sun & Li [70], Dutt et al. [13], Yang et al. [82]): a small neural model
over query features learns the column correlations that break the
traditional independence assumption, collapsing tail q-error by orders of
magnitude on correlated data.

The featurization is a flattened variant of MSCN's set encoding: one-hot
table membership, one-hot join edges, and per-(table, column) predicate
slots holding normalized range bounds. The model regresses
``log(cardinality + 1)`` with an MLP. It implements the engine's
:class:`~repro.engine.optimizer.cardinality.CardinalityEstimator` contract,
so it can drive the standard planner directly (experiment E8).
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng
from repro.engine.optimizer.cardinality import CardinalityEstimator
from repro.engine.optimizer.feedback import induced_subquery
from repro.engine.query import ConjunctiveQuery, Predicate
from repro.engine.types import DataType
from repro.ml import MLPRegressor


class QueryFeaturizer:
    """Encodes conjunctive queries over a fixed schema as dense vectors.

    Args:
        catalog: catalog providing schemas and statistics (for bounds
            normalization).
        tables: the schema's table names (feature-space vocabulary).
        join_edges: all join edges that can appear in queries (vocabulary).

    Vector layout:
        ``[table one-hots | edge one-hots | per-(table,numeric column):
        (has_eq, eq_norm, lower_norm, upper_norm)]``
        with lower/upper defaulting to 0/1 when unconstrained.
    """

    def __init__(self, catalog, tables, join_edges):
        self.catalog = catalog
        self.tables = [t.lower() for t in tables]
        self._table_pos = {t: i for i, t in enumerate(self.tables)}
        self.edges = list(join_edges)
        self._edge_pos = {e.key(): i for i, e in enumerate(self.edges)}
        self.columns = []
        self._bounds = {}
        for t in tables:
            schema = catalog.table(t).schema
            stats = catalog.stats(t)
            for col in schema.columns:
                if col.dtype is DataType.TEXT:
                    continue
                key = (t.lower(), col.name.lower())
                self.columns.append(key)
                cstats = stats.column(col.name)
                lo = cstats.min if cstats.min is not None else 0.0
                hi = cstats.max if cstats.max is not None else 1.0
                if hi <= lo:
                    hi = lo + 1.0
                self._bounds[key] = (lo, hi)
        self._col_pos = {c: i for i, c in enumerate(self.columns)}

    @property
    def dim(self):
        """Feature-vector length."""
        return len(self.tables) + len(self.edges) + 4 * len(self.columns)

    def _norm(self, key, value):
        lo, hi = self._bounds[key]
        return float(np.clip((float(value) - lo) / (hi - lo), -0.5, 1.5))

    def featurize(self, query):
        """Encode one :class:`ConjunctiveQuery` (tables must be in-vocab)."""
        vec = np.zeros(self.dim)
        for t in query.tables:
            key = t.lower()
            if key not in self._table_pos:
                raise ModelError("table %r not in featurizer vocabulary" % (t,))
            vec[self._table_pos[key]] = 1.0
        base = len(self.tables)
        for e in query.join_edges:
            pos = self._edge_pos.get(e.key())
            if pos is not None:
                vec[base + pos] = 1.0
        pbase = base + len(self.edges)
        # Default slots: lower=0, upper=1 ("unconstrained full range").
        for i, key in enumerate(self.columns):
            vec[pbase + 4 * i + 2] = 0.0
            vec[pbase + 4 * i + 3] = 1.0
        for p in query.predicates:
            key = (p.table.lower(), p.column.lower())
            if key not in self._col_pos or not isinstance(p.value, (int, float)):
                continue
            i = self._col_pos[key]
            slot = pbase + 4 * i
            v = self._norm(key, p.value)
            if p.op == "=":
                vec[slot] = 1.0
                vec[slot + 1] = v
                vec[slot + 2] = max(vec[slot + 2], v)
                vec[slot + 3] = min(vec[slot + 3], v)
            elif p.op in (">", ">="):
                vec[slot + 2] = max(vec[slot + 2], v)
            elif p.op in ("<", "<="):
                vec[slot + 3] = min(vec[slot + 3], v)
            # "!=" carries almost no selectivity signal; leave slots as-is.
        return vec


class LearnedCardinalityEstimator(CardinalityEstimator):
    """MLP cardinality estimator implementing the planner's contract.

    Args:
        featurizer: a :class:`QueryFeaturizer` for the schema.
        hidden: MLP hidden sizes.
        epochs: training epochs.
        seed: init/shuffle seed.
    """

    def __init__(self, featurizer, hidden=(128, 64), epochs=120, lr=1e-3, seed=0):
        self.featurizer = featurizer
        self.model = MLPRegressor(hidden=hidden, epochs=epochs, lr=lr, seed=seed)
        self._fitted = False
        self._base_queries = []
        self._base_cards = []

    def _fit(self, queries, true_cardinalities):
        X = np.stack([self.featurizer.featurize(q) for q in queries])
        y = np.log1p(np.maximum(np.asarray(true_cardinalities, dtype=float), 0.0))
        self.model.fit(X, y)
        self._fitted = True

    def fit(self, queries, true_cardinalities):
        """Train on queries with oracle (or executed) cardinalities.

        The training set is stashed as the *base* corpus so later
        :meth:`refit_from_feedback` calls can retrain on base + observed
        pairs without the caller re-supplying the originals.
        """
        if len(queries) != len(true_cardinalities):
            raise ModelError("queries and cardinalities must align")
        self._base_queries = list(queries)
        self._base_cards = list(true_cardinalities)
        self._fit(self._base_queries, self._base_cards)
        return self

    def refit_from_feedback(self, store):
        """Retrain on the base corpus plus a feedback store's observations.

        Args:
            store: a :class:`~repro.engine.optimizer.feedback.
                QueryFeedbackStore` whose remembered (sub-query → actual
                cardinality) pairs extend the training set. Out-of-vocab
                observations (tables the featurizer never saw) are
                skipped.

        Returns:
            the number of feedback pairs actually used.
        """
        fb_queries, fb_cards = store.pairs()
        used_q, used_c = [], []
        for q, card in zip(fb_queries, fb_cards):
            try:
                self.featurizer.featurize(q)
            except ModelError:
                continue
            used_q.append(q)
            used_c.append(card)
        if not used_q and not self._base_queries:
            raise NotFittedError(
                "refit_from_feedback needs a base fit or usable feedback"
            )
        self._fit(self._base_queries + used_q, self._base_cards + used_c)
        return len(used_q)

    def predict(self, queries):
        """Estimated cardinalities for a list of queries."""
        if not self._fitted:
            raise NotFittedError("LearnedCardinalityEstimator used before fit")
        X = np.stack([self.featurizer.featurize(q) for q in queries])
        return np.maximum(np.expm1(self.model.predict(X)), 0.0)

    # -- CardinalityEstimator contract ---------------------------------
    def _induced_subquery(self, query, tables):
        # Shared with the feedback store so sub-query signatures agree.
        return induced_subquery(query, tables)

    def estimate_table(self, query, table):
        return self.estimate_subset(query, [table])

    def estimate_subset(self, query, tables):
        sub = self._induced_subquery(query, tables)
        return float(self.predict([sub])[0])


def generate_training_queries(catalog, table, columns, n_queries=600,
                              n_values=100, seed=0, joins=None,
                              max_predicates=3, min_card=1,
                              max_attempts_factor=20):
    """Random selection (and optional join) queries with true cardinalities.

    Queries with true cardinality below ``min_card`` are resampled (the
    MSCN convention — empty-result queries make q-error degenerate on both
    sides and are excluded from the standard benchmarks).

    Args:
        catalog: catalog holding the data.
        table: the primary table to filter.
        columns: filterable numeric column names on ``table``.
        n_queries: how many queries to produce.
        n_values: value-domain upper bound for constants.
        joins: optional list of ``(JoinEdge, other_table)`` to sample from.
        max_predicates: predicates per query upper bound.
        min_card: smallest admissible true cardinality.
        max_attempts_factor: resampling budget multiplier.

    Returns:
        ``(queries, true_cards)`` with truths from exact execution.
    """
    from repro.engine.executor import count_join_rows

    rng = ensure_rng(seed)
    queries = []
    cards = []
    ops = ["=", "<", ">", "<=", ">="]
    attempts = 0
    max_attempts = n_queries * max_attempts_factor
    while len(queries) < n_queries and attempts < max_attempts:
        attempts += 1
        n_preds = int(rng.integers(1, max_predicates + 1))
        cols = rng.choice(columns, size=min(n_preds, len(columns)), replace=False)
        predicates = [
            Predicate(table, c, ops[int(rng.integers(0, len(ops)))],
                      int(rng.integers(0, n_values)))
            for c in cols
        ]
        tables = [table]
        edges = []
        if joins and rng.random() < 0.5:
            edge, other = joins[int(rng.integers(0, len(joins)))]
            tables.append(other)
            edges.append(edge)
        q = ConjunctiveQuery(tables=tables, join_edges=edges, predicates=predicates)
        card = count_join_rows(catalog, q, q.tables)
        if card < min_card:
            continue
        queries.append(q)
        cards.append(card)
    return queries, cards
