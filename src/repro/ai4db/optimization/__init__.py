"""Learned database optimization: estimation, join ordering, end-to-end."""

from repro.ai4db.optimization.cardinality import (
    QueryFeaturizer,
    LearnedCardinalityEstimator,
    generate_training_queries,
)
from repro.ai4db.optimization.cost import LearnedCostModel, PlanFeaturizer
from repro.ai4db.optimization.join_order import (
    MCTSJoinOrderer,
    DQNJoinOrderer,
    compare_orderers,
)
from repro.ai4db.optimization.end_to_end import NeoLiteOptimizer

__all__ = [
    "QueryFeaturizer",
    "LearnedCardinalityEstimator",
    "generate_training_queries",
    "LearnedCostModel",
    "PlanFeaturizer",
    "MCTSJoinOrderer",
    "DQNJoinOrderer",
    "compare_orderers",
    "NeoLiteOptimizer",
]
