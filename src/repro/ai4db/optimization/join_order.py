"""Learned join-order selection: MCTS (SkinnerDB-style) and DQN (ReJOIN-style).

Both agents build **left-deep orders** and are scored with the same
:func:`~repro.engine.optimizer.join_enum.order_cost` objective as the
traditional enumerators, so experiment E7 compares like with like:

* :class:`MCTSJoinOrderer` needs no training — it searches per query, the
  SkinnerDB [74] regime — and should land near DP cost at a fraction of
  DP's enumeration time on large clique graphs.
* :class:`DQNJoinOrderer` trains on a workload (ReJOIN [54] / Yu et al.
  [83] regime) and then plans in a single greedy forward pass, amortizing
  optimization cost across queries.
"""

import time

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng
from repro.engine.optimizer.join_enum import (
    dp_left_deep,
    greedy_order,
    order_cost,
    random_order,
)
from repro.ml import DQNAgent, MCTS


class MCTSJoinOrderer:
    """Per-query UCT search over left-deep join orders.

    Args:
        estimator: cardinality estimator used by the cost objective.
        cost_model: the shared cost model.
        n_iterations: UCT iterations per query.
        c_uct: exploration constant (ablated in E7).
        seed: rollout seed.
    """

    def __init__(self, estimator, cost_model, n_iterations=300, c_uct=0.7, seed=0):
        self.estimator = estimator
        self.cost_model = cost_model
        self.n_iterations = n_iterations
        self.c_uct = c_uct
        self.seed = seed

    def order(self, query):
        """Return ``(order, cost)`` for one query."""
        tables = tuple(query.tables)
        if len(tables) == 1:
            return list(tables), order_cost(
                query, list(tables), self.estimator, self.cost_model
            )

        def actions_fn(state):
            if len(state) == len(tables):
                return []
            chosen = set(state)
            remaining = [t for t in tables if t not in chosen]
            if not state:
                return remaining
            adjacent = [t for t in remaining if query.edges_between(list(state), t)]
            return adjacent or remaining

        def step_fn(state, action):
            return state + (action,)

        def reward_fn(state):
            cost = order_cost(query, list(state), self.estimator, self.cost_model)
            return -float(np.log10(cost + 1.0))

        mcts = MCTS(actions_fn, step_fn, reward_fn, c_uct=self.c_uct, seed=self.seed)
        best_state, __ = mcts.search((), n_iterations=self.n_iterations)
        order = list(best_state)
        return order, order_cost(query, order, self.estimator, self.cost_model)


class DQNJoinOrderer:
    """Workload-trained DQN that picks the next table to join.

    State: joined-table bitmask, one-hot of the last-joined table, and the
    log of the current intermediate cardinality. Action: the next table's
    index (masked to connectivity-respecting choices). Reward: per-step
    ``-log10`` of the join/scan cost increment, so the return telescopes to
    ``-log10``-scale total cost.

    Args:
        tables: full ordered table vocabulary of the schema.
        estimator, cost_model: the shared objective components.
        episodes_per_query: training episodes per workload query per epoch.
        seed: agent seed.
    """

    def __init__(self, tables, estimator, cost_model, hidden=(64, 64),
                 episodes_per_query=8, epochs=6, seed=0):
        self.tables = [t.lower() for t in tables]
        self._pos = {t: i for i, t in enumerate(self.tables)}
        self.estimator = estimator
        self.cost_model = cost_model
        self.episodes_per_query = episodes_per_query
        self.epochs = epochs
        n = len(self.tables)
        self.agent = DQNAgent(
            state_dim=2 * n + 1,
            n_actions=n,
            hidden=hidden,
            gamma=1.0,
            epsilon=0.4,
            epsilon_min=0.05,
            epsilon_decay=0.97,
            seed=seed,
        )
        self._trained = False

    def _state(self, joined, last, current_rows):
        n = len(self.tables)
        vec = np.zeros(2 * n + 1)
        for t in joined:
            vec[self._pos[t.lower()]] = 1.0
        if last is not None:
            vec[n + self._pos[last.lower()]] = 1.0
        vec[2 * n] = float(np.log1p(max(current_rows, 0.0))) / 20.0
        return vec

    def _valid_actions(self, query, joined):
        chosen = {t.lower() for t in joined}
        remaining = [
            t for t in query.tables if t.lower() not in chosen
        ]
        if not joined:
            return [self._pos[t.lower()] for t in remaining]
        adjacent = [t for t in remaining if query.edges_between(joined, t)]
        pool = adjacent or remaining
        return [self._pos[t.lower()] for t in pool]

    def _step_cost(self, query, joined, nxt):
        """Incremental cost of joining ``nxt`` onto the prefix ``joined``."""
        right_rows = self.estimator.estimate_table(query, nxt)
        if not joined:
            return self.cost_model.seq_scan(right_rows), right_rows
        left_rows = self.estimator.estimate_subset(query, joined)
        out_rows = self.estimator.estimate_subset(query, joined + [nxt])
        edges = query.edges_between(joined, nxt)
        if edges:
            __, cost = self.cost_model.choose_join(left_rows, right_rows, out_rows)
        else:
            cost = self.cost_model.cross_join(left_rows, right_rows)
        return cost + self.cost_model.seq_scan(right_rows), out_rows

    def _run_episode(self, query, greedy=False, learn=True):
        joined = []
        last = None
        rows = 0.0
        transitions = []
        while len(joined) < len(query.tables):
            state = self._state(joined, last, rows)
            valid = self._valid_actions(query, joined)
            action = self.agent.act(state, valid_actions=valid, greedy=greedy)
            nxt = None
            for t in query.tables:
                if self._pos[t.lower()] == action and t.lower() not in {
                    j.lower() for j in joined
                }:
                    nxt = t
                    break
            if nxt is None:  # masked action leaked; pick first valid
                nxt_pos = valid[0]
                nxt = next(
                    t for t in query.tables if self._pos[t.lower()] == nxt_pos
                )
            step_cost, rows = self._step_cost(query, joined, nxt)
            reward = -float(np.log10(step_cost + 1.0)) / 5.0
            joined.append(nxt)
            done = len(joined) == len(query.tables)
            next_state = self._state(joined, nxt, rows)
            transitions.append((state, self._pos[nxt.lower()], reward, next_state, done))
            last = nxt
        if learn:
            for tr in transitions:
                self.agent.remember(*tr)
                self.agent.train_step()
        return joined

    def fit(self, workload):
        """Train on a list of conjunctive queries over the schema."""
        if not workload:
            raise ModelError("empty training workload")
        for q in workload:
            for t in q.tables:
                if t.lower() not in self._pos:
                    raise ModelError("table %r outside vocabulary" % (t,))
        for __ in range(self.epochs):
            for q in workload:
                for __ in range(self.episodes_per_query):
                    self._run_episode(q)
            self.agent.decay()
        self._trained = True
        return self

    def order(self, query):
        """Greedy (no-exploration) order for one query; ``(order, cost)``."""
        if not self._trained:
            raise NotFittedError("DQNJoinOrderer used before fit")
        order = self._run_episode(query, greedy=True, learn=False)
        return order, order_cost(query, order, self.estimator, self.cost_model)


def compare_orderers(queries, estimator, cost_model, mcts_iterations=300,
                     dqn=None, seed=0):
    """Run DP/greedy/random/MCTS (and optionally a trained DQN) on queries.

    Returns:
        dict mapping method name to ``{"cost": [...], "time": [...]}`` with
        per-query plan costs and optimization wall-times.
    """
    rng = ensure_rng(seed)
    results = {}

    def record(name, fn):
        costs, times = [], []
        for q in queries:
            t0 = time.perf_counter()
            __, cost = fn(q)
            times.append(time.perf_counter() - t0)
            costs.append(cost)
        results[name] = {"cost": costs, "time": times}

    record("dp", lambda q: dp_left_deep(q, estimator, cost_model))
    record("greedy", lambda q: greedy_order(q, estimator, cost_model))
    record(
        "random",
        lambda q: random_order(
            q, estimator, cost_model, seed=int(rng.integers(0, 2**31 - 1))
        ),
    )
    mcts = MCTSJoinOrderer(
        estimator, cost_model, n_iterations=mcts_iterations, seed=seed
    )
    record("mcts", mcts.order)
    if dqn is not None:
        record("dqn", dqn.order)
    return results
