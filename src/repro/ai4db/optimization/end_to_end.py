"""NEO-lite: an end-to-end learned optimizer trained on executed latency.

Follows the NEO recipe (Marcus et al. [55]) at laptop scale:

1. **Bootstrap** — plan the training workload with the traditional
   optimizer, execute, and record ``(query, join order, executed work)``.
2. **Value network** — learn ``V(query, order) -> log(executed work)`` from
   those experiences (an MLP over query + order features).
3. **Plan search** — for a new query, beam-search left-deep orders guided
   by the value network, pick the best-scoring complete order, execute it.
4. **Iterate** — executed plans feed back into the experience set, so the
   optimizer improves where the analytic cost model was wrong (correlated
   data, misestimated joins).

The payoff measured in E8: on schemas where the traditional estimator is
badly wrong, NEO-lite's executed work approaches the true-cardinality
optimum while the analytic optimizer keeps picking bad orders.

Plan assembly goes through ``Database.run_query_object`` and therefore
the staged query pipeline: re-executing a ``(query, order)`` pair the
agent has tried before hits the plan cache instead of re-assembling the
physical plan (the cache key includes the explicit order).
"""

import numpy as np

from repro.common import ModelError, NotFittedError, ensure_rng
from repro.ml import MLPRegressor


class NeoLiteOptimizer:
    """Latency-trained plan search over left-deep join orders.

    Args:
        database: a :class:`~repro.engine.Database` (provides planner and
            executor; its analytic planner is the bootstrap teacher).
        tables: table vocabulary of the schema.
        hidden: value-network hidden sizes.
        beam_width: beam size in guided plan search.
        seed: randomness seed.
    """

    def __init__(self, database, tables, hidden=(64, 64), beam_width=3,
                 epochs=150, seed=0):
        self.db = database
        self.tables = [t.lower() for t in tables]
        self._pos = {t: i for i, t in enumerate(self.tables)}
        self.beam_width = beam_width
        self.hidden = hidden
        self.epochs = epochs
        self._rng = ensure_rng(seed)
        self.value_net = None
        self._experience = []  # (features, log_work)

    # -- featurization ----------------------------------------------------
    def _features(self, query, order):
        """Encode (query, complete-or-partial order) as a vector."""
        n = len(self.tables)
        vec = np.zeros(3 * n + 1)
        for t in query.tables:
            vec[self._pos[t.lower()]] = 1.0
        for rank, t in enumerate(order):
            # Position-weighted order encoding.
            vec[n + self._pos[t.lower()]] = (rank + 1) / max(1, len(query.tables))
        preds = {}
        for p in query.predicates:
            preds[p.table.lower()] = preds.get(p.table.lower(), 0) + 1
        for t, count in preds.items():
            if t in self._pos:
                vec[2 * n + self._pos[t]] = count
        vec[3 * n] = len(order) / max(1, len(query.tables))
        return vec

    # -- experience collection ---------------------------------------------
    def _execute_order(self, query, order):
        result = self.db.run_query_object(query, order=order)
        return result.work

    def bootstrap(self, workload, extra_random_orders=2):
        """Phase 1: collect experiences from the analytic optimizer + noise.

        For each query the teacher's order plus a few random orders are
        executed, giving the value net contrastive signal.
        """
        from repro.engine.optimizer.join_enum import random_order

        for query in workload:
            plan = self.db.planner.plan(query)
            teacher_order = _order_of(plan, query)
            orders = [teacher_order]
            for __ in range(extra_random_orders):
                o, __cost = random_order(
                    query,
                    self.db.planner.estimator,
                    self.db.cost_model,
                    seed=int(self._rng.integers(0, 2**31 - 1)),
                )
                orders.append(o)
            for order in orders:
                work = self._execute_order(query, order)
                self._experience.append(
                    (self._features(query, order), float(np.log1p(work)))
                )
        return self

    def train(self):
        """Phase 2: fit the value network on the experience set."""
        if not self._experience:
            raise ModelError("bootstrap() must run before train()")
        X = np.stack([f for f, __ in self._experience])
        y = np.array([v for __, v in self._experience])
        self.value_net = MLPRegressor(
            hidden=self.hidden, epochs=self.epochs,
            seed=int(self._rng.integers(0, 2**31 - 1)),
        )
        self.value_net.fit(X, y)
        return self

    # -- guided search ------------------------------------------------------
    def plan_order(self, query):
        """Phase 3: beam search for the order the value net likes best."""
        if self.value_net is None:
            raise NotFittedError("NeoLiteOptimizer used before train()")
        n_tables = len(query.tables)
        beam = [()]
        while len(beam[0]) < n_tables:
            candidates = []
            for prefix in beam:
                chosen = {t.lower() for t in prefix}
                remaining = [t for t in query.tables if t.lower() not in chosen]
                if prefix:
                    adjacent = [
                        t for t in remaining if query.edges_between(list(prefix), t)
                    ]
                    pool = adjacent or remaining
                else:
                    pool = remaining
                for t in pool:
                    candidates.append(prefix + (t,))
            feats = np.stack([self._features(query, c) for c in candidates])
            scores = self.value_net.predict(feats)
            ranked = np.argsort(scores)  # lower predicted log-work is better
            beam = [candidates[i] for i in ranked[: self.beam_width]]
        return list(beam[0])

    def execute(self, query, learn=True):
        """Plan with the value net, execute, and optionally keep learning."""
        order = self.plan_order(query)
        result = self.db.run_query_object(query, order=order)
        if learn:
            self._experience.append(
                (self._features(query, order), float(np.log1p(result.work)))
            )
        return result, order

    def refine(self):
        """Phase 4: retrain the value network on the grown experience set."""
        return self.train()


def _order_of(plan, query):
    """Recover the left-deep join order from a physical plan."""
    from repro.engine import plans as P

    scans = []
    for node in plan.walk():
        if isinstance(node, (P.SeqScan, P.IndexScan)):
            scans.append(node.table)
    # walk() is preorder; for a left-deep tree the deepest-left scan comes
    # out in join order when reversed pairwise — reconstruct by scanning the
    # join spine instead.
    spine = []

    def descend(node):
        if isinstance(node, (P.HashJoin, P.NestedLoopJoin, P.CrossJoin)):
            descend(node.children[0])
            spine.append(node.children[1])
        elif isinstance(node, (P.SeqScan, P.IndexScan)):
            spine.append(node)
        else:
            for ch in node.children:
                descend(ch)

    descend(plan)
    order = []
    for node in spine:
        if isinstance(node, (P.SeqScan, P.IndexScan)):
            order.append(node.table)
        else:
            for sub in node.walk():
                if isinstance(sub, (P.SeqScan, P.IndexScan)):
                    order.append(sub.table)
    seen = set()
    result = []
    for t in order:
        if t.lower() not in seen:
            seen.add(t.lower())
            result.append(t)
    expected = {t.lower() for t in query.tables}
    if {t.lower() for t in result} != expected:
        # Fallback: catalog order (should not happen for planner output).
        result = list(query.tables)
    return result
