"""Learned transaction management: conflict-aware scheduling (Sheng et al.
[68] regime) vs. FIFO and cost-ordered baselines.

Pipeline:

1. A **conflict classifier** learns ``P(conflict | features of txn pair)``
   from observed pairs (supervised, as in the cited work — labels come
   from lock-table telemetry, here from ground truth on a training batch).
2. The **learned scheduler** assigns transactions to workers greedily,
   placing each transaction where its predicted conflict with temporally
   overlapping transactions on *other* workers is lowest (conflicting
   transactions serialized onto the same worker don't contend), balancing
   load as a tiebreaker.
3. Evaluation replays the schedule in the lock-table simulator and reports
   makespan, aborts, and wait time against FIFO / cost-ordered schedules.
"""

import numpy as np

from repro.common import NotFittedError, ensure_rng
from repro.engine.txn import (
    LockTableSimulator,
    cost_ordered_schedule,
    fifo_schedule,
)
from repro.ml import LogisticRegression, StandardScaler


class TransactionFeaturizer:
    """Pairwise features for conflict prediction.

    Features: read/write set sizes of both transactions, key-overlap counts
    (write-write, read-write both directions), combined duration, and
    hot-set overlap (keys below the hotspot threshold).
    """

    def __init__(self, hot_key_threshold=20):
        self.hot_key_threshold = hot_key_threshold

    def pair_features(self, a, b):
        """Feature vector for an (a, b) transaction pair."""
        ww = len(a.writes & b.writes)
        wr = len(a.writes & b.reads)
        rw = len(a.reads & b.writes)
        hot_a = sum(1 for k in a.keys() if k < self.hot_key_threshold)
        hot_b = sum(1 for k in b.keys() if k < self.hot_key_threshold)
        return np.array([
            len(a.reads), len(a.writes), len(b.reads), len(b.writes),
            ww, wr, rw,
            hot_a, hot_b,
            a.duration + b.duration,
        ])


class ConflictClassifier:
    """Logistic conflict predictor over transaction-pair features."""

    def __init__(self, featurizer=None, seed=0):
        self.featurizer = featurizer or TransactionFeaturizer()
        self.scaler = StandardScaler()
        self.model = LogisticRegression(lr=0.3, epochs=400, seed=seed)
        self._fitted = False

    def fit(self, transactions, n_pairs=2000, seed=0):
        """Train on random pairs from a training batch (labels = truth)."""
        rng = ensure_rng(seed)
        X, y = [], []
        n = len(transactions)
        for __ in range(n_pairs):
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            a, b = transactions[i], transactions[j]
            X.append(self.featurizer.pair_features(a, b))
            y.append(1.0 if a.conflicts_with(b) else 0.0)
        Xs = self.scaler.fit_transform(np.stack(X))
        self.model.fit(Xs, np.array(y))
        self._fitted = True
        return self

    def conflict_probability(self, a, b):
        """Predicted conflict probability for one pair."""
        if not self._fitted:
            raise NotFittedError("ConflictClassifier used before fit")
        x = self.scaler.transform(
            self.featurizer.pair_features(a, b).reshape(1, -1)
        )
        return float(self.model.predict_proba(x)[0])

    def accuracy(self, transactions, n_pairs=1000, seed=1):
        """Held-out pair accuracy (sanity metric for E11)."""
        rng = ensure_rng(seed)
        n = len(transactions)
        correct = total = 0
        for __ in range(n_pairs):
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            a, b = transactions[i], transactions[j]
            pred = self.conflict_probability(a, b) >= 0.5
            truth = a.conflicts_with(b)
            correct += int(pred == truth)
            total += 1
        return correct / max(1, total)


class LearnedScheduler:
    """Conflict-aware greedy assignment using the learned classifier.

    For each arriving transaction, score every worker: the predicted
    conflict probability against the last ``window`` transactions queued on
    *other* workers that would plausibly overlap in time, plus a load
    penalty. Queue the transaction on the lowest-scoring worker. High-
    conflict transactions thus serialize onto shared workers instead of
    colliding across workers.

    Args:
        classifier: a fitted :class:`ConflictClassifier`.
        window: how many recent queue entries per worker to score against.
        load_weight: weight of the load-balance term.
    """

    name = "learned"

    def __init__(self, classifier, window=4, load_weight=0.3):
        self.classifier = classifier
        self.window = window
        self.load_weight = load_weight

    def schedule(self, txns, n_workers):
        """Returns worker queues (list of transaction lists)."""
        queues = [[] for _ in range(n_workers)]
        loads = np.zeros(n_workers)
        max_duration = max((t.duration for t in txns), default=1.0)
        for txn in txns:
            scores = np.zeros(n_workers)
            for w in range(n_workers):
                conflict = 0.0
                for other_w in range(n_workers):
                    if other_w == w:
                        continue
                    # Transactions near the tail of other queues are the
                    # ones likely to overlap this one in time.
                    for other in queues[other_w][-self.window:]:
                        conflict += self.classifier.conflict_probability(
                            txn, other
                        )
                scores[w] = conflict + self.load_weight * (
                    loads[w] / max(max_duration, 1e-9)
                )
            best = int(np.argmin(scores))
            queues[best].append(txn)
            loads[best] += txn.duration
        return queues


def evaluate_schedulers(txns, n_workers=4, classifier=None, seed=0,
                        simulator=None):
    """Run FIFO / cost-ordered / learned schedules through the simulator.

    Returns:
        dict mapping scheduler name to :class:`ScheduleResult`.
    """
    sim = simulator or LockTableSimulator()
    results = {
        "fifo": sim.run(fifo_schedule(txns, n_workers)),
        "cost-ordered": sim.run(cost_ordered_schedule(txns, n_workers)),
    }
    if classifier is not None:
        learned = LearnedScheduler(classifier)
        results["learned"] = sim.run(learned.schedule(txns, n_workers))
    return results
