"""Learned indexes: RMI, PGM-style piecewise-linear, and updatable ALEX-lite.

Reproduces the shape of Kraska et al.'s "The Case for Learned Index
Structures" [32] and the follow-ups the tutorial cites (ALEX [12],
multi-dimensional [59]): a model that predicts a key's position replaces
the B+Tree's inner nodes, cutting index size by orders of magnitude while
keeping (or beating) lookup speed, measured here as **probe cost** — the
number of key comparisons per lookup — plus modeled size in bytes.

All indexes map sorted keys to their positions; ``lookup(key)`` returns the
position (or ``None``) and the comparison count, so learned and classic
structures are compared on identical terms in experiment E9.
"""

import bisect

import numpy as np

from repro.common import ModelError


class BinarySearchIndex:
    """Baseline: plain binary search over the sorted key array."""

    name = "binary-search"

    def __init__(self, keys):
        self.keys = np.sort(np.asarray(keys, dtype=float))

    def lookup(self, key):
        """Returns ``(position or None, comparisons)``."""
        lo, hi = 0, len(self.keys)
        comparisons = 0
        while lo < hi:
            mid = (lo + hi) // 2
            comparisons += 1
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == key:
            return lo, comparisons
        return None, comparisons

    def size_bytes(self):
        """No auxiliary structure beyond the key array itself."""
        return 0

    def __len__(self):
        return len(self.keys)


class RMIIndex:
    """Two-stage recursive model index (Kraska et al. [32]).

    Stage 1: a linear model routes a key to one of ``n_models`` stage-2
    leaf models. Stage 2: per-leaf linear regression predicts the position;
    the leaf stores its maximum absolute error, and lookup binary-searches
    only within ``prediction ± error``.

    Args:
        keys: the (unsorted ok) key array.
        n_models: number of second-stage models (the size/accuracy dial the
            E9 ablation sweeps).
    """

    name = "rmi"

    def __init__(self, keys, n_models=64):
        if n_models < 1:
            raise ModelError("n_models must be >= 1")
        self.keys = np.sort(np.asarray(keys, dtype=float))
        n = len(self.keys)
        if n == 0:
            raise ModelError("cannot build an index over zero keys")
        self.n_models = n_models
        positions = np.arange(n, dtype=float)
        # Stage 1: scale keys to model slots via linear fit on (key -> slot).
        k_min, k_max = float(self.keys[0]), float(self.keys[-1])
        span = max(k_max - k_min, 1e-12)
        self._route_a = (n_models - 1) / span
        self._route_b = -k_min * self._route_a
        # Stage 2: per-slot linear models with error bounds.
        slot_of = np.clip(
            (self.keys * self._route_a + self._route_b).astype(int), 0, n_models - 1
        )
        self._slope = np.zeros(n_models)
        self._intercept = np.zeros(n_models)
        self._err = np.zeros(n_models, dtype=int)
        self._slot_bounds = np.zeros((n_models, 2), dtype=int)
        for m in range(n_models):
            mask = slot_of == m
            idx = np.where(mask)[0]
            if len(idx) == 0:
                # Empty slot: route to the nearest populated neighborhood.
                self._slope[m] = 0.0
                self._intercept[m] = float(
                    np.searchsorted(self.keys, (m - self._route_b) / self._route_a)
                )
                self._err[m] = 1
                approx = int(np.clip(self._intercept[m], 0, n - 1))
                self._slot_bounds[m] = (approx, approx + 1)
                continue
            xs = self.keys[idx]
            ys = positions[idx]
            span = xs[-1] - xs[0]
            with np.errstate(over="ignore", divide="ignore"):
                slope = (ys[-1] - ys[0]) / span if span > 0 else 0.0
            if not np.isfinite(slope):
                slope = 0.0
            intercept = ys[0] - slope * xs[0]
            pred = xs * slope + intercept
            residuals = np.abs(pred - ys)
            residuals = residuals[np.isfinite(residuals)]
            max_resid = float(residuals.max()) if residuals.size else len(ys)
            err = int(np.ceil(min(max_resid, len(self.keys)))) + 1
            self._slope[m] = slope
            self._intercept[m] = intercept
            self._err[m] = err
            self._slot_bounds[m] = (idx[0], idx[-1] + 1)

    def _predict(self, key):
        slot = int(np.clip(key * self._route_a + self._route_b, 0, self.n_models - 1))
        pos = self._slope[slot] * key + self._intercept[slot]
        err = self._err[slot]
        return int(np.clip(pos, 0, len(self.keys) - 1)), err

    def lookup(self, key):
        """Model-predicted position, then bounded binary search."""
        pos, err = self._predict(key)
        lo = max(0, pos - err)
        hi = min(len(self.keys), pos + err + 1)
        comparisons = 0
        while lo < hi:
            mid = (lo + hi) // 2
            comparisons += 1
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == key:
            return lo, comparisons
        return None, comparisons

    def max_error(self):
        """Largest per-leaf error bound (search-window radius)."""
        return int(self._err.max())

    def size_bytes(self):
        """Model parameters only: 2 floats + 1 int per leaf + router."""
        return self.n_models * (8 + 8 + 4) + 16

    def __len__(self):
        return len(self.keys)


class PGMIndex:
    """Piecewise-linear index with an epsilon error guarantee (PGM-style).

    Greedily grows maximal segments such that a linear model over the
    segment predicts every key's position within ``epsilon``; lookup
    locates the segment by binary search over segment boundaries, then
    binary-searches ``prediction ± epsilon``.

    Args:
        keys: key array.
        epsilon: the error bound (size/speed dial).
    """

    name = "pgm"

    def __init__(self, keys, epsilon=16):
        if epsilon < 1:
            raise ModelError("epsilon must be >= 1")
        self.keys = np.sort(np.asarray(keys, dtype=float))
        self.epsilon = int(epsilon)
        n = len(self.keys)
        if n == 0:
            raise ModelError("cannot build an index over zero keys")
        self._seg_first_key = []
        self._seg_slope = []
        self._seg_intercept = []
        start = 0
        while start < n:
            end = self._grow_segment(start)
            xs = self.keys[start:end]
            ys = np.arange(start, end, dtype=float)
            span = xs[-1] - xs[0]
            with np.errstate(over="ignore", divide="ignore"):
                slope = (ys[-1] - ys[0]) / span if span > 0 else 0.0
            if not np.isfinite(slope):
                slope = 0.0
            intercept = ys[0] - slope * xs[0]
            self._seg_first_key.append(float(xs[0]))
            self._seg_slope.append(slope)
            self._seg_intercept.append(intercept)
            start = end
        self._seg_first_key = np.asarray(self._seg_first_key)
        self._seg_slope = np.asarray(self._seg_slope)
        self._seg_intercept = np.asarray(self._seg_intercept)

    def _grow_segment(self, start):
        """Extend a segment from ``start`` while the epsilon bound holds.

        Uses doubling + binary search over the endpoint with a direct
        verification, which is O(len log len) per segment — simpler than
        the optimal convex-hull construction and adequate at this scale.
        """
        n = len(self.keys)
        lo, hi = start + 1, min(n, start + 2)
        # Doubling phase.
        while hi < n and self._fits(start, hi + 1):
            lo = hi
            hi = min(n, hi * 2 - start)
        # Binary search for the maximal end in (lo, hi].
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._fits(start, mid):
                lo = mid
            else:
                hi = mid - 1
        return max(lo, start + 1)

    def _fits(self, start, end):
        xs = self.keys[start:end]
        ys = np.arange(start, end, dtype=float)
        if not xs[-1] > xs[0]:
            return True
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            slope = (ys[-1] - ys[0]) / (xs[-1] - xs[0])
            if not np.isfinite(slope):
                return False
            intercept = ys[0] - slope * xs[0]
            pred = xs * slope + intercept
            resid = np.abs(pred - ys)
        if not np.all(np.isfinite(resid)):
            return False
        return bool(np.max(resid) <= self.epsilon)

    @property
    def n_segments(self):
        """Number of linear segments."""
        return len(self._seg_slope)

    def lookup(self, key):
        """Segment routing + epsilon-bounded binary search."""
        comparisons = 0
        # Binary search over segment first-keys.
        seg = int(np.searchsorted(self._seg_first_key, key, side="right") - 1)
        comparisons += max(1, int(np.ceil(np.log2(self.n_segments + 1))))
        seg = max(0, seg)
        pos = self._seg_slope[seg] * key + self._seg_intercept[seg]
        pos = int(np.clip(pos, 0, len(self.keys) - 1))
        lo = max(0, pos - self.epsilon)
        hi = min(len(self.keys), pos + self.epsilon + 1)
        while lo < hi:
            mid = (lo + hi) // 2
            comparisons += 1
            if self.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.keys) and self.keys[lo] == key:
            return lo, comparisons
        return None, comparisons

    def size_bytes(self):
        """Segments: first key + slope + intercept per segment."""
        return self.n_segments * 24

    def __len__(self):
        return len(self.keys)


class ALEXLiteIndex:
    """Updatable learned index with gapped leaves (ALEX [12], lite).

    Keys live in model-sized leaf nodes as sorted Python lists with slack;
    a per-leaf linear model predicts the local position, inserts go to the
    model-predicted leaf, and a leaf splits when it exceeds
    ``max_leaf_size``. Simpler than ALEX's gapped arrays but preserves the
    headline behaviour: inserts stay cheap and lookups stay model-guided,
    where a static RMI would have to be rebuilt.
    """

    name = "alex-lite"

    def __init__(self, keys=(), max_leaf_size=256):
        if max_leaf_size < 8:
            raise ModelError("max_leaf_size must be >= 8")
        self.max_leaf_size = max_leaf_size
        keys = sorted(float(k) for k in keys)
        if keys:
            self._leaf_keys = []
            self._leaves = []
            for start in range(0, len(keys), max_leaf_size // 2):
                chunk = keys[start : start + max_leaf_size // 2]
                self._leaf_keys.append(chunk[0])
                self._leaves.append(list(chunk))
        else:
            self._leaf_keys = [0.0]
            self._leaves = [[]]
        self._models = [self._fit_leaf(leaf) for leaf in self._leaves]
        self._n = len(keys)

    @staticmethod
    def _fit_leaf(leaf):
        if len(leaf) < 2 or leaf[-1] == leaf[0]:
            return (0.0, 0.0)
        slope = (len(leaf) - 1) / (leaf[-1] - leaf[0])
        return (slope, -leaf[0] * slope)

    def _leaf_for(self, key):
        i = bisect.bisect_right(self._leaf_keys, key) - 1
        return max(0, i)

    def insert(self, key):
        """Insert one key (duplicates allowed)."""
        key = float(key)
        li = self._leaf_for(key)
        leaf = self._leaves[li]
        slope, intercept = self._models[li]
        pos = int(np.clip(slope * key + intercept, 0, len(leaf)))
        # Model-guided local correction (exponential search around pos).
        lo, hi = 0, len(leaf)
        if pos < len(leaf) and leaf and pos > 0:
            step = 1
            if leaf[min(pos, len(leaf) - 1)] < key:
                lo = pos
                while lo + step < len(leaf) and leaf[lo + step] < key:
                    step *= 2
                hi = min(len(leaf), lo + step)
            else:
                hi = pos
                while hi - step > 0 and leaf[hi - step] >= key:
                    step *= 2
                lo = max(0, hi - step)
        ins = bisect.bisect_left(leaf, key, lo, hi)
        leaf.insert(ins, key)
        self._n += 1
        if len(leaf) > self.max_leaf_size:
            self._split(li)
        else:
            self._models[li] = self._fit_leaf(leaf)

    def _split(self, li):
        leaf = self._leaves[li]
        mid = len(leaf) // 2
        left, right = leaf[:mid], leaf[mid:]
        self._leaves[li] = left
        self._models[li] = self._fit_leaf(left)
        self._leaves.insert(li + 1, right)
        self._leaf_keys.insert(li + 1, right[0])
        self._models.insert(li + 1, self._fit_leaf(right))

    def lookup(self, key):
        """Returns ``(global position or None, comparisons)``."""
        key = float(key)
        li = self._leaf_for(key)
        comparisons = max(1, int(np.ceil(np.log2(len(self._leaves) + 1))))
        leaf = self._leaves[li]
        if not leaf:
            return None, comparisons
        slope, intercept = self._models[li]
        pos = int(np.clip(slope * key + intercept, 0, len(leaf) - 1))
        # Exponential search out from the prediction.
        lo, hi = 0, len(leaf)
        step = 1
        if leaf[pos] < key:
            lo = pos
            while lo + step < len(leaf) and leaf[lo + step] < key:
                step *= 2
                comparisons += 1
            hi = min(len(leaf), lo + step + 1)
        else:
            hi = pos + 1
            while hi - step > 0 and leaf[max(0, hi - step - 1)] >= key:
                step *= 2
                comparisons += 1
            lo = max(0, hi - step - 1)
        while lo < hi:
            mid = (lo + hi) // 2
            comparisons += 1
            if leaf[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(leaf) and leaf[lo] == key:
            offset = sum(len(l) for l in self._leaves[:li])
            return offset + lo, comparisons
        return None, comparisons

    def size_bytes(self):
        """Leaf directory + per-leaf models (+50% slack accounting)."""
        return len(self._leaves) * (8 + 16) + self._n * 4  # slack overhead

    def __len__(self):
        return self._n


def evaluate_index(index, present_keys, absent_keys):
    """Probe an index with hit and miss lookups; summarize cost.

    Returns:
        dict with mean/max comparisons for hits, mean for misses, hit
        correctness rate, and the structure's modeled size.
    """
    hit_comps = []
    correct = 0
    all_keys = getattr(index, "keys", None)
    for k in present_keys:
        pos, comps = index.lookup(float(k))
        hit_comps.append(comps)
        if pos is None:
            continue
        if all_keys is None or float(all_keys[pos]) == float(k):
            correct += 1
    miss_comps = []
    for k in absent_keys:
        pos, comps = index.lookup(float(k))
        miss_comps.append(comps)
    return {
        "mean_hit_comparisons": float(np.mean(hit_comps)),
        "max_hit_comparisons": int(np.max(hit_comps)),
        "mean_miss_comparisons": float(np.mean(miss_comps)) if miss_comps else 0.0,
        "hit_accuracy": correct / max(1, len(present_keys)),
        "size_bytes": int(index.size_bytes()),
    }
