"""Learned key-value store design: the design continuum + alchemy search.

Implements the "data structure alchemy" idea the tutorial describes (Idreos
et al. [24, 25]): a *design continuum* parameterizes the LSM-tree <-> B-tree
space with a handful of knobs, an analytic cost model scores a design
against a workload, and design search walks the knobs "in one direction
until reaching the cost boundary" — a coordinate-descent procedure the
paper explicitly likens to gradient descent.

Cost formulas follow the standard LSM analysis (Monkey/Dostoevsky
lineage): with size ratio ``T``, ``L = ceil(log_T(N/B))`` levels,
leveling-vs-tiering merge policy, bloom filters with ``bits``/key, and
fence pointers:

* write cost  ~ leveling: T*L/B;  tiering: L/B   (amortized I/Os per insert)
* point read  ~ leveling: L*fp ; tiering: T*L*fp  (+1 for the hit)
* short scan  ~ leveling: L   ; tiering: T*L
* memory      ~ bloom bits + buffer + fence pointers
"""

import math

import numpy as np

from repro.common import ModelError


class KVWorkload:
    """A KV workload mix.

    Attributes:
        point_reads, writes, scans: operation fractions (sum to 1).
        n_entries: dataset size in entries.
        entry_bytes: bytes per entry.
    """

    def __init__(self, name, point_reads, writes, scans, n_entries=10_000_000,
                 entry_bytes=128):
        total = point_reads + writes + scans
        if not np.isclose(total, 1.0):
            raise ModelError("operation fractions must sum to 1")
        self.name = name
        self.point_reads = float(point_reads)
        self.writes = float(writes)
        self.scans = float(scans)
        self.n_entries = int(n_entries)
        self.entry_bytes = int(entry_bytes)

    def __repr__(self):
        return "KVWorkload(%s: r=%.2f w=%.2f s=%.2f)" % (
            self.name, self.point_reads, self.writes, self.scans
        )


class KVDesign:
    """One point in the design continuum.

    Attributes:
        size_ratio: LSM size ratio ``T`` (2 = B-tree-ish merge eagerness,
            10+ = write-optimized).
        merge_policy: 0.0 = full leveling ... 1.0 = full tiering (the
            continuum interpolates costs).
        buffer_mb: in-memory buffer size.
        bloom_bits: bloom-filter bits per key (0 disables).
        fence_granularity: entries per fence pointer (smaller = more memory,
            cheaper scans/seeks).
    """

    BOUNDS = {
        "size_ratio": (2.0, 16.0),
        "merge_policy": (0.0, 1.0),
        "buffer_mb": (1.0, 512.0),
        "bloom_bits": (0.0, 16.0),
        "fence_granularity": (16.0, 4096.0),
    }

    def __init__(self, size_ratio=4.0, merge_policy=0.0, buffer_mb=64.0,
                 bloom_bits=10.0, fence_granularity=256.0):
        self.size_ratio = float(size_ratio)
        self.merge_policy = float(merge_policy)
        self.buffer_mb = float(buffer_mb)
        self.bloom_bits = float(bloom_bits)
        self.fence_granularity = float(fence_granularity)
        for knob, (lo, hi) in self.BOUNDS.items():
            v = getattr(self, knob)
            if not lo <= v <= hi:
                raise ModelError("%s=%r outside [%g, %g]" % (knob, v, lo, hi))

    def knobs(self):
        """Dict of knob values."""
        return {k: getattr(self, k) for k in self.BOUNDS}

    def with_knob(self, knob, value):
        """A copy with one knob changed (clipped to bounds)."""
        lo, hi = self.BOUNDS[knob]
        values = self.knobs()
        values[knob] = min(max(value, lo), hi)
        return KVDesign(**values)

    def __repr__(self):
        return ("KVDesign(T=%.1f, policy=%.2f, buf=%.0fMB, bloom=%.1f, "
                "fence=%.0f)") % (
            self.size_ratio, self.merge_policy, self.buffer_mb,
            self.bloom_bits, self.fence_granularity,
        )


class KVCostModel:
    """Analytic per-operation and memory costs for a design + workload.

    Args:
        memory_budget_mb: designs whose memory footprint exceeds this pay a
            linear penalty (models cache pressure).
        read_weight, write_weight, scan_weight, memory_weight: objective
            weights for the scalarized total cost.
    """

    def __init__(self, memory_budget_mb=256.0, memory_weight=0.02):
        self.memory_budget_mb = memory_budget_mb
        self.memory_weight = memory_weight

    def _levels(self, design, workload):
        buffer_entries = design.buffer_mb * 1024 * 1024 / workload.entry_bytes
        ratio = max(workload.n_entries / max(buffer_entries, 1.0), 1.0)
        return max(1.0, math.ceil(math.log(ratio, design.size_ratio)))

    def write_cost(self, design, workload):
        """Amortized I/O per write (leveling/tiering interpolation)."""
        L = self._levels(design, workload)
        entries_per_page = 4096 / workload.entry_bytes
        leveling = design.size_ratio * L / entries_per_page
        tiering = L / entries_per_page
        return (1 - design.merge_policy) * leveling + design.merge_policy * tiering

    def point_read_cost(self, design, workload):
        """Expected I/Os per point lookup, with bloom-filter skipping."""
        L = self._levels(design, workload)
        fp = 0.6 ** design.bloom_bits if design.bloom_bits > 0 else 1.0
        runs_leveling = L
        runs_tiering = design.size_ratio * L
        runs = (1 - design.merge_policy) * runs_leveling + (
            design.merge_policy * runs_tiering
        )
        # One true hit + false-positive probes of the other runs; fence
        # pointers bound the within-run search to one page when fine enough.
        fence_pages = max(1.0, design.fence_granularity * workload.entry_bytes / 4096)
        return (1.0 + fp * max(0.0, runs - 1.0)) * fence_pages

    def scan_cost(self, design, workload, scan_entries=100):
        """Expected I/Os per short range scan."""
        L = self._levels(design, workload)
        runs = (1 - design.merge_policy) * L + design.merge_policy * (
            design.size_ratio * L
        )
        pages = max(1.0, scan_entries * workload.entry_bytes / 4096)
        fence_overhead = design.fence_granularity / 256.0
        return runs * (1.0 + 0.1 * fence_overhead) + pages

    def memory_mb(self, design, workload):
        """Memory footprint: buffer + bloom + fence pointers."""
        bloom = design.bloom_bits * workload.n_entries / 8 / 1024 / 1024
        fences = (
            workload.n_entries / max(design.fence_granularity, 1.0)
        ) * 16 / 1024 / 1024
        return design.buffer_mb + bloom + fences

    def total_cost(self, design, workload):
        """Scalarized workload cost (the design-search objective)."""
        cost = (
            workload.point_reads * self.point_read_cost(design, workload)
            + workload.writes * self.write_cost(design, workload)
            + workload.scans * self.scan_cost(design, workload)
        )
        mem = self.memory_mb(design, workload)
        overflow = max(0.0, mem - self.memory_budget_mb)
        return cost + self.memory_weight * overflow


def classic_designs():
    """Fixed designs a non-learning engineer would pick off the shelf."""
    return {
        "btree-like": KVDesign(size_ratio=2.0, merge_policy=0.0, buffer_mb=16,
                               bloom_bits=0.0, fence_granularity=64),
        "lsm-leveling": KVDesign(size_ratio=10.0, merge_policy=0.0,
                                 buffer_mb=64, bloom_bits=10.0,
                                 fence_granularity=256),
        "lsm-tiering": KVDesign(size_ratio=10.0, merge_policy=1.0,
                                buffer_mb=64, bloom_bits=10.0,
                                fence_granularity=256),
    }


class DesignContinuumSearch:
    """Data-structure alchemy: coordinate descent over the design knobs.

    Repeatedly identifies the knob whose move most reduces total cost and
    "tweaks it in one direction until reaching the cost boundary" [24],
    then moves to the next knob, until no move helps — the gradient-descent
    analogue the paper describes.

    Args:
        cost_model: a :class:`KVCostModel`.
        n_steps_per_knob: discretization of each knob's sweep.
        max_rounds: full passes over the knob set.
    """

    def __init__(self, cost_model=None, n_steps_per_knob=12, max_rounds=6):
        self.cost_model = cost_model or KVCostModel()
        self.n_steps_per_knob = n_steps_per_knob
        self.max_rounds = max_rounds

    def _sweep_values(self, knob):
        lo, hi = KVDesign.BOUNDS[knob]
        if knob in ("size_ratio", "buffer_mb", "fence_granularity"):
            return np.exp(np.linspace(np.log(lo), np.log(hi),
                                      self.n_steps_per_knob))
        return np.linspace(lo, hi, self.n_steps_per_knob)

    def search(self, workload, start=None):
        """Find a low-cost design for ``workload``.

        Returns:
            ``(best_design, best_cost, trajectory)`` where trajectory lists
            ``(knob, value, cost)`` for each accepted move.
        """
        design = start or KVDesign()
        cost = self.cost_model.total_cost(design, workload)
        trajectory = []
        for __ in range(self.max_rounds):
            improved = False
            for knob in KVDesign.BOUNDS:
                best_v, best_c = None, cost
                for v in self._sweep_values(knob):
                    cand = design.with_knob(knob, v)
                    c = self.cost_model.total_cost(cand, workload)
                    if c < best_c - 1e-12:
                        best_v, best_c = v, c
                if best_v is not None:
                    design = design.with_knob(knob, best_v)
                    cost = best_c
                    trajectory.append((knob, float(best_v), float(best_c)))
                    improved = True
            if not improved:
                break
        return design, cost, trajectory
