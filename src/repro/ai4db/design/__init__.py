"""Learned database design (paper §2.1, category 3)."""

from repro.ai4db.design.learned_index import (
    RMIIndex,
    PGMIndex,
    ALEXLiteIndex,
    BinarySearchIndex,
    evaluate_index,
)
from repro.ai4db.design.learned_kv import (
    KVWorkload,
    KVDesign,
    KVCostModel,
    DesignContinuumSearch,
    classic_designs,
)
from repro.ai4db.design.txn_mgmt import (
    TransactionFeaturizer,
    ConflictClassifier,
    LearnedScheduler,
    evaluate_schedulers,
)

__all__ = [
    "RMIIndex",
    "PGMIndex",
    "ALEXLiteIndex",
    "BinarySearchIndex",
    "evaluate_index",
    "KVWorkload",
    "KVDesign",
    "KVCostModel",
    "DesignContinuumSearch",
    "classic_designs",
    "TransactionFeaturizer",
    "ConflictClassifier",
    "LearnedScheduler",
    "evaluate_schedulers",
]
