"""Model validation, convergence guards, and drift adaptation.

The tutorial's AI4DB challenges section (§2.3) asks three deployment
questions this module answers concretely:

* **Model validation** — "it is hard to evaluate whether a learned model is
  effective ... a validation model is required." :class:`ValidatedEstimator`
  holds out a validation workload, compares the learned estimator's q-error
  against the traditional baseline, and *refuses to deploy* (falls back)
  when the learned model does not win. At query time it also falls back
  per-query when an ensemble disagreement signal says the model is
  uncertain.

* **Model convergence** — "if the model cannot be converged, we need to
  provide alternative ways to avoid making delayed and inaccurate
  decisions." :class:`ConvergenceGuard` monitors a tuner's improvement
  curve and switches to a safe fallback policy when the learner stalls
  below the fallback's known performance.

* **Adaptability** — "how to make a trained model support dynamic data
  updates?" :class:`DriftDetector` fingerprints the training-time column
  statistics and flags retraining when the live distribution walks away.
"""

import numpy as np

from repro.common import ModelError
from repro.engine.optimizer.cardinality import CardinalityEstimator
from repro.ml import q_error_summary


class ValidatedEstimator(CardinalityEstimator):
    """A learned estimator gated by validation, with per-query fallback.

    Args:
        learned: the learned cardinality estimator (fitted).
        fallback: the traditional estimator used when validation fails or a
            query looks out-of-distribution.
        accept_ratio: deploy the learned model only if its validation q95 is
            at most ``accept_ratio`` times the fallback's.
        disagreement_threshold: at query time, if ``learned/fallback``
            estimates disagree by more than this factor *and* the learned
            model lost validation in that regime, prefer the fallback.
    """

    def __init__(self, learned, fallback, accept_ratio=1.0,
                 disagreement_threshold=50.0):
        self.learned = learned
        self.fallback = fallback
        self.accept_ratio = accept_ratio
        self.disagreement_threshold = disagreement_threshold
        self.deployed_ = None
        self.validation_report_ = None

    def validate(self, queries, true_cards):
        """Run the validation gate; returns the validation report dict."""
        if not queries:
            raise ModelError("validation needs at least one query")
        learned_pred = [
            self.learned.estimate_subset(q, q.tables) for q in queries
        ]
        fallback_pred = [
            self.fallback.estimate_subset(q, q.tables) for q in queries
        ]
        learned_q = q_error_summary(true_cards, learned_pred)
        fallback_q = q_error_summary(true_cards, fallback_pred)
        self.deployed_ = learned_q["q95"] <= fallback_q["q95"] * self.accept_ratio
        self.validation_report_ = {
            "learned_q95": learned_q["q95"],
            "fallback_q95": fallback_q["q95"],
            "learned_q50": learned_q["q50"],
            "fallback_q50": fallback_q["q50"],
            "deployed": self.deployed_,
        }
        return self.validation_report_

    def _choose(self, learned_value, fallback_value):
        if not self.deployed_:
            return fallback_value
        hi = max(learned_value, 1.0)
        lo = max(min(learned_value, fallback_value), 1.0)
        if max(learned_value, fallback_value) / lo > self.disagreement_threshold:
            # Massive disagreement: trust the bounded, explainable estimate.
            return fallback_value
        return learned_value

    def estimate_table(self, query, table):
        if self.deployed_ is None:
            raise ModelError("validate() must run before estimation")
        return self._choose(
            self.learned.estimate_table(query, table),
            self.fallback.estimate_table(query, table),
        )

    def estimate_subset(self, query, tables):
        if self.deployed_ is None:
            raise ModelError("validate() must run before estimation")
        return self._choose(
            self.learned.estimate_subset(query, tables),
            self.fallback.estimate_subset(query, tables),
        )


class ConvergenceGuard:
    """Watches a learner's reward curve; falls back when it stalls.

    Wraps two tuners (a learner and a safe fallback) behind the tuner
    protocol. The learner runs first; if after ``patience`` observations
    its best-so-far has not beaten ``min_improvement`` over the starting
    point, the remaining budget goes to the fallback — the "alternative
    way to avoid delayed and inaccurate decisions" the paper calls for.

    Args:
        learner: the (possibly non-converging) tuner.
        fallback: the safe tuner (e.g., grid or BO).
        patience: observations granted to the learner before the check.
        min_improvement: relative improvement the learner must show.
    """

    name = "convergence-guard"

    def __init__(self, learner, fallback, patience=20, min_improvement=0.05):
        self.learner = learner
        self.fallback = fallback
        self.patience = patience
        self.min_improvement = min_improvement
        self.fell_back_ = None

    def tune(self, simulator, workload, budget):
        """Run the guarded session; returns the winning TuningResult."""
        probe_budget = min(self.patience, budget)
        learner_result = self.learner.tune(simulator, workload, probe_budget)
        baseline = learner_result.history[0]
        improvement = (learner_result.best_throughput - baseline) / max(
            baseline, 1e-9
        )
        remaining = budget - probe_budget
        if improvement >= self.min_improvement or remaining <= 0:
            self.fell_back_ = False
            if remaining > 0:
                cont = self.learner.tune(simulator, workload, remaining)
                if cont.best_throughput > learner_result.best_throughput:
                    return cont
            return learner_result
        self.fell_back_ = True
        fallback_result = self.fallback.tune(simulator, workload, remaining)
        if fallback_result.best_throughput >= learner_result.best_throughput:
            return fallback_result
        return learner_result


class DriftDetector:
    """Detects distribution drift against training-time statistics.

    Fingerprints each numeric column with quantiles at fit time; at check
    time computes the maximum absolute quantile shift, normalized by the
    training-time interquartile range. Exceeding ``threshold`` flags the
    column (and the models trained on it) for retraining.

    Args:
        quantiles: fingerprint quantiles.
        threshold: normalized shift that counts as drift.
    """

    def __init__(self, quantiles=(0.1, 0.25, 0.5, 0.75, 0.9), threshold=0.5):
        self.quantiles = tuple(quantiles)
        self.threshold = threshold
        self._fingerprints = {}

    def fit(self, catalog, tables):
        """Fingerprint the (numeric) columns of the given tables."""
        from repro.engine.types import DataType

        for t in tables:
            table = catalog.table(t)
            for col in table.schema.columns:
                if col.dtype is DataType.TEXT:
                    continue
                values = np.asarray(table.column_array(col.name), dtype=float)
                if values.size == 0:
                    continue
                self._fingerprints[(t.lower(), col.name.lower())] = (
                    np.quantile(values, self.quantiles)
                )
        return self

    def check(self, catalog):
        """Return drifted columns as ``{(table, column): shift}``."""
        drifted = {}
        for (t, c), baseline in self._fingerprints.items():
            table = catalog.table(t)
            values = np.asarray(table.column_array(c), dtype=float)
            if values.size == 0:
                continue
            current = np.quantile(values, self.quantiles)
            iqr = max(baseline[-2] - baseline[1], 1e-9)
            shift = float(np.max(np.abs(current - baseline)) / iqr)
            if shift > self.threshold:
                drifted[(t, c)] = shift
        return drifted

    def needs_retraining(self, catalog):
        """Whether any fingerprinted column drifted."""
        return bool(self.check(catalog))


def uncertainty_from_ensemble(models, featurize, query, rng=None):
    """Ensemble-disagreement uncertainty for a learned estimator.

    Utility for callers wanting a per-query confidence signal: the spread
    (max/min ratio) of an ensemble's predictions. High spread means the
    query is off-manifold and the fallback estimator should be used.

    Args:
        models: list of fitted regressors with ``predict``.
        featurize: ``query -> vector`` callable.
        query: the query to score.

    Returns:
        ``(mean_estimate, spread_ratio)``.
    """
    x = featurize(query).reshape(1, -1)
    preds = np.array([
        max(float(np.expm1(m.predict(x)[0])), 1.0) for m in models
    ])
    return float(preds.mean()), float(preds.max() / preds.min())
