"""Database activity monitoring as a multi-armed bandit.

Grushka-Cohen et al. [19]: an auditor can only record/inspect a fraction
of database activities, so *which* activities to audit is an
exploration/exploitation problem — exploit activity types known to be
risky, explore the rest in case risk drifted. The policy's value is the
total risk score captured under a fixed audit budget.

Policies below consume the telemetry generator's activity stream; the
bandit policies treat activity types as arms and realized risk as reward.
"""

import numpy as np

from repro.common import ensure_rng
from repro.engine.telemetry import ACTIVITY_TYPES
from repro.ml import ThompsonBetaBandit, UCB1Bandit


class AuditPolicy:
    """Base class: decide which activity type to audit at each step."""

    name = "base"

    def select(self):
        """Return the activity-type index to audit next."""
        raise NotImplementedError

    def update(self, arm, reward):
        """Observe the realized risk of the audited activity."""


class RandomAuditPolicy(AuditPolicy):
    """Audits a uniformly random activity type (no learning)."""

    name = "random"

    def __init__(self, n_arms=None, seed=0):
        self.n_arms = n_arms or len(ACTIVITY_TYPES)
        self._rng = ensure_rng(seed)

    def select(self):
        return int(self._rng.integers(0, self.n_arms))


class RoundRobinAuditPolicy(AuditPolicy):
    """Cycles through activity types (the record-everything-fairly rule)."""

    name = "round-robin"

    def __init__(self, n_arms=None):
        self.n_arms = n_arms or len(ACTIVITY_TYPES)
        self._next = 0

    def select(self):
        arm = self._next
        self._next = (self._next + 1) % self.n_arms
        return arm


class BanditAuditPolicy(AuditPolicy):
    """Wraps a bandit (UCB1 or Thompson) as an audit policy."""

    def __init__(self, kind="thompson", n_arms=None, seed=0):
        self.n_arms = n_arms or len(ACTIVITY_TYPES)
        if kind == "thompson":
            self._bandit = ThompsonBetaBandit(self.n_arms, seed=seed)
        elif kind == "ucb":
            self._bandit = UCB1Bandit(self.n_arms)
        else:
            raise ValueError("kind must be 'thompson' or 'ucb'")
        self.name = "bandit-%s" % kind

    def select(self):
        return self._bandit.select()

    def update(self, arm, reward):
        self._bandit.update(arm, reward)


def run_audit_simulation(policy, type_means, n_steps=2000, noise=0.12, seed=0):
    """Simulate auditing with a per-step budget of one activity.

    At each step the policy picks an activity type to audit; the realized
    risk is a noisy draw around the type's true mean. Returns the captured
    risk total, the per-step history, and regret vs. always auditing the
    riskiest type.

    Args:
        policy: an :class:`AuditPolicy`.
        type_means: true mean risk per activity type.
        n_steps: audit budget.
        noise: observation noise std.
        seed: draw seed.

    Returns:
        dict with ``captured``, ``regret``, ``history``.
    """
    rng = ensure_rng(seed)
    type_means = np.asarray(type_means, dtype=float)
    best = float(type_means.max())
    history = []
    captured = 0.0
    for __ in range(n_steps):
        arm = policy.select()
        reward = float(np.clip(rng.normal(type_means[arm], noise), 0.0, 1.0))
        policy.update(arm, reward)
        history.append(reward)
        captured += reward
    regret = best * n_steps - captured
    return {"captured": captured, "regret": regret, "history": history}
