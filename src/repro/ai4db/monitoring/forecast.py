"""Query-arrival forecasting (QueryBot5000-lite, Ma et al. [49]).

The cited system predicts future query arrival rates so a self-driving
DBMS can provision ahead of load. Its recipe — linear models over lagged
features plus an ensemble with seasonal components — is reproduced here on
the telemetry generator's traces. Baselines are the naive persistences a
non-learning monitor would use.
"""

import numpy as np

from repro.common import ModelError, NotFittedError
from repro.ml import LinearRegression, mean_absolute_error, mean_absolute_percentage_error

#: Lags (in hours) the autoregressive features use: recent, daily, weekly.
DEFAULT_LAGS = (1, 2, 3, 24, 48, 168)


class NaiveForecaster:
    """Predicts the last observed value."""

    name = "naive"

    def fit(self, series):
        return self

    def predict(self, history, horizon=1):
        """Forecast ``horizon`` steps from the end of ``history``."""
        return np.full(horizon, float(history[-1]))


class SeasonalNaiveForecaster:
    """Predicts the value one season (default: one day) ago."""

    name = "seasonal-naive"

    def __init__(self, season=24):
        self.season = season

    def fit(self, series):
        return self

    def predict(self, history, horizon=1):
        history = np.asarray(history, dtype=float)
        out = np.empty(horizon)
        for h in range(horizon):
            idx = len(history) - self.season + h
            out[h] = history[idx] if 0 <= idx < len(history) else history[-1]
        return out


class MovingAverageForecaster:
    """Predicts the mean of the last ``window`` observations."""

    name = "moving-average"

    def __init__(self, window=24):
        self.window = window

    def fit(self, series):
        return self

    def predict(self, history, horizon=1):
        history = np.asarray(history, dtype=float)
        return np.full(horizon, float(history[-self.window :].mean()))


class AutoregressiveForecaster:
    """Linear regression over lagged values + hour/weekday encodings."""

    name = "autoregressive"

    def __init__(self, lags=DEFAULT_LAGS):
        self.lags = tuple(lags)
        self.model = LinearRegression()
        self._fitted = False

    def _features(self, series, t):
        row = [series[t - lag] for lag in self.lags]
        hour = t % 24
        weekday = (t // 24) % 7
        row.append(np.sin(2 * np.pi * hour / 24))
        row.append(np.cos(2 * np.pi * hour / 24))
        row.append(1.0 if weekday >= 5 else 0.0)
        return row

    def fit(self, series):
        series = np.asarray(series, dtype=float)
        max_lag = max(self.lags)
        if len(series) <= max_lag + 1:
            raise ModelError("series too short for the configured lags")
        X, y = [], []
        for t in range(max_lag, len(series)):
            X.append(self._features(series, t))
            y.append(series[t])
        self.model.fit(np.asarray(X), np.asarray(y))
        self._fitted = True
        return self

    def predict(self, history, horizon=1):
        if not self._fitted:
            raise NotFittedError("AutoregressiveForecaster used before fit")
        series = list(np.asarray(history, dtype=float))
        out = []
        for __ in range(horizon):
            t = len(series)
            x = np.asarray([self._features(series, t)])
            pred = float(self.model.predict(x)[0])
            pred = max(pred, 0.0)
            out.append(pred)
            series.append(pred)
        return np.asarray(out)


class EnsembleForecaster:
    """Average of AR + seasonal-naive (the QueryBot5000 hybrid trick)."""

    name = "ensemble"

    def __init__(self, season=24, lags=DEFAULT_LAGS):
        self.ar = AutoregressiveForecaster(lags)
        self.seasonal = SeasonalNaiveForecaster(season)

    def fit(self, series):
        self.ar.fit(series)
        return self

    def predict(self, history, horizon=1):
        return 0.5 * self.ar.predict(history, horizon) + 0.5 * self.seasonal.predict(
            history, horizon
        )


def evaluate_forecasters(series, forecasters, train_frac=0.7, horizon=1):
    """Rolling-origin evaluation on the tail of ``series``.

    Each forecaster is fit on the training prefix, then asked for
    ``horizon``-step forecasts at every step of the holdout (using true
    history up to that point — the standard rolling evaluation).

    Returns:
        dict name -> {"mae": float, "mape": float}.
    """
    series = np.asarray(series, dtype=float)
    split = int(len(series) * train_frac)
    train = series[:split]
    results = {}
    for fc in forecasters:
        fc.fit(train)
        preds, trues = [], []
        for t in range(split, len(series) - horizon + 1):
            p = fc.predict(series[:t], horizon=horizon)
            preds.append(p[-1])
            trues.append(series[t + horizon - 1])
        results[fc.name] = {
            "mae": mean_absolute_error(trues, preds),
            "mape": mean_absolute_percentage_error(trues, preds),
        }
    return results
