"""Concurrent-query performance prediction: graph embedding vs. plan-only.

Zhou et al. [90] showed that predicting a query's latency under
concurrency requires modeling the *workload graph* — which queries share
data (helping each other through caching) and which contend for resources
(hurting each other). A plan-only model (Marcus & Papaemmanouil [56]
regime) sees each query in isolation and misses those interactions.

The substrate generates concurrent mixes where ground-truth latency is

    latency_i = base_i * (1 + contention_i - sharing_i + noise)

with sharing/contention derived from pairwise table overlap and memory
pressure — structure a GCN over the workload graph can capture exactly and
a per-node MLP cannot.
"""

import networkx as nx
import numpy as np

from repro.common import ensure_rng
from repro.ml import GCNRegressor, MLPRegressor


class ConcurrentWorkloadGenerator:
    """Generates concurrent query mixes with ground-truth latencies.

    Each query template has a base work amount, a set of touched tables and
    a memory footprint. In a mix of ``k`` queries:

    * each pair sharing tables *reduces* both latencies (shared scans),
    * total memory beyond the budget *inflates* all latencies
      proportionally to each query's footprint,
    * pairs writing the same table add lock contention.

    Args:
        n_tables: size of the simulated schema.
        seed: generator seed.
    """

    def __init__(self, n_tables=8, memory_budget=4.0, seed=0):
        self.n_tables = n_tables
        self.memory_budget = memory_budget
        self._rng = ensure_rng(seed)

    def _make_query(self):
        n_touch = int(self._rng.integers(1, 4))
        tables = sorted(
            self._rng.choice(self.n_tables, size=n_touch, replace=False).tolist()
        )
        return {
            "base": float(self._rng.uniform(0.5, 5.0)),
            "tables": tables,
            "memory": float(self._rng.uniform(0.2, 1.5)),
            "writes": bool(self._rng.random() < 0.25),
        }

    def generate_mix(self, k=6):
        """One concurrent mix; returns ``(graph, features, latencies)``.

        The graph's nodes are ``0..k-1``; edge weights are the pairwise
        table-overlap counts. Node features: base work, memory footprint,
        write flag, number of touched tables.
        """
        queries = [self._make_query() for __ in range(k)]
        g = nx.Graph()
        g.add_nodes_from(range(k))
        overlap = np.zeros((k, k))
        for i in range(k):
            for j in range(i + 1, k):
                shared = len(set(queries[i]["tables"]) & set(queries[j]["tables"]))
                if shared:
                    g.add_edge(i, j, weight=float(shared))
                    overlap[i, j] = overlap[j, i] = shared
        latencies = np.zeros(k)
        for i, q in enumerate(queries):
            sharing = 0.08 * overlap[i].sum()
            # Buffer-pool contention is local to the queries touching the
            # same tables: neighbors' memory footprints compete with ours.
            neighbor_memory = sum(
                queries[j]["memory"] for j in range(k) if overlap[i, j]
            )
            pressure = max(
                0.0, q["memory"] + neighbor_memory - self.memory_budget
            ) / self.memory_budget
            contention = 0.8 * pressure
            for j in range(k):
                if j != i and overlap[i, j] and (
                    queries[i]["writes"] or queries[j]["writes"]
                ):
                    contention += 0.15 * overlap[i, j]
            noise = float(self._rng.normal(0.0, 0.02))
            latencies[i] = q["base"] * max(
                0.1, 1.0 + contention - sharing + noise
            )
        features = np.array(
            [
                [q["base"], q["memory"], 1.0 if q["writes"] else 0.0,
                 len(q["tables"])]
                for q in queries
            ]
        )
        return g, features, latencies

    def generate_dataset(self, n_mixes=120, k_range=(4, 10)):
        """A list of ``(graph, features, latencies)`` mixes."""
        out = []
        for __ in range(n_mixes):
            k = int(self._rng.integers(k_range[0], k_range[1] + 1))
            out.append(self.generate_mix(k))
        return out


class PlanOnlyPredictor:
    """Baseline: per-query MLP that never sees the co-running queries.

    Both predictors regress the *slowdown ratio* ``latency / base`` and
    reconstruct latency by multiplying back — the standard trick, since the
    isolated base cost is known from the plan. The plan-only model cannot
    see the mix, so it can only predict the average slowdown.
    """

    name = "plan-only"

    def __init__(self, epochs=150, seed=0):
        self.model = MLPRegressor(hidden=(32, 32), epochs=epochs, seed=seed)

    def fit(self, dataset):
        X = np.vstack([feats for __, feats, ___ in dataset])
        y = np.concatenate(
            [lat / feats[:, 0] for __, feats, lat in dataset]
        )
        self.model.fit(X, y)
        return self

    def predict(self, graph, features):
        """Per-node latency predictions (graph is ignored)."""
        features = np.asarray(features, dtype=float)
        ratio = self.model.predict(features)
        return np.maximum(ratio, 0.05) * features[:, 0]


class GraphEmbeddingPredictor:
    """Zhou et al. [90] lite: GCN over the workload graph.

    Message passing lets each query's prediction see its neighbors'
    footprints (data sharing, memory pressure, write conflicts), which is
    exactly the signal the slowdown ratio depends on.
    """

    name = "graph-embedding"

    def __init__(self, hidden=32, epochs=150, seed=0):
        self.hidden = hidden
        self.epochs = epochs
        self.seed = seed
        self.model = None

    def fit(self, dataset):
        in_dim = dataset[0][1].shape[1]
        self.model = GCNRegressor(
            in_dim, hidden=self.hidden, epochs=self.epochs, seed=self.seed
        )
        graphs = [g for g, __, ___ in dataset]
        feats = [f for __, f, ___ in dataset]
        targets = [lat / f[:, 0] for __, f, lat in dataset]
        self.model.fit(graphs, feats, targets)
        return self

    def predict(self, graph, features):
        """Per-node latency predictions using graph structure."""
        features = np.asarray(features, dtype=float)
        ratio = self.model.predict(graph, features)
        return np.maximum(ratio, 0.05) * features[:, 0]
