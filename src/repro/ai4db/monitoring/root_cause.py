"""Root-cause diagnosis of slow queries (iSQUAD-lite, Ma et al. [51]).

The cited pipeline: vectorize each intermittent-slow-query incident by its
KPI state, cluster incidents, have DBAs label each *cluster* (not each
incident) with a root cause, then diagnose new incidents by matching to
the nearest cluster. The economics matter: DBA labels are expensive, so
accuracy per label is the metric — the learned pipeline reaches high
accuracy with a handful of labels where the rule baseline is fixed.
"""

import numpy as np

from repro.common import NotFittedError, ensure_rng
from repro.engine.telemetry import KPI_NAMES, ROOT_CAUSES
from repro.ml import KMeans


class RuleBasedDiagnoser:
    """Baseline: hand-written thresholds on single KPIs.

    The rules mimic what a runbook would say ("if CPU > 90% it's overload,
    if lock waits are high it's contention, ..."). Single-KPI rules
    misdiagnose incidents whose signature is a *combination* of KPIs.
    """

    name = "rules"

    #: (kpi_name, threshold, diagnosis), evaluated in order.
    RULES = [
        ("cpu_util", 0.9, "cpu_overload"),
        ("mem_util", 0.9, "memory_pressure"),
        ("lock_waits", 0.85, "lock_contention"),
        ("io_read", 0.9, "missing_index"),
        ("io_write", 0.85, "slow_disk"),
        ("temp_spill", 0.8, "memory_pressure"),
    ]

    def diagnose(self, kpi_vector):
        """First matching rule wins; unmatched incidents get a default."""
        values = dict(zip(KPI_NAMES, kpi_vector))
        for kpi, threshold, cause in self.RULES:
            if values[kpi] >= threshold:
                return cause
        return "missing_index"  # the runbook's catch-all

    def diagnose_batch(self, X):
        """Diagnose each row of a KPI matrix."""
        return [self.diagnose(row) for row in X]


class ClusterDiagnoser:
    """iSQUAD-lite: cluster incidents, label clusters, nearest-match new ones.

    Args:
        n_clusters: cluster count (≈ number of distinct causes expected).
        labels_per_cluster: DBA labels consumed per cluster (the budget).
        seed: clustering seed.
    """

    name = "cluster"

    def __init__(self, n_clusters=None, labels_per_cluster=3, seed=0):
        self.n_clusters = n_clusters or len(ROOT_CAUSES)
        self.labels_per_cluster = labels_per_cluster
        self.seed = seed
        self.kmeans = None
        self.cluster_causes_ = None
        self.labels_used_ = 0

    def fit(self, X, label_oracle):
        """Cluster ``X`` and ask the oracle for a few labels per cluster.

        Args:
            X: incident KPI matrix.
            label_oracle: callable ``index -> cause`` (the "DBA"); called
                at most ``labels_per_cluster`` times per cluster.
        """
        X = np.asarray(X, dtype=float)
        self.kmeans = KMeans(self.n_clusters, seed=self.seed).fit(X)
        labels = self.kmeans.labels_
        rng = ensure_rng(self.seed)
        self.cluster_causes_ = {}
        self.labels_used_ = 0
        for c in range(self.n_clusters):
            members = np.where(labels == c)[0]
            if len(members) == 0:
                continue
            sample = members[
                rng.choice(len(members),
                           size=min(self.labels_per_cluster, len(members)),
                           replace=False)
            ]
            votes = {}
            for idx in sample:
                cause = label_oracle(int(idx))
                self.labels_used_ += 1
                votes[cause] = votes.get(cause, 0) + 1
            self.cluster_causes_[c] = max(votes, key=votes.get)
        return self

    def diagnose_batch(self, X):
        """Nearest-cluster cause for each incident row."""
        if self.kmeans is None:
            raise NotFittedError("ClusterDiagnoser used before fit")
        X = np.asarray(X, dtype=float)
        clusters = self.kmeans.predict(X)
        fallback = next(iter(self.cluster_causes_.values()))
        return [self.cluster_causes_.get(int(c), fallback) for c in clusters]

    def new_cluster_rate(self, X, distance_threshold=0.6):
        """Fraction of incidents farther than ``distance_threshold`` from
        any centroid — iSQUAD's "unknown incident, ask the DBA" signal."""
        if self.kmeans is None:
            raise NotFittedError("ClusterDiagnoser used before fit")
        X = np.asarray(X, dtype=float)
        dists = np.linalg.norm(
            X[:, None, :] - self.kmeans.centroids_[None, :, :], axis=2
        ).min(axis=1)
        return float(np.mean(dists > distance_threshold))
