"""Learned database monitoring (paper §2.1, category 4)."""

from repro.ai4db.monitoring.forecast import (
    NaiveForecaster,
    SeasonalNaiveForecaster,
    MovingAverageForecaster,
    AutoregressiveForecaster,
    EnsembleForecaster,
    evaluate_forecasters,
)
from repro.ai4db.monitoring.perf_pred import (
    ConcurrentWorkloadGenerator,
    PlanOnlyPredictor,
    GraphEmbeddingPredictor,
)
from repro.ai4db.monitoring.root_cause import (
    RuleBasedDiagnoser,
    ClusterDiagnoser,
)
from repro.ai4db.monitoring.activity_monitor import (
    AuditPolicy,
    RandomAuditPolicy,
    RoundRobinAuditPolicy,
    BanditAuditPolicy,
    run_audit_simulation,
)

__all__ = [
    "NaiveForecaster",
    "SeasonalNaiveForecaster",
    "MovingAverageForecaster",
    "AutoregressiveForecaster",
    "EnsembleForecaster",
    "evaluate_forecasters",
    "ConcurrentWorkloadGenerator",
    "PlanOnlyPredictor",
    "GraphEmbeddingPredictor",
    "RuleBasedDiagnoser",
    "ClusterDiagnoser",
    "AuditPolicy",
    "RandomAuditPolicy",
    "RoundRobinAuditPolicy",
    "BanditAuditPolicy",
    "run_audit_simulation",
]
