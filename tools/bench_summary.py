#!/usr/bin/env python
"""One-table summary of every committed BENCH_P*.json artifact.

``make bench-summary`` (or ``python tools/bench_summary.py``) reads the
``BENCH_P1.json`` … ``BENCH_P9.json`` files the benchmarks regenerate
(``make bench-json``) and prints each bench's headline numbers in a
single fixed-width table — the quick "did a refactor move anything"
view, without rerunning anything.

Every extractor is defensive (``dict.get`` with fallbacks), so a bench
whose schema drifted prints what it can instead of crashing the table;
a missing file prints a pointer at ``make bench-json``. Exit status is
non-zero only when *no* artifact could be read at all.

Usage::

    python tools/bench_summary.py [repo_root]
"""

import json
import os
import sys


def _num(value, fmt="%.2f"):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    return fmt % value


def _p1(result):
    modes = result.get("modes", {})
    row = modes.get("row", {}).get("seconds")
    vec = modes.get("vectorized", {}).get("seconds")
    parts = ["vectorized %sx vs row" % _num(result.get("speedup"), "%.1f")]
    if row is not None and vec is not None:
        parts.append("%.1fms vs %.0fms" % (vec * 1e3, row * 1e3))
    return parts


def _p2(result):
    warm = result.get("warm", {})
    return [
        "warm planning %sx" % _num(result.get("planning_speedup"), "%.1f"),
        "hit rate %s" % _num(warm.get("hit_rate"), "%.2f"),
    ]


def _p3(result):
    speedups = result.get("speedups", {})
    if not speedups:
        return ["no speedups recorded"]
    best = max(speedups, key=speedups.get)
    return [
        "best %s %sx" % (best, _num(speedups[best], "%.2f")),
        "cpus %s" % result.get("cpu_count", "?"),
    ]


def _p4(result):
    speedups = result.get("speedups", {})
    parts = ["fused %s %sx" % (mode, _num(ratio, "%.2f"))
             for mode, ratio in sorted(speedups.items())]
    alloc = result.get("peak_alloc_ratio")
    if isinstance(alloc, dict):
        alloc = max(alloc.values()) if alloc else None
    if alloc is not None:
        parts.append("alloc %sx lower" % _num(alloc, "%.1f"))
    return parts


def _p5(result):
    learned = result.get("learned_feedback", {})
    replan = result.get("join_order_replan", {})
    return [
        "median q-error %s -> %s" % (
            _num(learned.get("median_q_error_before"), "%.1f"),
            _num(learned.get("median_q_error_after"), "%.1f"),
        ),
        "replan work %sx lower" % _num(replan.get("work_ratio"), "%.2f"),
    ]


def _p6(result):
    return [
        "scan %sx" % _num(result.get("scan_speedup"), "%.2f"),
        "prune %s" % _num(result.get("prune_rate"), "%.2f"),
        "compression %sx" % _num(result.get("compression_ratio"), "%.2f"),
    ]


def _p7(result):
    return [
        "hit rate %s vs %s (table vs global)" % (
            _num(result.get("hit_rate_table"), "%.2f"),
            _num(result.get("hit_rate_global"), "%.2f"),
        ),
        "p95 %sx" % _num(result.get("p95_speedup"), "%.2f"),
    ]


def _p8(result):
    iso = result.get("isolation", {})
    inter = result.get("interference", {})
    traffic = result.get("traffic", {})
    return [
        "%s sessions identical=%s" % (
            iso.get("n_sessions", "?"),
            iso.get("snapshot_reads_identical", "?"),
        ),
        "p95 interference %sx" % _num(
            inter.get("p95_interference_ratio"), "%.2f"
        ),
        "%s qps" % _num(traffic.get("throughput_qps"), "%.0f"),
    ]


def _p9(result):
    strategies = result.get("strategies", {})

    def total(name):
        return strategies.get(name, {}).get("total_work")

    gates = result.get("gates", {})
    return [
        "work optimal %s / learned %s / ues %s / greedy %s" % (
            _num(total("optimal"), "%.0f"), _num(total("learned"), "%.0f"),
            _num(total("pessimistic"), "%.0f"),
            _num(total("heuristic"), "%.0f"),
        ),
        "gates %s" % ("ok" if gates and all(gates.values()) else gates),
    ]


#: file stem -> (label, headline extractor over one results[] entry).
BENCHES = (
    ("BENCH_P1", "P1 executor", _p1),
    ("BENCH_P2", "P2 plan cache", _p2),
    ("BENCH_P3", "P3 morsels", _p3),
    ("BENCH_P4", "P4 fusion", _p4),
    ("BENCH_P5", "P5 feedback", _p5),
    ("BENCH_P6", "P6 storage", _p6),
    ("BENCH_P7", "P7 snapshots", _p7),
    ("BENCH_P8", "P8 server", _p8),
    ("BENCH_P9", "P9 plan selection", _p9),
)


def summarize(root="."):
    """``(rows, found)``: table rows for every bench, and how many files
    were actually readable."""
    rows, found = [], 0
    for stem, label, extractor in BENCHES:
        path = os.path.join(root, stem + ".json")
        if not os.path.exists(path):
            rows.append((label, "-", "missing (run: make bench-json)"))
            continue
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            rows.append((label, "-", "unreadable: %s" % exc))
            continue
        found += 1
        results = payload.get("results") or []
        if not isinstance(results, list) or not results:
            rows.append((label, "-", "no results recorded"))
            continue
        for result in results:
            if not isinstance(result, dict):
                continue
            size = "fast" if result.get("fast") else "full"
            try:
                headline = "; ".join(extractor(result))
            except Exception as exc:  # noqa: BLE001 - defensive table
                headline = "extractor failed: %s" % exc
            rows.append((label, size, headline))
    return rows, found


def render(rows):
    widths = [max(len(r[i]) for r in rows) for i in range(2)]
    lines = ["%-*s  %-*s  %s" % (widths[0], "bench", widths[1], "size",
                                 "headline")]
    lines.append("-" * max(len(lines[0]), 40))
    for label, size, headline in rows:
        lines.append("%-*s  %-*s  %s" % (widths[0], label, widths[1], size,
                                         headline))
    return "\n".join(lines)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else os.path.join(os.path.dirname(__file__), "..")
    rows, found = summarize(root)
    print(render(rows))
    if not found:
        print("no BENCH_P*.json artifacts found under %s" % root,
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
