#!/usr/bin/env python
"""Dependency-free lint for the repo (``make lint``).

Prefers a real linter when one is importable (``ruff``, then
``pyflakes``); otherwise falls back to the bundled AST checker, which
catches the high-signal pyflakes subset without installing anything:

* syntax errors,
* unused imports (F401) — suppressible with ``# noqa`` / ``# noqa: F401``
  on the import line, and names exported via ``__all__`` count as used,
* duplicate keys in dict literals (F601-style),
* duplicate function/class definitions in one scope (F811-style).

Usage::

    python tools/lint.py [paths...]     # default: src tests benchmarks tools

Exit status is non-zero when any finding is reported.
"""

import ast
import os
import subprocess
import sys

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")


def iter_py_files(paths):
    for path in paths:
        if os.path.isfile(path) and path.endswith(".py"):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def _noqa_lines(source, code):
    """Line numbers whose ``# noqa`` comment suppresses ``code``."""
    lines = set()
    for i, line in enumerate(source.splitlines(), start=1):
        if "# noqa" not in line:
            continue
        tail = line.split("# noqa", 1)[1].strip()
        if not tail.startswith(":") or code in tail:
            lines.add(i)
    return lines


class _ImportBinding:
    __slots__ = ("name", "lineno", "statement")

    def __init__(self, name, lineno, statement):
        self.name = name
        self.lineno = lineno
        self.statement = statement


def _collect_imports(tree):
    """Module-level import bindings: what name the import introduces."""
    bindings = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                bindings.append(_ImportBinding(bound, node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings.append(_ImportBinding(bound, node.lineno, alias.name))
        elif isinstance(node, ast.Try):
            # Guarded imports (try: import x / except ImportError) bind
            # conditionally; still worth checking for usage.
            for sub in ast.walk(node):
                if isinstance(sub, ast.Import):
                    for alias in sub.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        bindings.append(
                            _ImportBinding(bound, sub.lineno, alias.name)
                        )
                elif isinstance(sub, ast.ImportFrom):
                    for alias in sub.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        bindings.append(
                            _ImportBinding(bound, sub.lineno, alias.name)
                        )
    return bindings


def _used_names(tree):
    """Every identifier referenced anywhere (loads, attributes, exports)."""
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            pass  # the base Name is walked separately
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for elt in ast.walk(node.value):
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            used.add(elt.value)
    return used


def check_unused_imports(path, tree, source, findings):
    suppressed = _noqa_lines(source, "F401")
    used = _used_names(tree)
    for binding in _collect_imports(tree):
        if binding.lineno in suppressed:
            continue
        if binding.name not in used:
            findings.append(
                "%s:%d: F401 %r imported but unused"
                % (path, binding.lineno, binding.statement)
            )


def check_duplicate_dict_keys(path, tree, findings):
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        seen = set()
        for key in node.keys:
            if isinstance(key, ast.Constant):
                try:
                    marker = (type(key.value).__name__, key.value)
                except TypeError:
                    continue
                if marker in seen:
                    findings.append(
                        "%s:%d: F601 duplicate dict key %r"
                        % (path, key.lineno, key.value)
                    )
                seen.add(marker)


def check_redefinitions(path, tree, findings):
    scopes = [tree] + [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    for scope in scopes:
        body = scope.body if not isinstance(scope, ast.Module) else scope.body
        defined = {}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                prev = defined.get(stmt.name)
                if prev is not None and not _is_decorated_pair(stmt):
                    findings.append(
                        "%s:%d: F811 redefinition of %r (first at line %d)"
                        % (path, stmt.lineno, stmt.name, prev)
                    )
                defined[stmt.name] = stmt.lineno
    return findings


def _is_decorated_pair(stmt):
    """``@property``/``@x.setter``-style stacks legitimately reuse names."""
    for dec in stmt.decorator_list:
        if isinstance(dec, ast.Attribute) and dec.attr in (
            "setter", "getter", "deleter", "register",
        ):
            return True
        if isinstance(dec, ast.Name) and dec.id in ("property", "overload"):
            return True
    return False


def lint_file(path):
    findings = []
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append("%s:%s: E999 %s" % (path, exc.lineno, exc.msg))
        return findings
    check_unused_imports(path, tree, source, findings)
    check_duplicate_dict_keys(path, tree, findings)
    check_redefinitions(path, tree, findings)
    return findings


def try_real_linter(paths):
    """Delegate to ruff/pyflakes when available; ``None`` when not."""
    for cmd in (["ruff", "check"], [sys.executable, "-m", "pyflakes"]):
        probe = cmd[0] if cmd[0] != sys.executable else "pyflakes"
        try:
            if probe == "pyflakes":
                __import__("pyflakes")
            else:
                subprocess.run([probe, "--version"], capture_output=True,
                               check=True)
        except Exception:
            continue
        proc = subprocess.run(cmd + list(paths))
        return proc.returncode
    return None


def main(argv):
    paths = [p for p in argv[1:] if not p.startswith("-")]
    if not paths:
        paths = [p for p in DEFAULT_PATHS if os.path.exists(p)]
    if "--bundled" not in argv:
        rc = try_real_linter(paths)
        if rc is not None:
            return rc
    findings = []
    n_files = 0
    for path in iter_py_files(paths):
        n_files += 1
        findings.extend(lint_file(path))
    for line in findings:
        print(line)
    print("lint: %d file(s), %d finding(s)" % (n_files, len(findings)),
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
