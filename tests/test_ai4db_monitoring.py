"""Tests for learned monitoring: forecasting, perf pred, root cause, audit."""

import numpy as np
import pytest

from repro.ai4db.monitoring.activity_monitor import (
    BanditAuditPolicy,
    RandomAuditPolicy,
    RoundRobinAuditPolicy,
    run_audit_simulation,
)
from repro.ai4db.monitoring.forecast import (
    AutoregressiveForecaster,
    EnsembleForecaster,
    MovingAverageForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
    evaluate_forecasters,
)
from repro.ai4db.monitoring.perf_pred import (
    ConcurrentWorkloadGenerator,
    GraphEmbeddingPredictor,
    PlanOnlyPredictor,
)
from repro.ai4db.monitoring.root_cause import (
    ClusterDiagnoser,
    RuleBasedDiagnoser,
)
from repro.common import ModelError, NotFittedError
from repro.engine.telemetry import ACTIVITY_TYPES, arrival_trace, kpi_episodes
from repro.ml import accuracy, mean_absolute_error


class TestForecasters:
    @pytest.fixture(scope="class")
    def series(self):
        counts, __ = arrival_trace(n_hours=24 * 21, burst_prob=0.01, seed=0)
        return counts

    def test_naive_predicts_last(self, series):
        pred = NaiveForecaster().fit(series).predict(series, horizon=3)
        assert np.all(pred == series[-1])

    def test_seasonal_naive_one_day_back(self, series):
        pred = SeasonalNaiveForecaster(season=24).predict(series, horizon=1)
        assert pred[0] == series[-24]

    def test_moving_average_window(self, series):
        pred = MovingAverageForecaster(window=12).predict(series, horizon=1)
        assert pred[0] == pytest.approx(series[-12:].mean())

    def test_ar_beats_naive_on_diurnal_series(self, series):
        results = evaluate_forecasters(
            series, [NaiveForecaster(), AutoregressiveForecaster()]
        )
        assert results["autoregressive"]["mae"] < results["naive"]["mae"]

    def test_ensemble_reasonable(self, series):
        results = evaluate_forecasters(
            series, [SeasonalNaiveForecaster(), EnsembleForecaster()]
        )
        assert results["ensemble"]["mae"] <= results["seasonal-naive"]["mae"]

    def test_ar_multistep_nonnegative(self, series):
        forecaster = AutoregressiveForecaster().fit(series)
        pred = forecaster.predict(series, horizon=48)
        assert len(pred) == 48
        assert np.all(pred >= 0)

    def test_ar_short_series_rejected(self):
        with pytest.raises(ModelError):
            AutoregressiveForecaster().fit(np.ones(50))

    def test_ar_unfitted_rejected(self, series):
        with pytest.raises(NotFittedError):
            AutoregressiveForecaster().predict(series)


class TestPerfPrediction:
    @pytest.fixture(scope="class")
    def dataset(self):
        gen = ConcurrentWorkloadGenerator(seed=1, memory_budget=2.0)
        return gen.generate_dataset(n_mixes=80)

    def test_generator_shapes(self, dataset):
        g, feats, lat = dataset[0]
        assert feats.shape[0] == g.number_of_nodes() == len(lat)
        assert feats.shape[1] == 4

    def test_latencies_positive(self, dataset):
        for __, ___, lat in dataset:
            assert np.all(lat > 0)

    def test_graph_beats_plan_only(self, dataset):
        split = 64
        plan_only = PlanOnlyPredictor(epochs=80, seed=0).fit(dataset[:split])
        graph = GraphEmbeddingPredictor(epochs=120, seed=0).fit(dataset[:split])
        def err(model):
            return float(np.mean([
                mean_absolute_error(y, model.predict(g, f))
                for g, f, y in dataset[split:]
            ]))
        assert err(graph) < err(plan_only)

    def test_predictions_positive(self, dataset):
        model = PlanOnlyPredictor(epochs=30, seed=0).fit(dataset[:40])
        g, f, __ = dataset[50]
        assert np.all(model.predict(g, f) > 0)


class TestRootCause:
    @pytest.fixture(scope="class")
    def episodes(self):
        return kpi_episodes(n_episodes=240, seed=0)

    def test_cluster_diagnoser_beats_rules(self, episodes):
        X, labels = episodes
        split = 160
        diagnoser = ClusterDiagnoser(seed=0).fit(X[:split],
                                                 lambda i: labels[i])
        y_true = np.array(labels[split:], dtype=object)
        cluster_acc = accuracy(
            y_true, np.array(diagnoser.diagnose_batch(X[split:]), dtype=object)
        )
        rules_acc = accuracy(
            y_true,
            np.array(RuleBasedDiagnoser().diagnose_batch(X[split:]),
                     dtype=object),
        )
        assert cluster_acc > rules_acc

    def test_label_budget_bounded(self, episodes):
        X, labels = episodes
        diagnoser = ClusterDiagnoser(labels_per_cluster=2, seed=0)
        diagnoser.fit(X[:150], lambda i: labels[i])
        assert diagnoser.labels_used_ <= 2 * diagnoser.n_clusters

    def test_new_cluster_rate_detects_novelty(self, episodes):
        X, labels = episodes
        diagnoser = ClusterDiagnoser(seed=0).fit(X[:150], lambda i: labels[i])
        known = diagnoser.new_cluster_rate(X[150:], distance_threshold=0.6)
        novel = diagnoser.new_cluster_rate(
            np.ones((20, X.shape[1])) * 5.0, distance_threshold=0.6
        )
        assert novel > known

    def test_unfitted_raises(self, episodes):
        X, __ = episodes
        with pytest.raises(NotFittedError):
            ClusterDiagnoser().diagnose_batch(X[:3])

    def test_rules_return_known_causes(self, episodes):
        X, __ = episodes
        from repro.engine.telemetry import ROOT_CAUSES
        for cause in RuleBasedDiagnoser().diagnose_batch(X[:20]):
            assert cause in ROOT_CAUSES


class TestActivityMonitor:
    def test_bandits_beat_random(self):
        means = np.array([m for __, m in ACTIVITY_TYPES])
        random_result = run_audit_simulation(
            RandomAuditPolicy(seed=0), means, n_steps=1200, seed=1
        )
        for kind in ("ucb", "thompson"):
            bandit_result = run_audit_simulation(
                BanditAuditPolicy(kind, seed=0), means, n_steps=1200, seed=1
            )
            assert bandit_result["captured"] > random_result["captured"]

    def test_round_robin_covers_all_arms(self):
        policy = RoundRobinAuditPolicy(n_arms=4)
        assert [policy.select() for __ in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_regret_consistency(self):
        means = np.array([m for __, m in ACTIVITY_TYPES])
        result = run_audit_simulation(RandomAuditPolicy(seed=0), means,
                                      n_steps=500, seed=2)
        assert result["regret"] == pytest.approx(
            means.max() * 500 - result["captured"]
        )
        assert len(result["history"]) == 500

    def test_bad_bandit_kind(self):
        with pytest.raises(ValueError):
            BanditAuditPolicy("epsilon-decay")
