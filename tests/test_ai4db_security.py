"""Tests for learned security: injection, discovery, access control."""

import numpy as np
import pytest

from repro.ai4db.security.access_control import (
    AccessRequestGenerator,
    LearnedAccessController,
    StaticACLBaseline,
    _hidden_policy,
    false_permit_rate,
)
from repro.ai4db.security.discovery import (
    LearnedSensitiveDiscovery,
    RegexRuleDiscovery,
    SensitiveColumnGenerator,
    column_features,
    discovery_f1,
)
from repro.ai4db.security.sql_injection import (
    InjectionCorpusGenerator,
    LearnedInjectionDetector,
    SignatureRuleDetector,
    evaluate_detector,
    lexical_features,
)
from repro.ml import accuracy


class TestInjectionCorpus:
    def test_labels_and_families(self):
        gen = InjectionCorpusGenerator(seed=0)
        texts, labels, families = gen.generate(100, 50)
        assert len(texts) == 150
        assert labels.sum() == 50
        assert all(f is None for f in families[:100])
        assert all(f is not None for f in families[100:])

    def test_obfuscation_fraction(self):
        gen = InjectionCorpusGenerator(obfuscate_fraction=1.0, seed=0)
        __, ___, families = gen.generate(10, 60)
        attack_families = [f for f in families if f]
        assert all(f.endswith("+obf") for f in attack_families)

    def test_benign_statements_parse_as_sqlish(self):
        gen = InjectionCorpusGenerator(seed=1)
        texts, labels, __ = gen.generate(50, 0)
        assert all(t.upper().startswith(("SELECT", "INSERT")) for t in texts)


class TestInjectionDetectors:
    @pytest.fixture(scope="class")
    def corpus(self):
        gen = InjectionCorpusGenerator(seed=0)
        train = gen.generate(400, 200)
        test = gen.generate(200, 100)
        return train, test

    def test_rules_perfect_precision_imperfect_recall(self, corpus):
        __, (tx, ty, tf) = corpus
        r = evaluate_detector(SignatureRuleDetector(), tx, ty, tf)
        assert r["precision"] > 0.95
        assert r["recall"] < 1.0

    def test_learned_beats_rules_on_recall(self, corpus):
        (trx, trl, __), (tx, ty, tf) = corpus
        detector = LearnedInjectionDetector("tree", seed=0).fit(trx, trl)
        learned = evaluate_detector(detector, tx, ty, tf)
        rules = evaluate_detector(SignatureRuleDetector(), tx, ty, tf)
        assert learned["recall"] > rules["recall"]
        assert learned["precision"] > 0.9

    def test_learned_catches_obfuscated(self, corpus):
        (trx, trl, __), (tx, ty, tf) = corpus
        detector = LearnedInjectionDetector("logistic", seed=0).fit(trx, trl)
        r = evaluate_detector(detector, tx, ty, tf)
        obf = [v for k, v in r["family_recall"].items()
               if k.endswith("+obf")]
        assert float(np.mean(obf)) > 0.8

    def test_lexical_features_fixed_length(self):
        a = lexical_features("SELECT 1")
        b = lexical_features("SELECT * FROM t WHERE x = 'y' OR 1=1 -- ")
        assert a.shape == b.shape

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LearnedInjectionDetector("svm")


class TestSensitiveDiscovery:
    @pytest.fixture(scope="class")
    def columns(self):
        gen = SensitiveColumnGenerator(seed=0)
        train = gen.generate(120)
        test = gen.generate(60)
        return train, test

    def test_ground_truth_fractions(self, columns):
        (names, values, labels, kinds), __ = columns
        assert 0.2 < labels.mean() < 0.7

    def test_learned_beats_name_rules(self, columns):
        (n1, v1, l1, __), (n2, v2, l2, ___) = columns
        learned = LearnedSensitiveDiscovery(seed=0).fit(n1, v1, l1)
        __, ___, f1_learned = discovery_f1(learned, n2, v2, l2)
        __, ___, f1_rules = discovery_f1(RegexRuleDiscovery(), n2, v2, l2)
        assert f1_learned > f1_rules

    def test_rules_fooled_by_neutral_names(self):
        rules = RegexRuleDiscovery()
        # sensitive content hidden behind a neutral name
        preds = rules.predict(["field_3"], [["123-45-6789"]])
        assert preds[0] == 0

    def test_learned_sees_content(self, columns):
        (n1, v1, l1, __), ___ = columns
        learned = LearnedSensitiveDiscovery(seed=0).fit(n1, v1, l1)
        ssn_values = ["%03d-%02d-%04d" % (i + 1, 12, 3456) for i in range(40)]
        pred = learned.predict(["field_99"], [ssn_values])
        assert pred[0] == 1

    def test_column_features_shape_stable(self):
        a = column_features("email", ["x@y.com"] * 5)
        b = column_features("qty", ["5", "7"])
        assert a.shape == b.shape


class TestAccessControl:
    @pytest.fixture(scope="class")
    def requests(self):
        gen = AccessRequestGenerator(seed=0, label_noise=0.0)
        return gen.generate(1500), gen.generate(500)

    def test_hidden_policy_examples(self):
        assert _hidden_policy("admin", "delete", "ad_hoc", "pii", False, True)
        assert not _hidden_policy("marketing", "export", "campaign", "pii",
                                  False, False)
        assert _hidden_policy("support", "read", "support_ticket", "pii",
                              False, False)
        assert not _hidden_policy("support", "read", "support_ticket", "pii",
                                  True, False)

    def test_learned_beats_static_acl(self, requests):
        (req_tr, y_tr), (req_te, y_te) = requests
        acl = StaticACLBaseline().fit(req_tr, y_tr)
        learned = LearnedAccessController(seed=0).fit(req_tr, y_tr)
        assert accuracy(y_te, learned.predict(req_te)) > accuracy(
            y_te, acl.predict(req_te)
        )

    def test_learned_low_false_permits(self, requests):
        (req_tr, y_tr), (req_te, y_te) = requests
        learned = LearnedAccessController(seed=0).fit(req_tr, y_tr)
        assert false_permit_rate(y_te, learned.predict(req_te)) < 0.08

    def test_static_acl_blind_to_context(self, requests):
        (req_tr, y_tr), __ = requests
        acl = StaticACLBaseline().fit(req_tr, y_tr)
        base = ("support", "read", "support_ticket", "pii", False, False)
        off_hours = ("support", "read", "support_ticket", "pii", True, False)
        # Same (role, action) -> same decision, even though policy differs.
        assert acl.predict([base])[0] == acl.predict([off_hours])[0]

    def test_false_permit_rate_no_denies(self):
        assert false_permit_rate([1, 1], [1, 1]) == 0.0
