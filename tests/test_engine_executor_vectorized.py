"""Differential tests: vectorized + parallel executors vs. the row interpreter.

Every plan shape runs in every mode on seeded data; all modes must return
identical rows *in identical order* and charge identical
``work``/``operator_work`` (the work-parity invariant that keeps
"cost gap == misestimation damage" true regardless of executor mode).
Parallel runs use a deliberately tiny morsel size so the worker pool is
actually exercised on these small fixtures.
"""

import numpy as np
import pytest

from repro.common import ExecutionError
from repro.engine import Database, datagen, plans as P
from repro.engine.catalog import Catalog
from repro.engine.executor import EXECUTOR_MODES, Executor, count_join_rows
from repro.engine.plans import operator_counts
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate


def _approx_rows(rows):
    """Rows with floats wrapped for tolerant comparison (sum order differs)."""
    return [
        tuple(
            pytest.approx(v, rel=1e-9, abs=1e-12) if isinstance(v, float) else v
            for v in row
        )
        for row in rows
    ]


#: Executor kwargs that force morsel splitting on small test fixtures.
PARALLEL_KWARGS = {"morsel_rows": 64, "n_workers": 3}


def run_both(catalog, plan, cost_model=None):
    """Execute ``plan`` in every mode, assert parity, return the results."""
    results = {}
    for mode in EXECUTOR_MODES:
        kwargs = PARALLEL_KWARGS if mode == "parallel" else {}
        ex = Executor(catalog, cost_model, mode=mode, **kwargs)
        results[mode] = ex.execute(plan)
    row_res = results["row"]
    approx = _approx_rows(row_res.rows)
    for mode in EXECUTOR_MODES:
        if mode == "row":
            continue
        res = results[mode]
        assert res.columns == row_res.columns, mode
        assert res.rows == approx, mode
        assert res.work == row_res.work, mode
        assert res.operator_work == row_res.operator_work, mode
    return row_res, results["vectorized"]


@pytest.fixture
def diff_catalog():
    """Two seeded random tables with known join structure plus a tiny lookup."""
    rng = np.random.default_rng(7)
    catalog = Catalog()
    n = 500
    left = catalog.create_table(
        "l", [("id", "INT"), ("k", "INT"), ("v", "FLOAT"), ("tag", "TEXT")]
    )
    left.insert_rows(
        (
            i,
            int(rng.integers(0, 40)),
            float(rng.normal()),
            "tag%d" % rng.integers(0, 5),
        )
        for i in range(n)
    )
    right = catalog.create_table("r", [("k", "INT"), ("w", "INT")])
    right.insert_rows(
        (int(rng.integers(0, 40)), int(rng.integers(0, 1000)))
        for __ in range(300)
    )
    catalog.analyze()
    return catalog


def seq(table, predicates=()):
    return P.SeqScan(table, list(predicates))


class TestScans:
    def test_seqscan_plain(self, diff_catalog):
        run_both(diff_catalog, seq("l"))

    def test_seqscan_predicates(self, diff_catalog):
        plan = seq("l", [Predicate("l", "k", "<", 20),
                         Predicate("l", "tag", "=", "tag2")])
        row_res, vec_res = run_both(diff_catalog, plan)
        assert len(vec_res.rows) > 0

    def test_seqscan_text_inequality(self, diff_catalog):
        run_both(diff_catalog, seq("l", [Predicate("l", "tag", ">=", "tag3")]))

    def test_seqscan_empty_match(self, diff_catalog):
        row_res, vec_res = run_both(
            diff_catalog, seq("l", [Predicate("l", "k", ">", 10**6)])
        )
        assert vec_res.rows == []

    @pytest.mark.parametrize("op", ["=", "<", "<=", ">", ">="])
    def test_btree_indexscan(self, diff_catalog, op):
        diff_catalog.create_index("idx_lk", "l", "k")
        plan = P.IndexScan("l", "idx_lk", Predicate("l", "k", op, 17),
                           residual=[Predicate("l", "v", ">", 0.0)])
        run_both(diff_catalog, plan)

    def test_hash_indexscan_equality(self, diff_catalog):
        diff_catalog.create_index("hidx_lk", "l", "k", kind="hash")
        plan = P.IndexScan("l", "hidx_lk", Predicate("l", "k", "=", 3),
                           residual=[])
        run_both(diff_catalog, plan)

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_hash_index_inequality_raises(self, diff_catalog, mode):
        """Regression: hash probes stay equality-only in every mode."""
        diff_catalog.create_index("hidx2", "l", "k", kind="hash")
        plan = P.IndexScan("l", "hidx2", Predicate("l", "k", "<", 3),
                           residual=[])
        ex = Executor(diff_catalog, mode=mode)
        with pytest.raises(ExecutionError):
            ex.execute(plan)

    def test_emptyresult(self, diff_catalog):
        row_res, vec_res = run_both(
            diff_catalog, P.EmptyResult([("l", "id"), ("l", "k")])
        )
        assert vec_res.rows == []


class TestJoins:
    def _edge(self):
        return [JoinEdge("l", "k", "r", "k")]

    def test_hash_join(self, diff_catalog):
        plan = P.HashJoin(seq("l"), seq("r"), self._edge())
        row_res, vec_res = run_both(diff_catalog, plan)
        assert len(vec_res.rows) > len(vec_res.columns)

    def test_hash_join_reversed_edge_orientation(self, diff_catalog):
        plan = P.HashJoin(seq("r"), seq("l"), self._edge())
        run_both(diff_catalog, plan)

    def test_nested_loop_join(self, diff_catalog):
        plan = P.NestedLoopJoin(
            seq("l", [Predicate("l", "k", "<", 6)]),
            seq("r", [Predicate("r", "k", "<", 6)]),
            self._edge(),
        )
        run_both(diff_catalog, plan)

    def test_cross_join(self, diff_catalog):
        plan = P.CrossJoin(
            seq("l", [Predicate("l", "id", "<", 15)]),
            seq("r", [Predicate("r", "w", "<", 80)]),
        )
        run_both(diff_catalog, plan)

    def test_join_with_empty_side(self, diff_catalog):
        plan = P.HashJoin(
            seq("l", [Predicate("l", "k", ">", 10**6)]), seq("r"), self._edge()
        )
        row_res, vec_res = run_both(diff_catalog, plan)
        assert vec_res.rows == []


class TestShaping:
    def test_filter(self, diff_catalog):
        plan = P.Filter(seq("l"), [Predicate("l", "v", "<", 0.5)])
        run_both(diff_catalog, plan)

    def test_project(self, diff_catalog):
        plan = P.Project(seq("l"), [("l", "tag"), ("l", "k")], distinct=False)
        run_both(diff_catalog, plan)

    def test_project_distinct_first_occurrence_order(self, diff_catalog):
        plan = P.Project(seq("l"), [("l", "tag")], distinct=True)
        row_res, vec_res = run_both(diff_catalog, plan)
        assert len(vec_res.rows) == 5  # 5 distinct tags, appearance order

    def test_project_distinct_multicolumn(self, diff_catalog):
        plan = P.Project(seq("l"), [("l", "tag"), ("l", "k")], distinct=True)
        run_both(diff_catalog, plan)

    def test_group_by_aggregates(self, diff_catalog):
        plan = P.HashAggregate(
            seq("l"),
            group_by=[("l", "tag")],
            aggregates=[
                Aggregate("count"),
                Aggregate("sum", "l", "k"),
                Aggregate("avg", "l", "v"),
                Aggregate("min", "l", "v"),
                Aggregate("max", "l", "k"),
            ],
        )
        run_both(diff_catalog, plan)

    def test_group_by_text_minmax(self, diff_catalog):
        plan = P.HashAggregate(
            seq("l"),
            group_by=[("l", "k")],
            aggregates=[Aggregate("min", "l", "tag"),
                        Aggregate("max", "l", "tag")],
        )
        run_both(diff_catalog, plan)

    def test_global_aggregate(self, diff_catalog):
        plan = P.HashAggregate(
            seq("l"),
            group_by=[],
            aggregates=[Aggregate("count"), Aggregate("sum", "l", "v"),
                        Aggregate("min", "l", "k")],
        )
        row_res, vec_res = run_both(diff_catalog, plan)
        assert len(vec_res.rows) == 1

    def test_global_aggregate_empty_input(self, diff_catalog):
        plan = P.HashAggregate(
            seq("l", [Predicate("l", "k", ">", 10**6)]),
            group_by=[],
            aggregates=[Aggregate("count"), Aggregate("sum", "l", "v")],
        )
        row_res, vec_res = run_both(diff_catalog, plan)
        assert vec_res.rows == [(0, None)]

    def test_group_by_empty_input(self, diff_catalog):
        plan = P.HashAggregate(
            seq("l", [Predicate("l", "k", ">", 10**6)]),
            group_by=[("l", "tag")],
            aggregates=[Aggregate("count")],
        )
        row_res, vec_res = run_both(diff_catalog, plan)
        assert vec_res.rows == []

    @pytest.mark.parametrize("descending", [False, True])
    def test_sort_stable_with_duplicates(self, diff_catalog, descending):
        # k has heavy duplication: ties must keep input order in both modes.
        plan = P.Sort(seq("l"), key=("l", "k"), descending=descending)
        run_both(diff_catalog, plan)

    @pytest.mark.parametrize("descending", [False, True])
    def test_sort_text_key(self, diff_catalog, descending):
        plan = P.Sort(seq("l"), key=("l", "tag"), descending=descending)
        run_both(diff_catalog, plan)

    def test_limit_without_sort(self, diff_catalog):
        plan = P.Limit(seq("l"), 7)
        row_res, vec_res = run_both(diff_catalog, plan)
        assert len(vec_res.rows) == 7

    def test_limit_larger_than_input(self, diff_catalog):
        plan = P.Limit(seq("l", [Predicate("l", "k", "=", 0)]), 10**6)
        run_both(diff_catalog, plan)

    def test_deep_composed_plan(self, diff_catalog):
        plan = P.Limit(
            P.Sort(
                P.HashAggregate(
                    P.Filter(
                        P.HashJoin(seq("l"), seq("r"),
                                   [JoinEdge("l", "k", "r", "k")]),
                        [Predicate("r", "w", "<", 700)],
                    ),
                    group_by=[("l", "tag")],
                    aggregates=[Aggregate("count"), Aggregate("sum", "r", "w")],
                ),
                key=("agg", "count_0"),
                descending=True,
            ),
            3,
        )
        run_both(diff_catalog, plan)


class TestSqlLevelDifferential:
    """Planner-produced plans over realistic schemas, both modes."""

    def _dual_dbs(self, build):
        dbs = {}
        for mode in EXECUTOR_MODES:
            kwargs = {}
            if mode == "parallel":
                kwargs = {
                    "morsel_rows": PARALLEL_KWARGS["morsel_rows"],
                    "parallel_workers": PARALLEL_KWARGS["n_workers"],
                }
            db = Database(executor_mode=mode, **kwargs)
            build(db)
            dbs[mode] = db
        return dbs

    @staticmethod
    def _assert_workload_parity(dbs, queries):
        for q in queries:
            res_r = dbs["row"].run_query_object(q)
            approx = _approx_rows(res_r.rows)
            for mode in EXECUTOR_MODES:
                if mode == "row":
                    continue
                res = dbs[mode].run_query_object(q)
                assert res.rows == approx, mode
                assert res.work == res_r.work, mode
                assert res.operator_work == res_r.operator_work, mode

    def test_star_workload_parity(self):
        def build(db):
            datagen.make_star_schema(
                db.catalog, n_customers=300, n_products=60, n_dates=60,
                n_sales=3000, seed=0,
            )

        dbs = self._dual_dbs(build)
        self._assert_workload_parity(
            dbs, datagen.star_workload(n_queries=12, seed=1)
        )

    def test_clique_workload_parity(self):
        schema = {}

        def build(db):
            names, edges = datagen.make_join_graph_schema(
                db.catalog, "clique", n_tables=4, rows_per_table=200,
                seed=11, prefix="n", correlated=True,
            )
            schema["names"], schema["edges"] = names, edges

        dbs = self._dual_dbs(build)
        queries = datagen.join_graph_workload(
            schema["names"], schema["edges"], n_queries=8, seed=12,
            min_tables=3,
        )
        self._assert_workload_parity(dbs, queries)

    def test_view_scan_parity(self):
        from repro.ai4db.config.view_advisor import (
            enumerate_view_candidates,
            materialize_view,
        )

        db = Database()
        datagen.make_star_schema(
            db.catalog, n_customers=300, n_products=60, n_dates=60,
            n_sales=3000, seed=0,
        )
        workload = datagen.star_workload(n_queries=12, seed=1)
        cand = enumerate_view_candidates(workload)[0]
        materialize_view(db, cand)
        q = next(
            q for q in workload
            if {t.lower() for t in q.tables}
            == {t.lower() for t in cand.query.tables}
        )
        plan = db.planner.plan(q)
        assert any(isinstance(n, P.ViewScan) for n in plan.walk())
        run_both(db.catalog, plan, db.cost_model)


class TestModePlumbing:
    def test_invalid_mode_rejected(self, diff_catalog):
        with pytest.raises(ExecutionError):
            Executor(diff_catalog, mode="gpu")

    def test_database_default_is_vectorized(self):
        assert Database().executor.mode == "vectorized"

    def test_env_var_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_MODE", "row")
        assert Database().executor.mode == "row"

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_MODE", "row")
        assert Database(executor_mode="vectorized").executor.mode == "vectorized"


class TestTelemetry:
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_batches_match_plan_shape(self, diff_catalog, mode):
        plan = P.Limit(
            P.Sort(
                P.HashJoin(seq("l"), seq("r"), [JoinEdge("l", "k", "r", "k")]),
                key=("l", "id"),
                descending=False,
            ),
            5,
        )
        res = Executor(diff_catalog, mode=mode).execute(plan)
        tel = res.telemetry
        assert tel.mode == mode
        assert {k: v["batches"] for k, v in tel.operators.items()} == \
            operator_counts(plan)
        assert tel.total_seconds > 0
        assert all(v["seconds"] >= 0 for v in tel.operators.values())
        summary = tel.summary()
        assert summary["mode"] == mode
        assert set(summary["operators"]) == set(operator_counts(plan))

    def test_rows_counted(self, diff_catalog):
        res = Executor(diff_catalog).execute(seq("l"))
        assert res.telemetry.operators["SeqScan"]["rows"] == 500


class TestCountJoinRowsVectorized:
    def test_matches_executed_join(self, diff_catalog):
        q = ConjunctiveQuery(
            tables=["l", "r"],
            join_edges=[JoinEdge("l", "k", "r", "k")],
            predicates=[Predicate("r", "w", "<", 500)],
        )
        plan = P.HashJoin(seq("l"), seq("r", q.predicates), q.join_edges)
        executed = Executor(diff_catalog).execute(plan)
        assert count_join_rows(diff_catalog, q, q.tables) == len(executed.rows)

    def test_single_table_filter(self, diff_catalog):
        q = ConjunctiveQuery(
            tables=["l"], predicates=[Predicate("l", "k", "<", 10)]
        )
        truth = int(np.sum(diff_catalog.table("l").column_array("k") < 10))
        assert count_join_rows(diff_catalog, q, ["l"]) == truth
