"""Tests for learned configuration: tuners, advisors, rewriter, partitioner."""

import numpy as np
import pytest

from repro.ai4db.config.index_advisor import (
    ClassifierIndexAdvisor,
    GreedyIndexAdvisor,
    IndexCandidate,
    RLIndexAdvisor,
    enumerate_index_candidates,
    realize_indexes,
    workload_cost,
)
from repro.ai4db.config.knob_tuning import (
    BayesianOptimizationTuner,
    CDBTuneLite,
    DefaultConfigTuner,
    GridSearchTuner,
    QTuneLite,
    RandomSearchTuner,
    run_tuning_session,
)
from repro.ai4db.config.partitioner import (
    HeuristicPartitioner,
    PartitioningCostModel,
    RLPartitioner,
)
from repro.ai4db.config.sql_rewriter import (
    FixedOrderRewriter,
    LearnedRewriter,
    make_rewrite_corpus,
    plan_cost,
    rewrite_benefit,
)
from repro.ai4db.config.view_advisor import (
    GreedyViewAdvisor,
    RLViewAdvisor,
    enumerate_view_candidates,
    materialize_view,
    workload_cost_with_views,
)
from repro.engine import Database, datagen
from repro.engine.knobs import KnobResponseSimulator, standard_workloads


@pytest.fixture(scope="module")
def sim():
    return KnobResponseSimulator(seed=7, noise=0.0)


class TestKnobTuners:
    def test_default_uses_one_observation(self, sim):
        result = DefaultConfigTuner().tune(sim, standard_workloads()[0], 10)
        assert result.evaluations == 1

    def test_budgets_respected(self, sim):
        wl = standard_workloads()[0]
        for tuner in (RandomSearchTuner(seed=0), GridSearchTuner(),
                      BayesianOptimizationTuner(seed=0)):
            sim.evaluations = 0
            tuner.tune(sim, wl, 25)
            assert sim.evaluations <= 25

    def test_random_improves_over_default(self, sim):
        wl = standard_workloads()[0]
        default = DefaultConfigTuner().tune(sim, wl, 1).best_throughput
        random = RandomSearchTuner(seed=0).tune(sim, wl, 60).best_throughput
        assert random > default

    def test_bo_beats_random_at_equal_budget(self, sim):
        wl = standard_workloads()[1]
        random = RandomSearchTuner(seed=1).tune(sim, wl, 50).best_throughput
        bo = BayesianOptimizationTuner(seed=1).tune(sim, wl, 50).best_throughput
        assert bo >= random * 0.95  # BO should be at least competitive

    def test_best_so_far_monotone(self, sim):
        wl = standard_workloads()[0]
        result = RandomSearchTuner(seed=0).tune(sim, wl, 30)
        curve = result.best_so_far()
        assert np.all(np.diff(curve) >= 0)

    def test_pretrained_cdbtune_exploits_immediately(self):
        sim = KnobResponseSimulator(seed=7, noise=0.0)
        wls = standard_workloads()
        tuner = CDBTuneLite(seed=0)
        tuner.pretrain(sim, wls, budget_per_workload=120, rounds=2)
        default = DefaultConfigTuner().tune(sim, wls[0], 1).best_throughput
        result = tuner.tune(sim, wls[0], 15)
        assert result.best_throughput > default * 1.1

    def test_qtune_state_includes_workload(self):
        tuner = QTuneLite(seed=0)
        sim = KnobResponseSimulator(seed=0)
        state = tuner._state(sim, sim.default_vector(),
                             standard_workloads()[0])
        assert state.shape == (9,)

    def test_run_session_resets_counter(self, sim):
        wl = standard_workloads()[0]
        results = run_tuning_session(
            [RandomSearchTuner(seed=0), GridSearchTuner()], sim, wl, 20
        )
        assert set(results) == {"random", "grid"}


class TestIndexAdvisor:
    def test_candidate_enumeration_dedupes(self, star_workload):
        candidates = enumerate_index_candidates(star_workload)
        keys = [c.key() for c in candidates]
        assert len(keys) == len(set(keys))
        assert all(isinstance(c, IndexCandidate) for c in candidates)

    def test_greedy_reduces_cost(self, star_db, star_workload):
        base = workload_cost(star_db.catalog, star_workload)
        picks, cost = GreedyIndexAdvisor().recommend(
            star_db.catalog, star_workload, budget=2
        )
        assert cost <= base
        assert len(picks) <= 2
        # No hypothetical indexes left behind.
        assert all(not i.hypothetical for i in star_db.catalog.indexes())

    def test_greedy_stops_when_no_benefit(self, star_db):
        # Workload with no filter predicates -> no useful indexes.
        from repro.engine.query import Aggregate, ConjunctiveQuery

        workload = [ConjunctiveQuery(tables=["customer"],
                                     aggregates=[Aggregate("count")])]
        picks, __ = GreedyIndexAdvisor().recommend(star_db.catalog, workload,
                                                   budget=3)
        assert picks == []

    def test_rl_matches_greedy_cost(self, star_db, star_workload):
        __, greedy_cost = GreedyIndexAdvisor().recommend(
            star_db.catalog, star_workload, budget=2
        )
        __, rl_cost = RLIndexAdvisor(episodes=60, seed=0).recommend(
            star_db.catalog, star_workload, budget=2
        )
        assert rl_cost <= greedy_cost * 1.1

    def test_classifier_workflow(self, star_db, star_workload):
        train = [datagen.star_workload(n_queries=10, seed=s) for s in (5, 6)]
        advisor = ClassifierIndexAdvisor(seed=0).fit(star_db.catalog, train)
        picks, cost = advisor.recommend(star_db.catalog, star_workload,
                                        budget=2)
        base = workload_cost(star_db.catalog, star_workload)
        assert cost <= base * 1.01

    def test_classifier_unfitted_raises(self, star_db, star_workload):
        with pytest.raises(RuntimeError):
            ClassifierIndexAdvisor().recommend(star_db.catalog,
                                               star_workload, 2)

    def test_realize_indexes_builds_real_structures(self, star_db,
                                                    star_workload):
        picks, __ = GreedyIndexAdvisor().recommend(
            star_db.catalog, star_workload, budget=1
        )
        built = realize_indexes(star_db.catalog, picks)
        for idx in built:
            assert not idx.hypothetical
            assert idx.structure is not None


class TestViewAdvisor:
    def test_candidates_require_frequency(self, star_workload):
        candidates = enumerate_view_candidates(star_workload,
                                               min_frequency=2)
        assert all(c.frequency >= 2 for c in candidates)

    def test_materialize_registers_view(self, star_db, star_workload):
        cand = enumerate_view_candidates(star_workload)[0]
        view = materialize_view(star_db, cand)
        assert view.n_rows > 0
        assert view.name in [v.name for v in star_db.catalog.views()]

    def test_greedy_respects_budget(self, star_db, star_workload):
        chosen, cost = GreedyViewAdvisor().recommend(
            star_db, star_workload, space_budget_bytes=10_000_000
        )
        used = star_db.catalog.view_size_total()
        assert used <= 10_000_000

    def test_greedy_improves_cost(self, star_db, star_workload):
        base = workload_cost_with_views(star_db, star_workload, [])
        __, cost = GreedyViewAdvisor().recommend(
            star_db, star_workload, space_budget_bytes=100_000_000
        )
        assert cost < base

    def test_rl_improves_cost(self, star_db, star_workload):
        base = workload_cost_with_views(star_db, star_workload, [])
        __, cost = RLViewAdvisor(episodes=40, seed=0).recommend(
            star_db, star_workload, space_budget_bytes=100_000_000
        )
        assert cost <= base

    def test_zero_budget_chooses_nothing(self, star_db, star_workload):
        chosen, __ = GreedyViewAdvisor().recommend(
            star_db, star_workload, space_budget_bytes=0
        )
        assert chosen == []


class TestSQLRewriter:
    @pytest.fixture
    def rewrite_setup(self):
        db = Database()
        names, __ = datagen.make_join_graph_schema(
            db.catalog, "star", n_tables=3, rows_per_table=500, seed=0,
            prefix="rw_",
        )
        corpus = make_rewrite_corpus(
            db.catalog, names[1], [(names[0], "fk", "id")], None,
            n_queries=8, n_values=200, seed=1,
        )
        return db, corpus

    def test_fixed_order_rarely_hurts(self, rewrite_setup):
        # The traditional rewriter has no cost validation — the tutorial's
        # point is that fixed-order application "may derive suboptimal
        # queries". Allow tiny regressions but no large ones.
        db, corpus = rewrite_setup
        rewriter = FixedOrderRewriter()
        for q in corpus:
            out, __ = rewriter.rewrite(q, db.catalog)
            assert plan_cost(db.catalog, out) <= plan_cost(db.catalog, q) * 1.05

    def test_learned_never_worse_than_input(self, rewrite_setup):
        db, corpus = rewrite_setup
        rewriter = LearnedRewriter(n_iterations=30, seed=0)
        for q in corpus:
            out, __ = rewriter.rewrite(q, db.catalog)
            assert plan_cost(db.catalog, out) <= plan_cost(db.catalog, q) + 1e-6

    def test_learned_at_least_matches_fixed_on_average(self, rewrite_setup):
        db, corpus = rewrite_setup
        fixed = FixedOrderRewriter()
        learned = LearnedRewriter(n_iterations=40, seed=0)
        fixed_costs, learned_costs = [], []
        for q in corpus:
            qf, __ = fixed.rewrite(q, db.catalog)
            ql, __ = learned.rewrite(q, db.catalog)
            fixed_costs.append(plan_cost(db.catalog, qf))
            learned_costs.append(plan_cost(db.catalog, ql))
        assert np.mean(learned_costs) <= np.mean(fixed_costs) * 1.05

    def test_rewrites_preserve_semantics(self, rewrite_setup):
        db, corpus = rewrite_setup
        learned = LearnedRewriter(n_iterations=30, seed=0)
        for q in corpus[:4]:
            out, __ = learned.rewrite(q, db.catalog)
            before = db.run_query_object(q).rows
            after = db.run_query_object(out).rows
            assert sorted(before) == sorted(after)

    def test_rewrite_benefit_positive_for_redundant_query(self, rewrite_setup):
        db, corpus = rewrite_setup
        fixed = FixedOrderRewriter()
        q = corpus[0]
        out, __ = fixed.rewrite(q, db.catalog)
        assert rewrite_benefit(db.catalog, q, out) >= 0.0


class TestPartitioner:
    def test_cost_model_rewards_copartitioning(self, star_db, star_workload):
        cm = PartitioningCostModel(star_db.catalog, n_nodes=4)
        co_partitioned = {"sales": "s_customer", "customer": "c_id",
                          "product": "p_id", "dates": "d_id"}
        shuffling = {"sales": "s_quantity", "customer": "c_age",
                     "product": "p_price", "dates": "d_month"}
        q = next(q for q in star_workload if len(q.tables) >= 2)
        assert cm.query_cost(q, co_partitioned) < cm.query_cost(q, shuffling)

    def test_heuristic_picks_filtered_columns(self, star_db, star_workload):
        cm = PartitioningCostModel(star_db.catalog, n_nodes=4)
        assignment, __ = HeuristicPartitioner().recommend(
            cm, ["sales", "customer"], star_workload
        )
        assert set(assignment) == {"sales", "customer"}

    def test_rl_not_worse_than_heuristic(self, star_db, star_workload):
        cm = PartitioningCostModel(star_db.catalog, n_nodes=4)
        tables = ["sales", "customer", "product", "dates"]
        __, h_cost = HeuristicPartitioner().recommend(cm, tables,
                                                      star_workload)
        __, rl_cost = RLPartitioner(episodes=100, seed=0).recommend(
            cm, tables, star_workload
        )
        assert rl_cost <= h_cost * 1.02

    def test_skew_factor_penalizes_low_cardinality(self, star_db):
        cm = PartitioningCostModel(star_db.catalog, n_nodes=4)
        # c_segment has 4 distinct values; c_id is unique.
        assert cm._skew_factor("customer", "c_segment") >= cm._skew_factor(
            "customer", "c_id"
        )
