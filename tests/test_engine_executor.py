"""Tests for the executor and Database façade, incl. order-invariance."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import CatalogError, ExecutionError, ParseError
from repro.engine import Database
from repro.engine.executor import count_join_rows
from repro.engine.query import ConjunctiveQuery, Predicate


class TestBasicExecution:
    def test_filter_semantics(self, tiny_db):
        rows = tiny_db.query("SELECT name FROM users WHERE age > 30")
        assert sorted(r[0] for r in rows) == ["carol", "erin"]

    def test_equality_on_text(self, tiny_db):
        rows = tiny_db.query("SELECT id FROM users WHERE name = 'bob'")
        assert rows == [(2,)]

    def test_join_semantics(self, tiny_db):
        rows = tiny_db.query(
            "SELECT name, amount FROM users JOIN orders ON id = user_id"
        )
        got = sorted(rows)
        assert got == [("alice", 9.5), ("alice", 20.0), ("bob", 5.25),
                       ("carol", 7.75)]

    def test_aggregates(self, tiny_db):
        assert tiny_db.query("SELECT COUNT(*) FROM users") == [(5,)]
        total = tiny_db.query("SELECT SUM(amount) FROM orders")[0][0]
        assert total == pytest.approx(43.5)
        avg_age = tiny_db.query("SELECT AVG(age) FROM users")[0][0]
        assert avg_age == pytest.approx(31.2)
        assert tiny_db.query("SELECT MIN(age), MAX(age) FROM users") == [
            (25, 41)
        ]

    def test_group_by(self, tiny_db):
        rows = tiny_db.query(
            "SELECT age, COUNT(*) FROM users GROUP BY age"
        )
        counts = dict(rows)
        assert counts[25] == 2 and counts[30] == 1

    def test_order_by_and_limit(self, tiny_db):
        rows = tiny_db.query(
            "SELECT name FROM users ORDER BY age DESC LIMIT 2"
        )
        assert rows == [("carol",), ("erin",)]

    def test_distinct(self, tiny_db):
        rows = tiny_db.query("SELECT DISTINCT age FROM users WHERE age = 25")
        assert rows == [(25,)]

    def test_empty_aggregate_count_zero(self, tiny_db):
        assert tiny_db.query(
            "SELECT COUNT(*) FROM users WHERE age > 1000"
        ) == [(0,)]

    def test_work_accounting_positive(self, tiny_db):
        result = tiny_db.execute("SELECT COUNT(*) FROM users")
        assert result.work > 0
        assert "SeqScan" in result.operator_work

    def test_insert_with_column_list_reorders(self, tiny_db):
        tiny_db.execute(
            "INSERT INTO users (age, id, name) VALUES (50, 6, 'frank')"
        )
        rows = tiny_db.query("SELECT id, name, age FROM users WHERE id = 6")
        assert rows == [(6, "frank", 50)]

    def test_insert_width_mismatch(self, tiny_db):
        with pytest.raises(ParseError):
            tiny_db.execute("INSERT INTO users (id) VALUES (1, 2)")


class TestIndexExecution:
    def test_index_scan_equals_seq_scan_results(self, star_db):
        q = "SELECT COUNT(*) FROM customer WHERE c_age < 25"
        before = star_db.query(q)
        star_db.execute("CREATE INDEX idx_ca ON customer (c_age)")
        after = star_db.query(q)
        assert before == after
        assert "IndexScan" in star_db.execute(q).operator_work

    def test_hash_index_equality_only(self, star_db):
        star_db.execute("CREATE INDEX idx_h ON customer (c_id) USING hash")
        rows = star_db.query("SELECT c_age FROM customer WHERE c_id = 5")
        assert len(rows) == 1

    def test_hypothetical_index_cannot_execute(self, star_db):
        star_db.catalog.create_index("hyp2", "customer", "c_age",
                                     hypothetical=True)
        from repro.engine.optimizer.planner import Planner

        planner = Planner(star_db.catalog, include_hypothetical=True)
        q = ConjunctiveQuery(
            tables=["customer"],
            predicates=[Predicate("customer", "c_age", "<", 20)],
        )
        plan = planner.plan(q)
        from repro.engine import plans as P

        if any(isinstance(n, P.IndexScan) for n in plan.walk()):
            with pytest.raises(ExecutionError):
                star_db.executor.execute(plan)


class TestJoinOrderInvariance:
    def test_all_orders_same_result(self, star_db, star_workload):
        """The load-bearing executor property: every join order returns the
        same multiset of rows (only work differs)."""
        from itertools import permutations

        q = next(q for q in star_workload if len(q.tables) == 3)
        results = []
        for order in permutations(q.tables):
            result = star_db.run_query_object(q, order=list(order))
            results.append(sorted(result.rows))
        for other in results[1:]:
            assert other == results[0]

    def test_view_answer_matches_base_answer(self, star_db, star_workload):
        from repro.ai4db.config.view_advisor import (
            ViewCandidate,
            enumerate_view_candidates,
            materialize_view,
        )

        candidates = enumerate_view_candidates(star_workload)
        assert candidates, "workload must contain repeated join templates"
        cand = candidates[0]
        matching = [
            q for q in star_workload
            if set(t.lower() for t in q.tables)
            == set(t.lower() for t in cand.query.tables)
        ]
        q = matching[0]
        base_result = star_db.run_query_object(q)
        materialize_view(star_db, cand)
        view_result = star_db.run_query_object(q)
        assert sorted(view_result.rows) == sorted(base_result.rows)
        assert "ViewScan" in view_result.operator_work


class TestCountJoinRows:
    def test_matches_executed_count(self, star_db, star_workload):
        for q in star_workload[:4]:
            counted = count_join_rows(star_db.catalog, q, q.tables)
            executed = star_db.run_query_object(q).rows
            # workload queries aggregate COUNT(*) first column
            assert executed[0][0] == counted

    def test_subset_counts(self, chain_catalog):
        catalog, names, edges = chain_catalog
        q = ConjunctiveQuery(
            tables=names[:3], join_edges=edges[:2],
            predicates=[Predicate(names[1], "val", "<", 100)],
        )
        single = count_join_rows(catalog, q, [names[1]])
        table = catalog.table(names[1])
        truth = int(np.sum(table.column_array("val") < 100))
        assert single == truth


class TestDatabaseFacade:
    def test_statement_hooks_take_priority(self, tiny_db):
        tiny_db.pipeline.statement_hooks.append(
            lambda db, text: "HOOKED" if text.startswith("MAGIC") else None
        )
        assert tiny_db.execute("MAGIC WORD") == "HOOKED"
        # Normal statements unaffected.
        assert tiny_db.query("SELECT COUNT(*) FROM users")[0][0] == 5

    def test_explain_does_not_execute(self, tiny_db):
        text = tiny_db.explain("SELECT name FROM users WHERE age > 30")
        assert "SeqScan" in text

    def test_explain_rejects_ddl(self, tiny_db):
        with pytest.raises(ParseError):
            tiny_db.explain("CREATE TABLE x (a INT)")

    def test_unknown_table_raises(self, tiny_db):
        with pytest.raises(CatalogError):
            tiny_db.query("SELECT a FROM nonexistent")

    def test_rewriter_hook_applied(self, tiny_db):
        calls = []

        def rewriter(query):
            calls.append(query)
            return query

        tiny_db.pipeline.rewriter = rewriter
        tiny_db.query("SELECT name FROM users")
        assert len(calls) == 1

    def test_knob_cost_params_affect_work(self):
        db_fast = Database(cost_params={"cpu_tuple_cost": 1.0})
        db_slow = Database(cost_params={"cpu_tuple_cost": 5.0})
        for db in (db_fast, db_slow):
            db.execute("CREATE TABLE t (a INT)")
            db.execute("INSERT INTO t VALUES " +
                       ", ".join("(%d)" % i for i in range(100)))
            db.execute("ANALYZE t")
        w_fast = db_fast.execute("SELECT COUNT(*) FROM t").work
        w_slow = db_slow.execute("SELECT COUNT(*) FROM t").work
        assert w_slow > w_fast


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=120),
       st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
def test_filter_agrees_with_numpy_reference(value, op):
    """Property: SQL filters agree with NumPy boolean indexing."""
    db = Database()
    db.execute("CREATE TABLE t (a INT)")
    data = list(range(0, 120, 3)) * 2
    db.execute("INSERT INTO t VALUES " + ", ".join("(%d)" % v for v in data))
    db.execute("ANALYZE t")
    rows = db.query("SELECT COUNT(*) FROM t WHERE a %s %d" % (op, value))
    arr = np.array(data)
    ops = {"<": arr < value, "<=": arr <= value, ">": arr > value,
           ">=": arr >= value, "=": arr == value, "!=": arr != value}
    assert rows[0][0] == int(ops[op].sum())
