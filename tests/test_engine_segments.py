"""Unit tests for segmented columnar storage (encodings, zone maps,
late materialization plumbing, and the modeled byte/page accounting).

The differential fuzzer asserts end-to-end parity; these tests pin the
individual contracts: every encoding round-trips exactly (including
NULLs), ``take``/``mask`` agree with the decoded flat evaluation, sealed
segments are never re-copied by later inserts, the plain-encoding byte
model reproduces the original flat numbers, ANALYZE's incremental path
matches the full-column path, and EXPLAIN ANALYZE surfaces the pruning
counters.
"""

import operator

import numpy as np
import pytest

from repro.common import ExecutionError
from repro.engine import Database
from repro.engine.operators.kernels import segment_reduce
from repro.engine.segments import (
    FULL,
    PARTIAL,
    PRUNED,
    ColumnSegment,
    choose_encoding,
)
from repro.engine.stats import ColumnStats, TableStats
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema

OPS = {
    "=": operator.eq, "!=": operator.ne,
    "<": operator.lt, "<=": operator.le,
    ">": operator.gt, ">=": operator.ge,
}


def _flat_mask(arr, op, value):
    """The unsegmented engine's predicate evaluation (scalar-collapse)."""
    m = np.asarray(OPS[op](arr, value))
    if m.ndim == 0:
        m = np.full(len(arr), bool(m))
    return m.astype(bool, copy=False)


def _cases():
    """(label, array, dtype, expected_encoding) fixtures."""
    rng = np.random.RandomState(7)
    low_card_int = rng.randint(0, 4, size=64).astype(np.int64)
    shuffled = np.arange(100, dtype=np.int64)
    rng.shuffle(shuffled)
    text = np.empty(60, dtype=object)
    text[:] = [
        None if i % 5 == 0 else "tag%d" % (i % 3) for i in range(60)
    ]
    sorted_text = np.empty(30, dtype=object)
    sorted_text[:] = ["x"] * 10 + [None] * 10 + ["y"] * 10
    nan_float = np.array([1.5, np.nan, 2.5, np.nan] * 8)
    return [
        ("dict-int", low_card_int, DataType.INT, "dict"),
        ("rle-int", np.repeat(np.arange(8, dtype=np.int64), 8),
         DataType.INT, "rle"),
        ("plain-int", shuffled, DataType.INT, "plain"),
        ("dict-text-nulls", text, DataType.TEXT, "dict"),
        ("rle-text-nulls", sorted_text, DataType.TEXT, "rle"),
        ("plain-float-nan", nan_float, DataType.FLOAT, "plain"),
    ]


class TestEncodings:
    @pytest.mark.parametrize(
        "label,arr,dtype,expected", _cases(),
        ids=[c[0] for c in _cases()],
    )
    def test_round_trip(self, label, arr, dtype, expected):
        seg = ColumnSegment.encode(arr, dtype)
        assert seg.encoding == expected
        decoded = seg.decode()
        assert decoded.dtype == arr.dtype
        if dtype is DataType.FLOAT:
            np.testing.assert_array_equal(decoded, arr)  # NaN-safe
        else:
            assert decoded.tolist() == arr.tolist()
        ids = np.array([0, len(arr) - 1, len(arr) // 2, 1], dtype=np.int64)
        np.testing.assert_array_equal(seg.take(ids), arr[ids])

    def test_forced_plain(self):
        arr = np.zeros(50, dtype=np.int64)  # would pick rle by default
        assert choose_encoding(arr, DataType.INT) == "rle"
        seg = ColumnSegment.encode(arr, DataType.INT, allowed=("plain",))
        assert seg.encoding == "plain"
        assert seg.decode().tolist() == arr.tolist()

    def test_null_counts_are_row_accurate(self):
        text = np.empty(60, dtype=object)
        text[:] = [None if i % 5 == 0 else "t%d" % (i % 3) for i in range(60)]
        dict_seg = ColumnSegment.encode(text, DataType.TEXT)
        assert dict_seg.encoding == "dict"
        assert dict_seg.zone_map.null_count == 12
        runs = np.empty(30, dtype=object)
        runs[:] = ["x"] * 10 + [None] * 10 + ["y"] * 10
        rle_seg = ColumnSegment.encode(runs, DataType.TEXT)
        assert rle_seg.encoding == "rle"
        assert rle_seg.zone_map.null_count == 10

    def test_value_counts_match_flat(self):
        for label, arr, dtype, __ in _cases():
            seg = ColumnSegment.encode(arr, dtype)
            vc = seg.value_counts()
            if label == "plain-float-nan":
                assert vc is None  # NaN makes exact counting unsound
                continue
            values, counts = vc
            assert int(counts.sum()) == len(arr), label
            flat = {}
            for v in arr.tolist():
                flat[v] = flat.get(v, 0) + 1
            assert dict(zip(values.tolist(), counts.tolist())) == flat, label


class TestZoneMaps:
    def test_int_classify(self):
        seg = ColumnSegment.encode(np.arange(10, 20, dtype=np.int64),
                                   DataType.INT)
        zone = seg.zone_map
        assert (zone.min, zone.max) == (10, 19)
        assert zone.classify("=", 30) == PRUNED
        assert zone.classify("=", 15) == PARTIAL
        assert zone.classify("!=", 30) == FULL
        assert zone.classify("<", 10) == PRUNED
        assert zone.classify("<", 25) == FULL
        assert zone.classify(">=", 10) == FULL
        assert zone.classify(">", 19) == PRUNED
        assert zone.classify(">", 15) == PARTIAL
        assert not zone.range_hazard("<", 15)

    def test_null_text_never_range_pruned(self):
        text = np.empty(20, dtype=object)
        text[:] = ["a"] * 10 + [None] * 10
        zone = ColumnSegment.encode(text, DataType.TEXT).zone_map
        assert zone.classify("=", "zzz") == PRUNED
        # A range op over NULLs raises in flat evaluation — the zone must
        # flag it hazardous and refuse to prune.
        assert zone.classify("<", "a") == PARTIAL
        assert zone.range_hazard("<", "a")

    def test_nan_bounds_disable_zone(self):
        arr = np.array([1.0, np.nan, 3.0])
        zone = ColumnSegment.encode(arr, DataType.FLOAT).zone_map
        assert zone.min is None
        assert zone.classify("=", 2.0) == PARTIAL


class TestMaskParity:
    @pytest.mark.parametrize(
        "label,arr,dtype,expected", _cases(),
        ids=[c[0] for c in _cases()],
    )
    def test_mask_equals_flat(self, label, arr, dtype, expected):
        seg = ColumnSegment.encode(arr, dtype)
        if dtype is DataType.TEXT:
            probes = [("=", "tag1"), ("!=", "tag1"), ("=", "x"),
                      ("=", "missing"), ("!=", "missing")]
        else:
            mid = float(np.nanmean(arr.astype(float)))
            probes = [(op, v) for op in OPS
                      for v in (mid, float(arr[0]), -1e9)]
        for op, value in probes:
            np.testing.assert_array_equal(
                seg.mask(op, value), _flat_mask(arr, op, value),
                err_msg="%s %s %r" % (label, op, value),
            )

    def test_range_on_nulls_raises_like_flat(self):
        text = np.empty(12, dtype=object)
        text[:] = ["a", None, "b"] * 4
        seg = ColumnSegment.encode(text, DataType.TEXT)
        with pytest.raises(TypeError):
            _flat_mask(text, "<", "b")
        with pytest.raises(TypeError):
            seg.mask("<", "b")


def _table(segment_rows=16, segment_encodings=None):
    schema = TableSchema("t", [
        ColumnSchema("a", DataType.INT),
        ColumnSchema("b", DataType.FLOAT),
        ColumnSchema("c", DataType.TEXT),
    ])
    return Table(schema, segment_rows=segment_rows,
                 segment_encodings=segment_encodings)


class TestTailSegment:
    def test_batched_inserts_do_not_recopy_sealed_segments(self):
        table = _table(segment_rows=16)
        sealed = {}
        for batch in range(10):
            rows = [(batch * 10 + i, float(i), "c%d" % (i % 3))
                    for i in range(10)]
            table.insert_rows(rows)
            groups = table.row_groups()
            tail = 1 if table.n_rows % 16 else 0
            for gi, g in enumerate(groups[: len(groups) - tail]):
                for key, seg in g.segments.items():
                    if (gi, key) in sealed:
                        # Sealing is final: later batches must reuse the
                        # very same segment objects, not re-encode them.
                        assert sealed[(gi, key)] is seg
                    else:
                        sealed[(gi, key)] = seg
        assert table.n_rows == 100
        assert table.n_segments == 7  # six sealed 16-row groups + the tail
        assert sealed  # the identity assertion actually ran
        assert table.column_array("a").tolist() == list(range(0, 100)) != []

    def test_rows_survive_sealing_boundaries(self):
        table = _table(segment_rows=16)
        expected = []
        for i in range(40):
            table.insert_rows([(i, i / 2.0, None if i % 7 == 0 else "x")])
            expected.append((i, i / 2.0, None if i % 7 == 0 else "x"))
        assert table.rows() == expected


class TestByteModel:
    """Pin the plain-encoding numbers to the original flat-layout model."""

    def test_plain_row_bytes_and_pages_pinned(self):
        table = _table(segment_rows=64, segment_encodings=("plain",))
        table.insert_rows([(i, float(i), "s%d" % i) for i in range(1000)])
        # INT(8) + FLOAT(8) + TEXT(24) per row, exactly as before
        # segmentation existed.
        assert table.row_bytes() == 40
        assert table.n_pages() == 5          # ceil(1000 / (8192 // 40))
        assert table.column_pages("a") == 1  # 8192 // 8 = 1024 rows/page
        assert table.column_pages("b") == 1
        assert table.column_pages("c") == 3  # ceil(1000 / 341)
        assert table.encoded_bytes() == 1000 * 40

    def test_empty_table_model(self):
        table = _table()
        assert table.row_bytes() == 40
        assert table.n_pages() == 0
        assert table.column_pages("a") == 0

    def test_encoding_shrinks_reported_bytes(self):
        plain = _table(segment_rows=64, segment_encodings=("plain",))
        enc = _table(segment_rows=64)
        rows = [(i % 3, float(i % 2), "const") for i in range(640)]
        plain.insert_rows(rows)
        enc.insert_rows(rows)
        assert enc.encoded_bytes() < plain.encoded_bytes()
        assert enc.column_pages("c") < plain.column_pages("c")
        assert enc.row_bytes() < plain.row_bytes()


class TestIncrementalAnalyze:
    def test_stats_match_full_column_build(self):
        table = _table(segment_rows=16)
        table.insert_rows([
            (i % 5, float(i % 7), None if i % 4 == 0 else "t%d" % (i % 3))
            for i in range(100)
        ])
        stats = TableStats.build(table)
        for col in table.schema.columns:
            via_counts = stats.column(col.name)
            flat = ColumnStats.build(
                col.name, col.dtype, table.column_array(col.name)
            )
            assert via_counts.n_rows == flat.n_rows
            assert via_counts.n_distinct == flat.n_distinct
            assert via_counts.top_values == flat.top_values
            if flat.histogram is not None:
                assert via_counts.histogram.mcv == flat.histogram.mcv
                np.testing.assert_array_equal(
                    via_counts.histogram.edges, flat.histogram.edges
                )
                np.testing.assert_array_equal(
                    via_counts.histogram.counts, flat.histogram.counts
                )

    def test_nan_float_falls_back(self):
        table = _table(segment_rows=16)
        table.insert_rows([
            (i, float("nan") if i % 9 == 0 else float(i), "x")
            for i in range(50)
        ])
        assert table.column_value_counts("b") is None
        stats = TableStats.build(table)  # must not crash
        assert stats.column("b").n_rows == 50


class TestSegmentReduce:
    """The vectorized object-dtype fallback must match the Python loop."""

    @staticmethod
    def _obj(values):
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr

    def test_int_objects_vectorize(self):
        vals = self._obj([1, 2, 3, 10, 20])
        starts = np.array([0, 3])
        counts = np.array([3, 2])
        out = segment_reduce("sum", vals, starts, counts)
        assert out.dtype != object
        assert out.tolist() == [6, 30]
        assert segment_reduce("avg", vals, starts, counts).tolist() == [2.0, 15.0]
        assert segment_reduce("min", vals, starts, counts).tolist() == [1, 10]
        assert segment_reduce("max", vals, starts, counts).tolist() == [3, 20]

    def test_float_objects_vectorize(self):
        vals = self._obj([1.5, 2.5, -1.0, 4.0])
        starts = np.array([0, 2])
        counts = np.array([2, 2])
        out = segment_reduce("sum", vals, starts, counts)
        assert out.dtype == np.float64
        assert out.tolist() == [4.0, 3.0]

    def test_mixed_objects_keep_fallback(self):
        vals = self._obj([1, 2.5, 3])
        out = segment_reduce("sum", vals, np.array([0]), np.array([3]))
        assert out.dtype == object
        assert out.tolist() == [6.5]

    def test_big_ints_keep_exact_python_arithmetic(self):
        big = 2 ** 70
        vals = self._obj([big, big])
        out = segment_reduce("sum", vals, np.array([0]), np.array([2]))
        assert out.tolist() == [2 ** 71]
        near = 2 ** 62
        vals = self._obj([near, near, near])
        out = segment_reduce("sum", vals, np.array([0]), np.array([3]))
        assert out.tolist() == [3 * 2 ** 62]  # > int64 max: exact Python sum

    def test_unknown_func_raises(self):
        with pytest.raises(ExecutionError):
            segment_reduce("median", self._obj([1]), np.array([0]),
                           np.array([1]))


class TestExplainAnalyzeCounters:
    def _db(self, **kwargs):
        db = Database(segment_rows=16, **kwargs)
        db.execute("CREATE TABLE t (id INT, v FLOAT, tag TEXT)")
        db.catalog.table("t").insert_rows([
            (i, float(i) / 2.0, "g%d" % (i // 50)) for i in range(200)
        ])
        db.execute("ANALYZE")
        return db

    def test_pruning_surfaces_in_explain_analyze(self):
        db = self._db()
        res = db.explain_analyze("SELECT id FROM t WHERE id < 40")
        assert res.segments_total > 0
        assert res.segments_pruned > 0
        assert res.segments_pruned < res.segments_total
        assert "pruned" in str(res)
        assert sorted(r[0] for r in res.result.rows) == list(range(40))

    def test_pruning_disabled_scans_everything(self):
        db = self._db(zone_map_pruning=False)
        res = db.explain_analyze("SELECT id FROM t WHERE id < 40")
        assert res.segments_total > 0
        assert res.segments_pruned == 0
        assert sorted(r[0] for r in res.result.rows) == list(range(40))

    def test_bytes_decoded_drops_with_late_materialization(self):
        db = self._db()
        narrow = db.explain_analyze("SELECT id FROM t WHERE id < 40")
        wide = db.explain_analyze("SELECT id, v, tag FROM t")
        assert 0 < narrow.bytes_decoded < wide.bytes_decoded
