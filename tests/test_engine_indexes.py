"""Tests for the B+Tree and hash index, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import CatalogError
from repro.engine.indexes import BPlusTree, HashIndex


class TestBPlusTreeBasics:
    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for i, key in enumerate([5, 3, 8, 1, 9, 7]):
            tree.insert(key, i)
        assert list(tree.search(8)) == [2]
        assert len(tree.search(42)) == 0

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(5, 1)
        tree.insert(5, 2)
        assert sorted(tree.search(5)) == [1, 2]
        assert tree.n_keys == 1
        assert len(tree) == 2

    def test_range_search_inclusive_bounds(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(10)], order=4)
        assert sorted(tree.range_search(3, 6)) == [3, 4, 5, 6]
        assert sorted(tree.range_search(3, 6, inclusive=(False, False))) == [4, 5]

    def test_range_search_open_bounds(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(10)], order=4)
        assert sorted(tree.range_search(high=2)) == [0, 1, 2]
        assert sorted(tree.range_search(low=8)) == [8, 9]
        assert sorted(tree.range_search()) == list(range(10))

    def test_items_in_key_order(self):
        tree = BPlusTree(order=4)
        keys = [9, 2, 7, 4, 1, 8, 3]
        for k in keys:
            tree.insert(k, k)
        assert [k for k, __ in tree.items()] == sorted(keys)

    def test_splits_increase_height(self):
        tree = BPlusTree(order=3)
        for i in range(100):
            tree.insert(i, i)
        assert tree.height > 1
        # Everything still findable after many splits.
        for i in range(100):
            assert list(tree.search(i)) == [i]

    def test_order_validation(self):
        with pytest.raises(CatalogError):
            BPlusTree(order=2)

    def test_size_bytes_grows(self):
        small = BPlusTree.bulk_load([(i, i) for i in range(10)])
        big = BPlusTree.bulk_load([(i, i) for i in range(1000)])
        assert big.size_bytes() > small.size_bytes()

    def test_text_keys(self):
        tree = BPlusTree(order=4)
        for i, w in enumerate(["pear", "apple", "mango", "fig"]):
            tree.insert(w, i)
        assert list(tree.search("apple")) == [1]
        assert sorted(tree.range_search("apple", "mango")) == [1, 2, 3]


class TestHashIndex:
    def test_insert_and_search(self):
        idx = HashIndex()
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert sorted(idx.search("k")) == [1, 2]
        assert len(idx.search("missing")) == 0
        assert idx.n_keys == 1
        assert len(idx) == 2

    def test_bulk_load(self):
        idx = HashIndex.bulk_load([(i % 3, i) for i in range(9)])
        assert sorted(idx.search(0)) == [0, 3, 6]


class TestProbeArrayReturns:
    def test_btree_probes_return_int64_arrays(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(10)], order=4)
        for ids in (tree.search(3), tree.search(99), tree.range_search(2, 5)):
            assert isinstance(ids, np.ndarray)
            assert ids.dtype == np.int64

    def test_hash_probes_return_int64_arrays(self):
        idx = HashIndex.bulk_load([("a", 0), ("a", 1)])
        for ids in (idx.search("a"), idx.search("zzz")):
            assert isinstance(ids, np.ndarray)
            assert ids.dtype == np.int64


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-10**6, max_value=10**6), min_size=1,
                max_size=300),
       st.integers(min_value=3, max_value=16))
def test_btree_matches_dict_reference(keys, order):
    """Property: B+Tree search agrees with a dict-of-lists reference."""
    tree = BPlusTree(order=order)
    reference = {}
    for row_id, key in enumerate(keys):
        tree.insert(key, row_id)
        reference.setdefault(key, []).append(row_id)
    for key, ids in reference.items():
        assert sorted(tree.search(key)) == sorted(ids)
    assert tree.n_keys == len(reference)
    assert len(tree) == len(keys)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=200),
       st.integers(min_value=0, max_value=1000),
       st.integers(min_value=0, max_value=1000))
def test_btree_range_matches_filter(keys, lo, hi):
    """Property: range_search equals brute-force filtering."""
    if lo > hi:
        lo, hi = hi, lo
    tree = BPlusTree.bulk_load([(k, i) for i, k in enumerate(keys)], order=5)
    expected = sorted(i for i, k in enumerate(keys) if lo <= k <= hi)
    assert sorted(tree.range_search(lo, hi)) == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=150))
def test_btree_items_sorted_and_complete(keys):
    """Property: items() yields every key exactly once, in order."""
    tree = BPlusTree.bulk_load([(k, i) for i, k in enumerate(keys)], order=4)
    emitted = [k for k, __ in tree.items()]
    assert emitted == sorted(set(keys))
    total = sum(len(ids) for __, ids in tree.items())
    assert total == len(keys)
