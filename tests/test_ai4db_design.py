"""Tests for learned design: learned indexes, KV continuum, txn scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ai4db.design.learned_index import (
    ALEXLiteIndex,
    BinarySearchIndex,
    PGMIndex,
    RMIIndex,
    evaluate_index,
)
from repro.ai4db.design.learned_kv import (
    DesignContinuumSearch,
    KVCostModel,
    KVDesign,
    KVWorkload,
    classic_designs,
)
from repro.ai4db.design.txn_mgmt import (
    ConflictClassifier,
    LearnedScheduler,
    TransactionFeaturizer,
    evaluate_schedulers,
)
from repro.common import ModelError, NotFittedError
from repro.engine.indexes import BPlusTree
from repro.engine.txn import Transaction, hotspot_workload


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return np.unique(rng.lognormal(10, 1.2, 30000))


class TestLearnedIndexCorrectness:
    @pytest.mark.parametrize("cls,kwargs", [
        (BinarySearchIndex, {}),
        (RMIIndex, {"n_models": 128}),
        (PGMIndex, {"epsilon": 16}),
        (ALEXLiteIndex, {}),
    ])
    def test_every_present_key_found(self, keys, cls, kwargs):
        index = cls(keys[:5000], **kwargs)
        rng = np.random.default_rng(1)
        probe = keys[:5000][rng.choice(5000, 500, replace=False)]
        metrics = evaluate_index(index, probe, probe[:1] + 0.5)
        assert metrics["hit_accuracy"] == 1.0

    @pytest.mark.parametrize("cls,kwargs", [
        (RMIIndex, {"n_models": 64}),
        (PGMIndex, {"epsilon": 8}),
        (ALEXLiteIndex, {}),
    ])
    def test_absent_keys_not_found(self, keys, cls, kwargs):
        subset = keys[:3000]
        index = cls(subset, **kwargs)
        gaps = subset[:-1] + np.diff(subset) / 2
        for g in gaps[::100]:
            pos, __ = index.lookup(float(g))
            assert pos is None

    def test_rmi_positions_correct(self, keys):
        subset = np.sort(keys[:2000])
        index = RMIIndex(subset, n_models=64)
        for i in range(0, 2000, 97):
            pos, __ = index.lookup(float(subset[i]))
            assert pos == i

    def test_pgm_epsilon_bounds_window(self, keys):
        index = PGMIndex(keys[:5000], epsilon=8)
        # Probe cost is bounded by segment routing + log2(2*eps+1).
        __, comps = index.lookup(float(keys[100]))
        bound = np.ceil(np.log2(index.n_segments + 1)) + np.ceil(
            np.log2(2 * 8 + 2)
        ) + 2
        assert comps <= bound

    def test_learned_much_smaller_than_btree(self, keys):
        subset = keys[:20000]
        rmi = RMIIndex(subset, n_models=256)
        pgm = PGMIndex(subset, epsilon=32)
        btree = BPlusTree.bulk_load(
            [(float(k), i) for i, k in enumerate(subset)]
        )
        assert rmi.size_bytes() * 20 < btree.size_bytes()
        assert pgm.size_bytes() * 20 < btree.size_bytes()

    def test_rmi_more_models_lower_error(self, keys):
        small = RMIIndex(keys, n_models=16)
        large = RMIIndex(keys, n_models=512)
        assert large.max_error() <= small.max_error()

    def test_invalid_params(self, keys):
        with pytest.raises(ModelError):
            RMIIndex(keys, n_models=0)
        with pytest.raises(ModelError):
            PGMIndex(keys, epsilon=0)
        with pytest.raises(ModelError):
            RMIIndex(np.array([]))
        with pytest.raises(ModelError):
            ALEXLiteIndex(max_leaf_size=4)


class TestALEXInserts:
    def test_insert_then_find(self, keys):
        index = ALEXLiteIndex(keys[:1000])
        new = float(keys[5000])
        assert index.lookup(new)[0] is None
        index.insert(new)
        assert index.lookup(new)[0] is not None
        assert len(index) == 1001

    def test_many_inserts_stay_correct(self):
        rng = np.random.default_rng(3)
        index = ALEXLiteIndex([], max_leaf_size=32)
        inserted = []
        for __ in range(800):
            k = float(rng.uniform(0, 1e6))
            index.insert(k)
            inserted.append(k)
        for k in inserted[::37]:
            assert index.lookup(k)[0] is not None

    def test_global_positions_ordered(self):
        index = ALEXLiteIndex([], max_leaf_size=16)
        for k in [50.0, 10.0, 90.0, 30.0, 70.0]:
            index.insert(k)
        positions = [index.lookup(k)[0] for k in [10.0, 30.0, 50.0, 70.0, 90.0]]
        assert positions == sorted(positions)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False),
                min_size=2, max_size=400, unique=True))
def test_learned_indexes_find_all_keys_property(key_list):
    """Property: every learned index finds every key it was built on."""
    arr = np.array(sorted(key_list))
    for index in (RMIIndex(arr, n_models=8), PGMIndex(arr, epsilon=4)):
        for i, k in enumerate(arr):
            pos, __ = index.lookup(float(k))
            assert pos == i


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=200))
def test_alex_insert_lookup_property(key_list):
    """Property: ALEX-lite finds everything inserted (duplicates allowed)."""
    index = ALEXLiteIndex([], max_leaf_size=16)
    for k in key_list:
        index.insert(float(k))
    for k in set(key_list):
        assert index.lookup(float(k))[0] is not None
    assert len(index) == len(key_list)


class TestKVDesign:
    def test_bounds_enforced(self):
        with pytest.raises(ModelError):
            KVDesign(size_ratio=1.0)
        with pytest.raises(ModelError):
            KVDesign(merge_policy=2.0)

    def test_with_knob_clips(self):
        d = KVDesign().with_knob("size_ratio", 999.0)
        assert d.size_ratio == KVDesign.BOUNDS["size_ratio"][1]

    def test_workload_fractions_validated(self):
        with pytest.raises(ModelError):
            KVWorkload("bad", 0.5, 0.5, 0.5)

    def test_tiering_cheaper_writes_leveling_cheaper_reads(self):
        cm = KVCostModel()
        wl = KVWorkload("x", 0.5, 0.45, 0.05)
        leveling = KVDesign(merge_policy=0.0, size_ratio=8)
        tiering = KVDesign(merge_policy=1.0, size_ratio=8)
        assert cm.write_cost(tiering, wl) < cm.write_cost(leveling, wl)
        assert cm.point_read_cost(leveling, wl) < cm.point_read_cost(tiering, wl)

    def test_bloom_filters_cut_read_cost(self):
        cm = KVCostModel()
        wl = KVWorkload("x", 0.9, 0.05, 0.05)
        with_bloom = KVDesign(bloom_bits=10)
        without = KVDesign(bloom_bits=0)
        assert cm.point_read_cost(with_bloom, wl) < cm.point_read_cost(
            without, wl
        )

    def test_memory_model_counts_components(self):
        cm = KVCostModel()
        wl = KVWorkload("x", 0.5, 0.4, 0.1)
        lean = KVDesign(buffer_mb=1, bloom_bits=0, fence_granularity=4096)
        rich = KVDesign(buffer_mb=512, bloom_bits=16, fence_granularity=16)
        assert cm.memory_mb(rich, wl) > cm.memory_mb(lean, wl)

    def test_search_beats_all_fixed_designs(self):
        cm = KVCostModel()
        search = DesignContinuumSearch(cm)
        for wl in (KVWorkload("r", 0.85, 0.1, 0.05),
                   KVWorkload("w", 0.1, 0.85, 0.05)):
            __, cost, trajectory = search.search(wl)
            fixed_best = min(cm.total_cost(d, wl)
                             for d in classic_designs().values())
            assert cost <= fixed_best + 1e-9
            assert trajectory  # it actually moved

    def test_search_trajectory_monotone(self):
        cm = KVCostModel()
        search = DesignContinuumSearch(cm)
        __, ___, trajectory = search.search(KVWorkload("m", 0.4, 0.5, 0.1))
        costs = [c for __, ___, c in trajectory]
        assert all(b <= a + 1e-12 for a, b in zip(costs, costs[1:]))


class TestTxnScheduling:
    @pytest.fixture(scope="class")
    def classifier(self):
        train = hotspot_workload(n_txns=200, hot_fraction=0.7, seed=1)
        return ConflictClassifier(seed=0).fit(train, n_pairs=1200, seed=2)

    def test_classifier_accuracy_high(self, classifier):
        test = hotspot_workload(n_txns=200, hot_fraction=0.7, seed=3)
        assert classifier.accuracy(test, n_pairs=400, seed=4) > 0.85

    def test_classifier_unfitted(self):
        clf = ConflictClassifier()
        a = Transaction(0, {1}, {2}, 1.0)
        with pytest.raises(NotFittedError):
            clf.conflict_probability(a, a)

    def test_featurizer_overlap_counts(self):
        f = TransactionFeaturizer()
        a = Transaction(0, reads={1, 2}, writes={3}, duration=2.0)
        b = Transaction(1, reads={3}, writes={2}, duration=3.0)
        feats = f.pair_features(a, b)
        # ww, wr (a.writes & b.reads), rw (a.reads & b.writes)
        assert feats[4] == 0 and feats[5] == 1 and feats[6] == 1

    def test_learned_scheduler_covers_all_txns(self, classifier):
        txns = hotspot_workload(n_txns=80, seed=5)
        queues = LearnedScheduler(classifier).schedule(txns, 4)
        scheduled = [t.txn_id for q in queues for t in q]
        assert sorted(scheduled) == sorted(t.txn_id for t in txns)

    def test_learned_beats_fifo_on_hotspot(self, classifier):
        txns = hotspot_workload(n_txns=200, hot_fraction=0.75, seed=6)
        results = evaluate_schedulers(txns, n_workers=4,
                                      classifier=classifier)
        assert results["learned"].total_wait < results["fifo"].total_wait
        assert results["learned"].makespan <= results["fifo"].makespan * 1.05

    def test_all_schedulers_commit_everything(self, classifier):
        txns = hotspot_workload(n_txns=100, seed=7)
        results = evaluate_schedulers(txns, n_workers=3,
                                      classifier=classifier)
        for r in results.values():
            assert r.committed == 100
