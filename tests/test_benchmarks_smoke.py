"""Smoke coverage for every ``benchmarks/bench_*.py`` entry point.

The benchmark suite lives outside the default test paths, so before this
test existed a refactor could silently break a benchmark and nobody would
notice until the next manual ``pytest benchmarks/`` run. This module makes
benchmark drift break tier-1 instead: every bench file is imported (import
errors fail immediately) and its entry point runs once in fast mode —
``measure(fast=True)`` for the ``bench_p*`` pipeline benchmarks, the
harness experiment regeneration for the ``bench_e*``/``bench_f*`` files.

The experiment runs are deliberately ``fast=True`` and seed-pinned; the
full-size numbers belong to the benchmark suite proper.
"""

import importlib.util
import re
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCH_FILES = sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))

#: bench_e08_end_to_end.py -> E8, bench_f1_taxonomy.py -> F1
_EXP_RE = re.compile(r"^bench_([ef])(\d+)_")


def _import_file(module_name, path):
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load(name):
    """Import one bench module with the *benchmarks* conftest visible.

    Bench modules do ``from conftest import ...``; under pytest the name
    ``conftest`` is already bound to ``tests/conftest.py``, so the
    benchmarks conftest is swapped into ``sys.modules`` for the duration
    of the import and restored afterwards.
    """
    saved = sys.modules.get("conftest")
    sys.modules["conftest"] = _import_file(
        "bench_smoke_conftest", BENCH_DIR / "conftest.py"
    )
    try:
        return _import_file("bench_smoke_%s" % name[:-3], BENCH_DIR / name)
    finally:
        if saved is None:
            sys.modules.pop("conftest", None)
        else:
            sys.modules["conftest"] = saved


def test_every_bench_file_is_covered():
    """The glob really found the suite (guards against a renamed dir)."""
    assert len(BENCH_FILES) >= 20
    assert all(_EXP_RE.match(n) or n.startswith("bench_p") for n in BENCH_FILES)


def test_makefile_bench_targets_cover_fusion():
    """``make bench-fusion`` exists and ``bench-json`` regenerates P4."""
    makefile = (BENCH_DIR.parent / "Makefile").read_text()
    assert "bench-fusion:" in makefile
    assert makefile.count("bench_p4_fusion.py") >= 2


@pytest.mark.parametrize("name", BENCH_FILES)
def test_bench_entry_point_fast(name):
    module = _load(name)
    if hasattr(module, "measure"):
        # Pipeline benchmarks (bench_p*): their own fast-mode entry point.
        result = module.measure(fast=True)
        assert result
        return
    match = _EXP_RE.match(name)
    assert match, "bench file %s has neither measure() nor an exp id" % name
    exp_id = "%s%d" % (match.group(1).upper(), int(match.group(2)))
    from repro.harness import run_experiment

    tables = run_experiment(exp_id, seed=0, fast=True, show=False)
    assert tables
