"""Tests for ML support code: preprocessing, metrics, clustering, RL, graph."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import ModelError, NotFittedError
from repro.ml import (
    DDPGAgent,
    DQNAgent,
    EpsilonGreedyBandit,
    GCNRegressor,
    KMeans,
    MCTS,
    MinMaxScaler,
    OneHotEncoder,
    QLearningAgent,
    ReplayBuffer,
    StandardScaler,
    ThompsonBetaBandit,
    UCB1Bandit,
    accuracy,
    cumulative_regret,
    log_loss,
    mean_absolute_error,
    normalized_adjacency,
    polynomial_features,
    precision_recall_f1,
    q_error,
    q_error_summary,
    r2_score,
    silhouette_score,
    train_test_split,
)


class TestScalers:
    def test_standard_scaler_zero_mean_unit_var(self, rng):
        X = rng.normal(loc=5, scale=3, size=(200, 3))
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-9)

    def test_standard_scaler_constant_column(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        assert np.allclose(Xs[:, 1], 0.0)

    def test_standard_scaler_inverse(self, rng):
        X = rng.normal(size=(50, 2))
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_minmax_range(self, rng):
        X = rng.uniform(-3, 9, size=(100, 2))
        Xs = MinMaxScaler((0, 1)).fit_transform(X)
        assert Xs.min() >= 0 and Xs.max() <= 1

    def test_minmax_custom_range_and_inverse(self, rng):
        X = rng.normal(size=(40, 2))
        sc = MinMaxScaler((-2, 2)).fit(X)
        Xs = sc.transform(X)
        assert Xs.min() >= -2 - 1e-9 and Xs.max() <= 2 + 1e-9
        assert np.allclose(sc.inverse_transform(Xs), X)

    def test_minmax_bad_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler((1, 1))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[1.0]])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2,
                    max_size=40))
    def test_standard_scaler_inverse_property(self, values):
        X = np.asarray(values).reshape(-1, 1)
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X,
                           atol=1e-6 * max(1.0, np.abs(X).max()))


class TestEncodersAndSplits:
    def test_one_hot_roundtrip(self):
        enc = OneHotEncoder().fit(["a", "b", "c", "a"])
        out = enc.transform(["b", "a"])
        assert out.shape == (2, 3)
        assert out[0, 1] == 1.0 and out[1, 0] == 1.0

    def test_one_hot_unknown_is_zero(self):
        enc = OneHotEncoder().fit(["a", "b"])
        assert np.all(enc.transform(["zzz"]) == 0)

    def test_split_sizes(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, seed=0)
        assert len(X_te) == 30 and len(X_tr) == 70
        assert len(y_te) == 30 and len(y_tr) == 70

    def test_split_disjoint_and_complete(self, rng):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        X_tr, X_te, __, ___ = train_test_split(X, y, seed=1)
        combined = sorted(X_tr.ravel().tolist() + X_te.ravel().tolist())
        assert combined == list(range(50))

    def test_split_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(4), test_size=1.5)

    def test_split_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((4, 1)), np.ones(5))

    def test_polynomial_features(self):
        X = np.array([[2.0, 3.0]])
        out = polynomial_features(X, degree=3)
        assert np.allclose(out, [[2, 3, 4, 9, 8, 27]])

    def test_polynomial_degree_one_identity(self):
        X = np.array([[1.0, -1.0]])
        assert np.allclose(polynomial_features(X, 1), X)


class TestMetrics:
    def test_mae_mse(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_q_error_symmetric(self):
        assert np.allclose(q_error([10], [100]), q_error([100], [10]))

    def test_q_error_floor(self):
        assert q_error([0], [0])[0] == 1.0

    def test_q_error_summary_keys(self):
        s = q_error_summary(np.arange(1, 101), np.arange(1, 101) * 2)
        assert set(s) == {"mean", "max", "q50", "q90", "q95", "q99"}
        assert s["q50"] == pytest.approx(2.0)

    def test_precision_recall_f1(self):
        p, r, f1 = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)

    def test_prf_no_positives(self):
        p, r, f1 = precision_recall_f1([0, 0], [0, 0])
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_accuracy(self):
        assert accuracy(["a", "b"], ["a", "c"]) == pytest.approx(0.5)

    def test_log_loss_bounds(self):
        good = log_loss([1, 0], [0.99, 0.01])
        bad = log_loss([1, 0], [0.01, 0.99])
        assert good < bad

    def test_cumulative_regret_monotone_for_suboptimal(self):
        regret = cumulative_regret([0.5] * 10, best_expected=1.0)
        assert np.all(np.diff(regret) > 0)
        assert regret[-1] == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=30),
           st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=30))
    def test_q_error_at_least_one_property(self, a, b):
        n = min(len(a), len(b))
        qe = q_error(a[:n], b[:n])
        assert np.all(qe >= 1.0)


class TestClustering:
    def test_kmeans_separated_blobs(self, rng):
        centers = np.array([[0, 0], [10, 10], [0, 10]])
        X = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
        km = KMeans(3, seed=0).fit(X)
        # Each blob should be one cluster.
        labels = km.labels_
        for start in (0, 30, 60):
            block = labels[start : start + 30]
            assert np.all(block == block[0])

    def test_kmeans_predict_consistent_with_fit(self, rng):
        X = rng.normal(size=(60, 2))
        km = KMeans(4, seed=1).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_kmeans_too_few_samples(self):
        with pytest.raises(ModelError):
            KMeans(5).fit(np.ones((3, 2)))

    def test_silhouette_prefers_true_clustering(self, rng):
        X = np.vstack([rng.normal(0, 0.3, (20, 2)),
                       rng.normal(8, 0.3, (20, 2))])
        good = np.array([0] * 20 + [1] * 20)
        bad = np.array(([0, 1] * 20))
        assert silhouette_score(X, good) > silhouette_score(X, bad)

    def test_silhouette_single_cluster_rejected(self, rng):
        with pytest.raises(ModelError):
            silhouette_score(rng.normal(size=(10, 2)), np.zeros(10))


class TestBandits:
    def _run(self, bandit, means, steps, rng):
        total = 0.0
        for __ in range(steps):
            arm = bandit.select()
            reward = float(np.clip(rng.normal(means[arm], 0.1), 0, 1))
            bandit.update(arm, reward)
            total += reward
        return total

    def test_ucb_finds_best_arm(self, rng):
        means = [0.2, 0.8, 0.4]
        bandit = UCB1Bandit(3)
        self._run(bandit, means, 500, rng)
        assert int(np.argmax(bandit.counts)) == 1

    def test_thompson_beats_random(self, rng):
        means = [0.1, 0.9, 0.3, 0.2]
        ts = ThompsonBetaBandit(4, seed=0)
        total_ts = self._run(ts, means, 400, rng)
        rand_total = 400 * float(np.mean(means))
        assert total_ts > rand_total

    def test_epsilon_greedy_explores(self, rng):
        bandit = EpsilonGreedyBandit(3, epsilon=0.5, seed=0)
        self._run(bandit, [0.5, 0.5, 0.5], 300, rng)
        assert np.all(bandit.counts > 0)

    def test_invalid_arm_count(self):
        with pytest.raises(ModelError):
            UCB1Bandit(0)


class TestReplayAndAgents:
    def test_replay_eviction(self):
        buf = ReplayBuffer(capacity=3, seed=0)
        for i in range(5):
            buf.push([i], i, float(i), [i], False)
        assert len(buf) == 3
        states, __, ___, ____, _____ = buf.sample(10)
        assert states.min() >= 2  # oldest evicted

    def test_replay_empty_sample_rejected(self):
        with pytest.raises(ModelError):
            ReplayBuffer().sample(1)

    def test_q_learning_gridline(self):
        # 1-D walk: states 0..4, action 1 moves right, reward at state 4.
        agent = QLearningAgent(n_actions=2, epsilon=0.3, seed=0)
        for __ in range(300):
            state = 0
            for __step in range(10):
                action = agent.act(state)
                next_state = min(4, state + 1) if action == 1 else max(0, state - 1)
                reward = 1.0 if next_state == 4 else 0.0
                agent.update(state, action, reward, next_state,
                             next_state == 4)
                state = next_state
                if state == 4:
                    break
            agent.decay()
        # Learned policy should walk right from every state.
        for s in range(4):
            assert agent.act(s, greedy=True) == 1

    def test_q_learning_valid_action_mask(self):
        agent = QLearningAgent(n_actions=5, epsilon=1.0, seed=0)
        for __ in range(50):
            assert agent.act("s", valid_actions=[2, 3]) in (2, 3)

    def test_q_learning_no_valid_actions(self):
        agent = QLearningAgent(n_actions=2)
        with pytest.raises(ModelError):
            agent.act("s", valid_actions=[])

    def test_dqn_contextual_bandit(self, rng):
        agent = DQNAgent(state_dim=1, n_actions=2, hidden=(32,), gamma=0.0,
                         epsilon=0.5, lr=5e-3, target_sync=20, seed=0)
        for __ in range(800):
            s = np.array([float(rng.integers(0, 2))])
            a = agent.act(s)
            r = 1.0 if a == int(s[0]) else -1.0
            agent.remember(s, a, r, s, True)
            agent.train_step()
        assert agent.act(np.array([0.0]), greedy=True) == 0
        assert agent.act(np.array([1.0]), greedy=True) == 1

    def test_ddpg_continuous_bandit(self, rng):
        target = np.array([0.5, -0.5])
        agent = DDPGAgent(state_dim=2, action_dim=2, gamma=0.0,
                          noise_scale=0.4, seed=0)
        s = np.zeros(2)
        for i in range(900):
            a = agent.act(s)
            r = -float(np.sum((a - target) ** 2))
            agent.remember(s, a, r, s, True)
            agent.train_step()
            if i % 100 == 0:
                agent.decay()
        final = agent.act(s, noisy=False)
        assert np.all(np.abs(final - target) < 0.25)

    def test_actions_clipped(self):
        agent = DDPGAgent(2, 2, noise_scale=10.0, seed=0)
        a = agent.act(np.zeros(2))
        assert np.all(a >= -1.0) and np.all(a <= 1.0)


class TestMCTS:
    def test_finds_optimal_sequence(self):
        # Maximize sum of 3 chosen digits in {0,1,2}.
        mcts = MCTS(
            actions_fn=lambda s: list(range(3)) if len(s) < 3 else [],
            step_fn=lambda s, a: s + (a,),
            reward_fn=lambda s: float(sum(s)),
            seed=0,
        )
        best, reward = mcts.search((), n_iterations=200)
        assert best == (2, 2, 2)
        assert reward == 6.0

    def test_trap_requires_lookahead(self):
        # Choosing 0 first unlocks a big terminal bonus; greedy would pick 1.
        def reward(s):
            if len(s) < 2:
                return 0.0
            return 10.0 if s[0] == 0 else float(s[0] + s[1])

        mcts = MCTS(
            actions_fn=lambda s: [0, 1] if len(s) < 2 else [],
            step_fn=lambda s, a: s + (a,),
            reward_fn=reward,
            seed=1,
        )
        best, r = mcts.search((), n_iterations=300)
        assert best[0] == 0 and r == 10.0


class TestGraph:
    def test_normalized_adjacency_rows(self):
        g = nx.path_graph(3)
        A_hat, nodes = normalized_adjacency(g)
        assert nodes == [0, 1, 2]
        assert A_hat.shape == (3, 3)
        # Symmetric and nonnegative.
        assert np.allclose(A_hat, A_hat.T)
        assert np.all(A_hat >= 0)

    def test_gcn_learns_neighbor_sum(self, rng):
        # Target = own feature + mean of neighbors' features: exactly what
        # one round of message passing can represent.
        graphs, feats, targets = [], [], []
        for seed in range(12):
            g = nx.gnp_random_graph(8, 0.4, seed=seed)
            X = np.random.default_rng(seed).normal(size=(8, 2))
            y = np.zeros(8)
            for node in g.nodes():
                nbrs = list(g.neighbors(node))
                y[node] = X[node, 0] + (
                    np.mean(X[nbrs, 0]) if nbrs else 0.0
                )
            graphs.append(g)
            feats.append(X)
            targets.append(y)
        model = GCNRegressor(2, hidden=16, epochs=300, seed=0)
        model.fit(graphs[:10], feats[:10], targets[:10])
        assert model.loss_curve_[-1] < model.loss_curve_[0] * 0.5
        pred = model.predict(graphs[11], feats[11])
        # Held-out predictions must carry real signal: strong positive
        # correlation with the neighbor-aware target.
        corr = float(np.corrcoef(pred, targets[11])[0, 1])
        assert corr > 0.5

    def test_gcn_validates_shapes(self, rng):
        g = nx.path_graph(3)
        model = GCNRegressor(2)
        with pytest.raises(ModelError):
            model.fit([g], [rng.normal(size=(3, 5))], [np.zeros(3)])
        with pytest.raises(ModelError):
            model.fit([g], [rng.normal(size=(2, 2))], [np.zeros(2)])

    def test_gcn_unfitted(self, rng):
        with pytest.raises(NotFittedError):
            GCNRegressor(2).predict(nx.path_graph(2), rng.normal(size=(2, 2)))
