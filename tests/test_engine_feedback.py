"""Tests for the cardinality feedback loop.

Covers the :mod:`repro.engine.optimizer.feedback` primitives (store,
corrected estimator, execution ingestion), the pipeline integration
(drift → plan-cache invalidation → replan), the learned estimator's
:meth:`refit_from_feedback`, and the headline end-to-end behaviours the
issue demands: a skewed workload must drop the learned estimator's median
q-error vs its cold state, and a drifted join estimate must trigger a
re-plan to a cheaper join order.
"""

import statistics

import pytest

from repro.engine import datagen
from repro.engine.catalog import Catalog
from repro.engine.database import Database
from repro.engine.executor import count_join_rows
from repro.engine.optimizer.cardinality import CardinalityEstimator
from repro.engine.optimizer.feedback import (
    FeedbackCorrectedEstimator,
    QueryFeedbackStore,
    induced_subquery,
)
from repro.engine import plans as P
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.engine.telemetry import q_error


class TestQError:
    def test_symmetric_and_floored(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == 10.0
        assert q_error(10, 100) == 10.0
        assert q_error(0, 0) == 1.0  # both floored at 1
        assert q_error(50, 0) == 50.0

    def test_none_propagates(self):
        assert q_error(None, 10) is None
        assert q_error(10, None) is None


class TestInducedSubquery:
    def test_keeps_subset_structure(self):
        q = ConjunctiveQuery(
            tables=["a", "b", "c"],
            join_edges=[JoinEdge("a", "x", "b", "x"),
                        JoinEdge("b", "y", "c", "y")],
            predicates=[Predicate("a", "x", "<", 5),
                        Predicate("c", "y", "=", 1)],
        )
        sub = induced_subquery(q, ["a", "b"])
        assert sub.tables == ["a", "b"]
        assert len(sub.join_edges) == 1  # only the a-b edge survives
        assert [p.table for p in sub.predicates] == ["a"]

    def test_signature_stable_across_call_sites(self):
        q = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "x")],
        )
        assert (induced_subquery(q, ["a", "b"]).signature()
                == induced_subquery(q, ["B", "A"]).signature())


class TestQueryFeedbackStore:
    def _q(self, value=5):
        return ConjunctiveQuery(
            tables=["t"], predicates=[Predicate("t", "x", "<", value)]
        )

    def test_observe_then_lookup(self):
        store = QueryFeedbackStore()
        q = self._q()
        assert store.lookup(q, ["t"]) is None
        store.observe(q, ["t"], est_rows=100, actual_rows=40)
        assert store.lookup(q, ["t"]) == 40
        assert len(store) == 1

    def test_drift_bumps_version_once(self):
        store = QueryFeedbackStore(drift_threshold=2.0)
        q = self._q()
        assert store.version == 0
        # 100 vs 10 is q-error 10 — drift.
        assert store.observe(q, ["t"], 100, 10) is True
        assert store.version == 1
        # Re-observing the same stable actual is not new information.
        assert store.observe(q, ["t"], 100, 10) is False
        assert store.version == 1
        # The actual changing underneath us is drift again.
        assert store.observe(q, ["t"], 100, 1000) is True
        assert store.version == 2

    def test_small_error_never_drifts(self):
        store = QueryFeedbackStore(drift_threshold=2.0)
        assert store.observe(self._q(), ["t"], 100, 60) is False
        assert store.version == 0
        assert store.lookup(self._q(), ["t"]) == 60  # still remembered

    def test_none_estimate_never_drifts(self):
        store = QueryFeedbackStore()
        assert store.observe(self._q(), ["t"], None, 10) is False
        assert store.lookup(self._q(), ["t"]) == 10

    def test_lru_capacity(self):
        store = QueryFeedbackStore(capacity=2)
        for v in (1, 2, 3):
            store.observe(self._q(v), ["t"], 10, 10)
        assert len(store) == 2
        assert store.lookup(self._q(1), ["t"]) is None  # evicted
        assert store.lookup(self._q(3), ["t"]) == 10

    def test_pairs_and_clear(self):
        store = QueryFeedbackStore()
        store.observe(self._q(1), ["t"], 10, 7)
        store.observe(self._q(2), ["t"], 10, 9)
        queries, actuals = store.pairs()
        assert len(queries) == 2 and actuals == [7, 9]
        store.clear()
        assert len(store) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryFeedbackStore(drift_threshold=0.5)
        with pytest.raises(ValueError):
            QueryFeedbackStore(capacity=0)


class _ConstantEstimator(CardinalityEstimator):
    def __init__(self, value):
        self.value = value

    def estimate_table(self, query, table):
        return self.value

    def estimate_subset(self, query, tables):
        return self.value


class TestFeedbackCorrectedEstimator:
    def test_exact_hit_overrides_base(self):
        store = QueryFeedbackStore()
        est = FeedbackCorrectedEstimator(_ConstantEstimator(999.0), store)
        q = ConjunctiveQuery(tables=["t"])
        assert est.estimate_table(q, "t") == 999.0  # cold: delegate
        store.observe(q, ["t"], 999, 123)
        assert est.estimate_table(q, "t") == 123.0  # corrected
        assert est.estimate_subset(q, ["t"]) == 123.0

    def test_miss_delegates(self):
        store = QueryFeedbackStore()
        est = FeedbackCorrectedEstimator(_ConstantEstimator(7.0), store)
        q1 = ConjunctiveQuery(tables=["t"],
                              predicates=[Predicate("t", "x", "<", 1)])
        q2 = ConjunctiveQuery(tables=["t"],
                              predicates=[Predicate("t", "x", "<", 2)])
        store.observe(q1, ["t"], 7, 42)
        assert est.estimate_table(q2, "t") == 7.0  # different signature


def _correlated_db(**kwargs):
    """A feedback-enabled DB with a perfectly correlated two-column table.

    ``a == b`` on every row, so the independence assumption underestimates
    ``a < K AND b < K`` by 4x at K = domain/4 — comfortably past the 2x
    drift threshold.
    """
    db = Database(feedback_enabled=True, **kwargs)
    db.execute("CREATE TABLE facts (id INT, a INT, b INT)")
    db.catalog.table("facts").insert_rows(
        [(i, i % 40, i % 40) for i in range(2000)]
    )
    db.execute("ANALYZE")
    return db


class TestDatabaseFeedbackLoop:
    def test_feedback_off_by_default(self):
        db = Database()
        assert db.feedback is None
        assert db.feedback_version == 0

    def test_drift_invalidates_cached_plan_then_stabilizes(self):
        db = _correlated_db()
        q = ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", "<", 10),
                        Predicate("facts", "b", "<", 10)],
            aggregates=[Aggregate("count")],
        )
        v0 = db.feedback_version
        res1 = db.run_query_object(q)
        assert res1.rows == [(500,)]
        # The misestimate (~125 est vs 500 actual) is drift: version moved.
        assert db.feedback_version > v0
        # The cached plan predates the drift, so the next run must replan…
        res2 = db.run_query_object(q)
        assert res2.pipeline_telemetry.cache_hit is False
        # …and the replanned run re-observes a now-stable actual with a
        # corrected estimate — no new drift, so the cache goes warm.
        v_after = db.feedback_version
        res3 = db.run_query_object(q)
        assert res3.pipeline_telemetry.cache_hit is True
        assert db.feedback_version == v_after
        assert res3.rows == res1.rows

    def test_estimator_corrected_after_one_execution(self):
        db = _correlated_db()
        q = ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", "<", 10),
                        Predicate("facts", "b", "<", 10)],
        )
        cold = db.planner.estimator.estimate_table(q, "facts")
        true = count_join_rows(db.catalog, q, ["facts"])
        assert q_error(cold, true) > 2.0  # independence underestimates
        db.run_query_object(q)
        warm = db.planner.estimator.estimate_table(q, "facts")
        assert warm == true

    def test_explain_analyze_reports_est_and_actual(self):
        db = _correlated_db()
        res = db.explain_analyze(
            "SELECT COUNT(*) FROM facts WHERE a < 10 AND b < 10"
        )
        assert "actual=" in res.text and "rows=" in res.text
        assert res.node_stats
        leaf = res.node_stats[-1]
        assert leaf["op"] == "SeqScan"
        assert leaf["actual_rows"] == 500
        assert leaf["q_error"] > 2.0
        # Second time around the estimate is feedback-corrected.
        res2 = db.explain_analyze(
            "SELECT COUNT(*) FROM facts WHERE a < 10 AND b < 10"
        )
        assert res2.node_stats[-1]["q_error"] == pytest.approx(1.0)

    def test_stable_workload_keeps_cache_warm(self):
        db = _correlated_db()
        # A well-estimated query: single predicate, no correlation trap.
        q = ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", "<", 10)],
        )
        db.run_query_object(q)
        v = db.feedback_version
        for __ in range(3):
            res = db.run_query_object(q)
        assert res.pipeline_telemetry.cache_hit is True
        assert db.feedback_version == v


class TestLearnedEstimatorRefit:
    def test_median_q_error_drops_after_feedback(self):
        from repro.ai4db.optimization.cardinality import (
            LearnedCardinalityEstimator,
            QueryFeaturizer,
            generate_training_queries,
        )

        catalog = Catalog()
        datagen.make_correlated_table(
            catalog, "facts", n_rows=2000, n_values=40, correlation=0.9,
            seed=0,
        )
        featurizer = QueryFeaturizer(catalog, ["facts"], [])
        # Cold state: trained only on single-predicate queries, so the
        # model has seen marginal selectivities but never the a/b
        # correlation — conjunctive queries get underestimated.
        base_q, base_c = generate_training_queries(
            catalog, "facts", ["a", "b"], n_queries=120, n_values=40,
            seed=1, max_predicates=1,
        )
        est = LearnedCardinalityEstimator(
            featurizer, hidden=(32,), epochs=80, seed=0
        ).fit(base_q, base_c)

        # The skewed workload: correlated conjunctions.
        workload = [
            ConjunctiveQuery(
                tables=["facts"],
                predicates=[Predicate("facts", "a", "<", k),
                            Predicate("facts", "b", "<", k)],
            )
            for k in (5, 8, 10, 12, 15, 20, 25, 30)
        ]
        truths = [count_join_rows(catalog, q, ["facts"]) for q in workload]

        def median_q(estimator):
            return statistics.median(
                q_error(estimator.estimate_table(q, "facts"), t)
                for q, t in zip(workload, truths)
            )

        cold = median_q(est)
        store = QueryFeedbackStore()
        for q, t in zip(workload, truths):
            store.observe(q, ["facts"], est.estimate_table(q, "facts"), t)
        used = est.refit_from_feedback(store)
        assert used == len(workload)
        warm = median_q(est)
        assert warm < cold

    def test_refit_skips_out_of_vocab_observations(self):
        from repro.ai4db.optimization.cardinality import (
            LearnedCardinalityEstimator,
            QueryFeaturizer,
            generate_training_queries,
        )

        catalog = Catalog()
        datagen.make_correlated_table(
            catalog, "facts", n_rows=500, n_values=20, correlation=0.5,
            seed=0,
        )
        featurizer = QueryFeaturizer(catalog, ["facts"], [])
        base_q, base_c = generate_training_queries(
            catalog, "facts", ["a", "b"], n_queries=30, n_values=20, seed=2,
        )
        est = LearnedCardinalityEstimator(
            featurizer, hidden=(16,), epochs=20, seed=0
        ).fit(base_q, base_c)
        store = QueryFeedbackStore()
        store.observe(ConjunctiveQuery(tables=["unknown"]), ["unknown"],
                      10, 20)
        assert est.refit_from_feedback(store) == 0


def _scan_order(plan):
    """Base-table scan order of a left-deep plan. Preorder descends the
    left spine first, so the first two entries are the innermost (first)
    join's inputs and later entries join progressively higher up."""
    return [n.table for n in plan.walk()
            if isinstance(n, (P.SeqScan, P.IndexScan))]


class TestJoinOrderReplan:
    """A stale join estimate must trigger replanning to a cheaper order.

    ``f ⋈ b`` is empty (disjoint key domains) but the traditional
    estimator — assuming key-domain containment — predicts it *bigger*
    than ``f ⋈ a``, so the cold plan joins ``a`` first. Once feedback
    observes the empty ``f ⋈ b``, the drifted version invalidates the
    cached plan and the replanner joins ``b`` first, collapsing the
    pipeline after an empty intermediate.
    """

    def _db(self):
        db = Database(feedback_enabled=True)
        db.execute("CREATE TABLE f (id INT, fk_a INT, fk_b INT)")
        db.catalog.table("f").insert_rows(
            [(i, i % 100, i % 10) for i in range(2000)]
        )
        db.execute("CREATE TABLE a (id INT)")
        db.catalog.table("a").insert_rows([(i,) for i in range(100)])
        # b's ids never overlap f.fk_b — the join is empty, but the
        # estimator cannot know that from per-column stats.
        db.execute("CREATE TABLE b (id INT)")
        db.catalog.table("b").insert_rows(
            [(1000 + (j % 50),) for j in range(200)]
        )
        db.execute("ANALYZE")
        return db

    def _q3(self):
        return ConjunctiveQuery(
            tables=["f", "a", "b"],
            join_edges=[JoinEdge("f", "fk_a", "a", "id"),
                        JoinEdge("f", "fk_b", "b", "id")],
        )

    def test_feedback_replans_to_cheaper_join_order(self):
        db = self._db()
        q3 = self._q3()
        cold_order = _scan_order(db.planner.plan(q3))
        # Cold estimates: |f ⋈ a| = 2000 vs |f ⋈ b| = 8000, so the cold
        # plan joins a before b.
        assert cold_order.index("a") < cold_order.index("b"), cold_order
        res1 = db.run_query_object(q3)
        assert res1.rows == []
        # A pair query teaches the store that f ⋈ b is empty (Leo-style
        # cross-query feedback) — a massive q-error, so the version bumps.
        v_before = db.feedback_version
        qfb = ConjunctiveQuery(
            tables=["f", "b"],
            join_edges=[JoinEdge("f", "fk_b", "b", "id")],
        )
        assert db.run_query_object(qfb).rows == []
        assert db.feedback_version > v_before
        # Replanned order now joins the (known-empty) f ⋈ b first.
        warm_order = _scan_order(db.planner.plan(q3))
        assert warm_order != cold_order
        assert warm_order.index("b") < warm_order.index("a"), warm_order
        # The drifted version invalidates the cached q3 plan; the re-run
        # replans and does strictly less work than the cold execution.
        res2 = db.run_query_object(q3)
        assert res2.pipeline_telemetry.cache_hit is False
        assert res2.rows == []
        assert res2.work < res1.work
