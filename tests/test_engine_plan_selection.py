"""The plan-selection layer: hint-set arms, UES bounds, selectors.

Covers the three stages of the pluggable plan-selection refactor:

* **candidate generation** — declarative :class:`HintSet` arms, the
  :func:`hint_grid` cross product, per-arm plans from
  :meth:`Planner.plan_candidates`;
* **UES bounds** — max-frequency exactness, per-level bound monotonicity,
  and the guarantee property (bounds dominate true cardinalities);
* **selection** — the cost/bandit/pessimistic selectors, the bandit's
  regret-cap eligibility guard and strike-based demotion, drift-driven
  demotion through the feedback store, and deterministic seeding;
* **accounting** — per-arm plan-cache entries, arm attribution in
  telemetry and EXPLAIN (ANALYZE), win counters;

plus the dropped-table regression: every selector surfaces
:class:`~repro.common.CatalogError` (never a raw ``KeyError``) when a
table disappears between planning attempts.
"""

import numpy as np
import pytest

from repro.common import CatalogError, ExecutionError, PlanError, ReproError
from repro.engine import Database, EngineConfig
from repro.engine.config import DEFAULT_REGRET_CAP, PLAN_SELECTORS
from repro.engine.optimizer.hints import (
    DEFAULT_ARM,
    HintSet,
    PlanCandidate,
    UES_ARM,
    default_arms,
    hint_grid,
)
from repro.engine.optimizer.selection import (
    BanditSelector,
    CostSelector,
    FEATURE_DIM,
    PessimisticSelector,
    make_selector,
    plan_features,
)
from repro.engine.optimizer.ues import (
    bound_cost,
    max_frequency,
    ues_bounds,
    ues_order,
)
from repro.engine.query import ConjunctiveQuery, JoinEdge, Predicate


def _skewed_db(**kwargs):
    """Three joinable tables with a heavily skewed join key on ``mid``."""
    db = Database(**kwargs)
    db.execute("CREATE TABLE small (id INT, k INT)")
    db.execute("CREATE TABLE mid (id INT, k INT, v FLOAT)")
    db.execute("CREATE TABLE big (id INT, k INT, tag TEXT)")
    db.catalog.table("small").insert_rows([(i, i % 5) for i in range(20)])
    # mid.k is skewed: value 0 appears 60 times, the rest once each.
    db.catalog.table("mid").insert_rows(
        [(i, 0 if i < 60 else i, float(i)) for i in range(100)]
    )
    db.catalog.table("big").insert_rows(
        [(i, i % 17, "t%d" % (i % 3)) for i in range(300)]
    )
    db.execute("ANALYZE")
    return db


def _join_query():
    return ConjunctiveQuery(
        tables=["small", "mid", "big"],
        join_edges=[
            JoinEdge("small", "k", "mid", "k"),
            JoinEdge("mid", "id", "big", "k"),
        ],
    )


# ----------------------------------------------------------------------
# Hint sets
# ----------------------------------------------------------------------
class TestHintSets:
    def test_validation(self):
        with pytest.raises(ValueError):
            HintSet(name="")
        with pytest.raises(ValueError):
            HintSet(name="x", join_order="bogus")

    def test_default_arms_cover_the_axes(self):
        arms = default_arms()
        names = [a.name for a in arms]
        assert names[0] == DEFAULT_ARM.name
        assert UES_ARM.name in names
        assert len(set(names)) == len(names)
        orders = {a.join_order for a in arms}
        assert {"default", "greedy", "exhaustive", "ues"} <= orders
        assert any(a.use_indexes is False for a in arms)

    def test_hint_grid_cross_product(self):
        grid = hint_grid(
            join_orders=("greedy", "ues"),
            index_axis=(True, False),
            fusion_axis=(True, False),
            parallel_axis=(None,),
        )
        assert len(grid) == 2 * 2 * 2
        assert len({a.name for a in grid}) == len(grid)

    def test_describe_mentions_overridden_axes(self):
        text = HintSet(name="x", join_order="ues", fusion=False).describe()
        assert "order=ues" in text and "fusion=off" in text


# ----------------------------------------------------------------------
# UES bounds
# ----------------------------------------------------------------------
class TestUESBounds:
    def test_max_frequency_exact_on_skew(self):
        db = _skewed_db()
        assert max_frequency(db.catalog, "mid", "k") == 60.0
        assert max_frequency(db.catalog, "small", "k") == 4.0

    def test_max_frequency_unknown_objects_raise_catalog_error(self):
        db = _skewed_db()
        with pytest.raises(CatalogError):
            max_frequency(db.catalog, "nope", "k")
        with pytest.raises(CatalogError):
            max_frequency(db.catalog, "mid", "nope")

    def test_bounds_monotone_nondecreasing(self):
        db = _skewed_db()
        query = _join_query()
        for order in (["small", "mid", "big"], ["big", "mid", "small"]):
            bounds = ues_bounds(db.catalog, query, order)
            assert len(bounds) == 3
            assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_bounds_dominate_true_cardinality(self):
        """The guarantee: at every level the bound is >= the true join
        cardinality of the prefix — for every permutation start."""
        db = _skewed_db()
        query = _join_query()
        order, bounds = ues_order(db.catalog, query)
        assert sorted(t.lower() for t in order) == ["big", "mid", "small"]
        for level in range(len(order)):
            truth = db.true_cardinality(query, order[:level + 1])
            assert bounds[level] >= truth, (order, level, bounds, truth)

    def test_bound_cost_guarantee_vs_measured_work(self):
        """Executing the UES order can never be charged more work than
        the pessimistic bound_cost (sound bounds + same cost formulas)."""
        db = _skewed_db()
        query = _join_query()
        order, __, total = bound_cost(db.catalog, query, db.cost_model)
        result = db.run_query_object(query, order=order)
        assert result.telemetry.total_work <= total

    def test_order_must_cover_tables(self):
        db = _skewed_db()
        with pytest.raises(PlanError):
            ues_bounds(db.catalog, _join_query(), ["small", "mid"])

    def test_single_table(self):
        db = _skewed_db()
        q = ConjunctiveQuery(tables=["mid"])
        order, bounds = ues_order(db.catalog, q)
        assert order == ["mid"]
        assert bounds == [100.0]


# ----------------------------------------------------------------------
# Selectors
# ----------------------------------------------------------------------
def _fake_candidates(**costs):
    """PlanCandidates from ``name=est_cost`` pairs; 'ues' gets a bound."""
    out = []
    for name, cost in costs.items():
        hints = UES_ARM if name == "ues" else HintSet(name=name)
        out.append(PlanCandidate(
            arm=name, hints=hints, plan=None, est_cost=float(cost),
            bound=float(cost) if name == "ues" else None,
        ))
    return out


class TestSelectors:
    def test_make_selector_names(self):
        for name in PLAN_SELECTORS:
            assert make_selector(name).name == name
        with pytest.raises(PlanError):
            make_selector("bogus")

    def test_cost_selector_picks_min_cost(self):
        sel = CostSelector()
        cands = _fake_candidates(a=5.0, b=2.0, ues=10.0)
        assert sel.select(cands, _join_query()).arm == "b"

    def test_pessimistic_selector_always_ues(self):
        sel = PessimisticSelector()
        cands = _fake_candidates(a=1.0, ues=100.0)
        assert sel.select(cands, _join_query()).arm == "ues"
        assert sel.stats()["arms"]["ues"]["picks"] == 1

    def test_bandit_regret_cap_excludes_expensive_arms(self):
        """An arm whose estimate exceeds regret_cap × the UES bound is
        never selected, no matter what Thompson sampling says."""
        sel = BanditSelector(regret_cap=2.0, rng=0)
        cands = _fake_candidates(cheap=8.0, expensive=25.0, ues=10.0)
        query = _join_query()
        x = np.zeros(FEATURE_DIM)
        x[0] = 1.0
        for __ in range(50):
            chosen = sel.select(cands, query, x)
            assert chosen.arm != "expensive", sel.stats()
            sel.observe(chosen.arm, x, chosen.est_cost, chosen.est_cost)
        expensive = sel.stats()["arms"].get("expensive", {"picks": 0})
        assert expensive["picks"] == 0

    def test_bandit_regret_cap_validated(self):
        with pytest.raises(PlanError):
            BanditSelector(regret_cap=0.5)

    def test_bandit_strikes_demote_broken_promises(self):
        """Measured work repeatedly above regret_cap × the arm's own
        estimate demotes it for a cooldown; the UES anchor never is."""
        sel = BanditSelector(regret_cap=2.0, rng=0, demote_after=3,
                             demote_for=10)
        x = np.zeros(FEATURE_DIM)
        x[0] = 1.0
        for __ in range(3):
            sel.observe("greedy", x, est_cost=10.0, actual_work=100.0)
        st = sel.stats()["arms"]["greedy"]
        assert st["demotions"] == 1
        # While demoted, selection skips the arm even when cap-eligible.
        cands = _fake_candidates(greedy=8.0, ues=10.0)
        for __ in range(5):
            assert sel.select(cands, _join_query(), x).arm == "ues"

    def test_note_drift_strikes_last_picked_arm(self):
        sel = BanditSelector(rng=0, demote_after=1, demote_for=100)
        cands = _fake_candidates(greedy=8.0, ues=10.0)
        x = np.zeros(FEATURE_DIM)
        x[0] = 1.0
        # Force 'greedy' to be the last pick (unobserved arms first,
        # sorted by name — 'greedy' < 'ues').
        chosen = sel.select(cands, _join_query(), x)
        assert chosen.arm == "greedy"
        sel.note_drift(["MID"])  # overlaps the query's tables, any case
        assert sel.stats()["arms"]["greedy"]["demotions"] == 1

    def test_bandit_seeded_selection_is_reproducible(self):
        cands = _fake_candidates(a=8.0, b=9.0, ues=10.0)
        query = _join_query()
        x = np.zeros(FEATURE_DIM)
        x[0] = 1.0
        picks = []
        for __ in range(2):
            sel = BanditSelector(rng=42)
            seq = []
            for i in range(30):
                c = sel.select(cands, query, x)
                seq.append(c.arm)
                sel.observe(c.arm, x, c.est_cost, c.est_cost * (1 + i % 3))
            picks.append(seq)
        assert picks[0] == picks[1]

    def test_plan_features_shape_and_determinism(self):
        db = _skewed_db()
        q = _join_query()
        x1 = plan_features(q, db.planner.estimator)
        x2 = plan_features(q, db.planner.estimator)
        assert x1.shape == (FEATURE_DIM,)
        assert x1[0] == 1.0
        assert np.array_equal(x1, x2)


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------
class TestConfigKnobs:
    def test_defaults(self):
        cfg = EngineConfig()
        assert cfg.plan_selector == "cost"
        assert cfg.regret_cap == DEFAULT_REGRET_CAP
        assert cfg.seed == 0

    def test_invalid_selector_rejected(self):
        with pytest.raises(ReproError):
            EngineConfig(plan_selector="bogus")

    def test_invalid_regret_cap_rejected(self):
        with pytest.raises(ExecutionError):
            EngineConfig(regret_cap=0.5)

    def test_env_wiring(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_SELECTOR", "pessimistic")
        monkeypatch.setenv("REPRO_REGRET_CAP", "3.5")
        monkeypatch.setenv("REPRO_SEED", "11")
        cfg = EngineConfig.from_env()
        assert cfg.plan_selector == "pessimistic"
        assert cfg.regret_cap == 3.5
        assert cfg.seed == 11

    def test_database_builds_the_configured_selector(self):
        assert Database().plan_selector.name == "cost"
        db = Database(plan_selector="bandit", regret_cap=4.0)
        assert db.plan_selector.name == "bandit"
        assert db.plan_selector.regret_cap == 4.0
        assert Database(plan_selector="pessimistic").plan_selector.name \
            == "pessimistic"


# ----------------------------------------------------------------------
# Pipeline integration: per-arm cache, telemetry, EXPLAIN, executors
# ----------------------------------------------------------------------
SQL = ("SELECT small.id, big.tag FROM small, mid, big "
       "WHERE small.k = mid.k AND mid.id = big.k")


class TestPipelineIntegration:
    def test_cost_selector_keeps_legacy_cache_keys(self):
        db = _skewed_db()
        db.execute(SQL)
        keys = list(db.pipeline.plan_cache._entries)
        assert keys and all(len(k) == 2 for k in keys), keys

    def test_per_arm_cache_entries(self):
        db = _skewed_db(plan_selector="bandit", seed=3)
        db.execute(SQL)
        keys = list(db.pipeline.plan_cache._entries)
        arms = {k[2] for k in keys if len(k) == 3}
        expected = {a.name for a in db.plan_selector.arms(None)}
        assert arms == expected, (arms, expected)
        # Warm rerun: selection still runs, planning hits per-arm cache.
        res = db.execute(SQL)
        assert res.pipeline_telemetry.cache_outcome == "hit"
        assert res.pipeline_telemetry.arm in expected

    def test_scoped_invalidation_drops_all_arms_of_a_query(self):
        db = _skewed_db(plan_selector="bandit", seed=3)
        db.execute(SQL)
        db.execute("INSERT INTO mid VALUES (1000, 1, 1.0)")
        res = db.execute(SQL)
        assert res.pipeline_telemetry.cache_outcome == "invalidated"
        assert res.pipeline_telemetry.invalidation_cause == "table:mid"

    def test_telemetry_carries_arm_and_bound(self):
        db = _skewed_db(plan_selector="bandit", seed=3)
        res = db.execute(SQL)
        t = res.pipeline_telemetry
        assert t.arm is not None
        assert t.arm_est_cost >= 1.0
        assert t.ues_bound is not None and t.ues_bound >= 1.0
        assert t.selection_features is not None
        summary = t.summary()
        assert summary["arm"] == t.arm
        assert summary["ues_bound"] == t.ues_bound

    def test_cost_selector_telemetry_has_no_arm(self):
        db = _skewed_db()
        res = db.execute(SQL)
        assert res.pipeline_telemetry.arm is None
        assert res.pipeline_telemetry.summary()["arm"] is None

    def test_explain_and_analyze_report_the_arm(self):
        db = _skewed_db(plan_selector="pessimistic")
        ex = db.explain(SQL)
        assert ex.arm == "ues"
        assert "Arm: ues" in ex.text
        ana = db.explain_analyze(SQL)
        assert ana.arm == "ues"
        assert "Arm: ues" in ana.text
        assert "Arm wins:" in ana.text

    def test_explain_default_selector_text_unchanged(self):
        db = _skewed_db()
        ex = db.explain(SQL)
        assert ex.arm is None
        assert "Arm" not in ex.text

    def test_bandit_trains_online_from_total_work(self):
        db = _skewed_db(plan_selector="bandit", seed=1)
        for __ in range(8):
            db.execute(SQL)
        stats = db.plan_selector.stats()
        assert stats["selections"] == 8
        assert sum(st["observes"] for st in stats["arms"].values()) == 8
        assert sum(st["picks"] for st in stats["arms"].values()) == 8

    def test_snapshot_runs_do_not_train_the_bandit(self):
        db = _skewed_db(plan_selector="bandit", seed=1)
        db.execute(SQL)
        before = db.plan_selector.stats()
        snap = db.snapshot()
        snap.execute(SQL)
        after = db.plan_selector.stats()
        assert sum(st["observes"] for st in after["arms"].values()) == \
            sum(st["observes"] for st in before["arms"].values())

    def test_executor_for_resolves_execution_hints(self):
        db = _skewed_db()
        assert db.executor_for(None) is db.executor
        assert db.executor_for(HintSet(name="inherit")) is db.executor
        nofuse = db.executor_for(HintSet(name="nf", fusion=False))
        assert nofuse is not db.executor
        assert nofuse.fusion_enabled is False
        assert db.executor_for(HintSet(name="nf2", fusion=False)) is nofuse
        par = db.executor_for(HintSet(name="p", parallel=True))
        assert par.mode == "parallel"

    def test_prepared_queries_carry_the_arm(self):
        db = _skewed_db(plan_selector="pessimistic")
        prepared = db.pipeline.prepare_sql(SQL)
        assert prepared.hints is not None
        assert prepared.hints.name == "ues"
        result = db.pipeline.execute_prepared(prepared)
        assert result.pipeline_telemetry.arm == "ues"
        assert db.plan_selector.stats()["arms"]["ues"]["observes"] == 1

    def test_same_seed_same_selection_sequence(self):
        runs = []
        for __ in range(2):
            db = _skewed_db(plan_selector="bandit", seed=9)
            arms = []
            for i in range(10):
                res = db.execute(SQL)
                arms.append(res.pipeline_telemetry.arm)
            runs.append(arms)
        assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# Dropped-table regression: CatalogError, never KeyError
# ----------------------------------------------------------------------
class TestDroppedTableRegression:
    @pytest.mark.parametrize("selector", PLAN_SELECTORS)
    def test_explain_after_drop_raises_catalog_error(self, selector):
        db = _skewed_db(plan_selector=selector)
        db.explain(SQL)
        db.catalog.drop_table("mid")
        with pytest.raises(CatalogError):
            db.explain(SQL)

    @pytest.mark.parametrize("selector", PLAN_SELECTORS)
    def test_run_after_drop_raises_catalog_error(self, selector):
        db = _skewed_db(plan_selector=selector)
        query = _join_query()
        db.run_query_object(query)
        db.catalog.drop_table("big")
        with pytest.raises(CatalogError):
            db.run_query_object(query)

    def test_plan_candidates_after_drop_raises_catalog_error(self):
        db = _skewed_db()
        query = _join_query()
        arms = default_arms()
        assert len(db.planner.plan_candidates(query, arms)) == len(arms)
        db.catalog.drop_table("small")
        with pytest.raises(CatalogError):
            db.planner.plan_candidates(query, arms)


# ----------------------------------------------------------------------
# Feedback drift wiring
# ----------------------------------------------------------------------
def test_feedback_drift_reaches_the_selector():
    db = _skewed_db(plan_selector="bandit", seed=5, feedback_enabled=True)
    assert db.feedback is not None
    # The database wired the selector's demotion hook at construction.
    assert db.plan_selector.note_drift in db.feedback.drift_listeners
    seen = []
    db.feedback.drift_listeners.append(lambda tables: seen.append(tables))
    # A drifting observation: estimate off by >= 2x on a fresh signature.
    q = ConjunctiveQuery(
        tables=["mid"], predicates=[Predicate("mid", "k", "=", 0)]
    )
    drifted = db.feedback.observe(q, ["mid"], est_rows=1.0, actual_rows=60)
    assert drifted is True
    assert seen and "mid" in {t.lower() for t in seen[0]}
