"""Admission-accounting and serving-layer property tests (PR 8).

The properties this file pins down, mostly with a **manual clock** so
nothing depends on wall time:

* **Quota conservation** — for every tenant whose tickets were all
  settled, ``charged - refunded == settled_work``, and through the
  server the settled work equals the sum of the executor's measured
  ``ExecutionTelemetry.total_work`` (estimates are the admission
  currency, actuals are the settlement).
* **No starvation under fair-share** — with two tenants queued, grants
  alternate round-robin; a flooding tenant cannot push the other's
  waiters behind its own backlog (asserted on grant *order*, not
  latency).
* **Shed never blocks** — policy ``"shed"`` raises
  :class:`AdmissionError` immediately for an over-quota tenant; no
  waiter is ever parked.
* **Tenant isolation** — an over-quota tenant's debt affects only its
  own bucket: a well-behaved tenant is admitted without queueing and
  its warm plan-cache hits stay intact.

Plus the server plumbing around those invariants: commit-log growth on
the single-writer path, session isolation levels, closed-session
errors, and the ``REPRO_ADMISSION_*`` environment knobs.
"""

import threading

import pytest

from repro.common import CatalogError, ExecutionError, ReproError
from repro.engine import Database, EngineConfig, QueryServer
from repro.engine.server import (
    AdmissionController,
    AdmissionError,
    TokenBucket,
)


class ManualClock:
    """A deterministic time source tests advance by hand."""

    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += float(dt)


def _serving_db():
    db = Database()
    db.execute("CREATE TABLE a (id INT, k INT, v FLOAT)")
    db.catalog.table("a").insert_rows(
        [(i, i % 7, float(i % 11)) for i in range(400)]
    )
    db.execute("ANALYZE")
    return db


# ----------------------------------------------------------------------
# TokenBucket unit behaviour
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_charges_down(self):
        b = TokenBucket(100.0, 10.0, now=0.0)
        assert b.tokens == 100.0
        assert b.can_pay(100.0)
        b.charge(60.0)
        assert b.tokens == 40.0
        assert not b.can_pay(50.0)

    def test_refill_is_capped_at_capacity(self):
        b = TokenBucket(100.0, 10.0, now=0.0)
        b.charge(30.0)
        b.refill(5.0)  # +50 would overshoot; capped at 100
        assert b.tokens == 100.0

    def test_balance_may_go_negative_and_must_be_paid_off(self):
        b = TokenBucket(100.0, 10.0, now=0.0)
        b.charge(100.0)
        b.deposit(100.0 - 250.0)  # settled 250 actual vs 100 estimate
        assert b.tokens == -150.0
        b.refill(10.0)  # +100 refill: still in debt
        assert b.tokens == -50.0
        assert not b.can_pay(1.0)
        b.refill(20.0)
        assert b.tokens == 50.0
        assert b.can_pay(50.0)

    def test_over_capacity_query_admissible_at_full_bucket(self):
        """A query costing more than the whole quota must still be
        runnable — at a full bucket — or it could never run at all."""
        b = TokenBucket(100.0, 10.0, now=0.0)
        assert b.can_pay(1e9)
        b.charge(1e9)
        assert b.tokens < 0
        assert not b.can_pay(1.0)

    def test_deposit_capped_at_capacity(self):
        b = TokenBucket(100.0, 10.0, now=0.0)
        b.charge(10.0)
        b.deposit(500.0)
        assert b.tokens == 100.0

    def test_validation(self):
        with pytest.raises(ExecutionError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ExecutionError):
            TokenBucket(10.0, -1.0)


# ----------------------------------------------------------------------
# AdmissionController properties (manual clock; no wall time)
# ----------------------------------------------------------------------
class TestQuotaConservation:
    def test_charged_minus_refunded_equals_settled_work(self):
        clock = ManualClock()
        ctl = AdmissionController(
            policy="fifo", tenant_quota=1000.0, quota_refill_rate=0.0,
            clock=clock,
        )
        # Mix of over- and under-estimates; all settled.
        cases = [(100.0, 40.0), (50.0, 125.0), (10.0, 10.0), (200.0, 0.0)]
        for est, actual in cases:
            ticket = ctl.admit("t", est)
            ctl.settle(ticket, actual)
        stats = ctl.stats()["t"]
        assert stats["charged"] - stats["refunded"] == pytest.approx(
            stats["settled_work"]
        )
        assert stats["settled_work"] == pytest.approx(
            sum(actual for __, actual in cases)
        )
        # Net balance drop equals net work consumed.
        assert ctl.balance("t") == pytest.approx(
            1000.0 - sum(actual for __, actual in cases)
        )

    def test_settle_is_idempotent(self):
        ctl = AdmissionController(
            policy="fifo", tenant_quota=1000.0, quota_refill_rate=0.0,
            clock=ManualClock(),
        )
        ticket = ctl.admit("t", 100.0)
        ctl.settle(ticket, 30.0)
        before = ctl.balance("t")
        ctl.settle(ticket, 30.0)
        ctl.cancel(ticket)
        assert ctl.balance("t") == before

    def test_cancel_refunds_the_full_charge(self):
        ctl = AdmissionController(
            policy="fifo", tenant_quota=1000.0, quota_refill_rate=0.0,
            clock=ManualClock(),
        )
        ticket = ctl.admit("t", 123.0)
        ctl.cancel(ticket)
        assert ctl.balance("t") == pytest.approx(1000.0)
        stats = ctl.stats()["t"]
        assert stats["charged"] == pytest.approx(stats["refunded"])
        assert stats["settled_work"] == 0.0

    def test_conservation_through_the_server(self):
        """Server-level conservation: the tenant's net charge equals the
        sum of the executor's measured total_work per query."""
        server = QueryServer(
            _serving_db(), tenant_quota=1e9, quota_refill_rate=0.0,
        )
        sess = server.session(tenant="t")
        total = 0.0
        for sql in (
            "SELECT COUNT(*) FROM a",
            "SELECT COUNT(*) FROM a WHERE k = 3",
            "SELECT k, COUNT(*) FROM a GROUP BY k ORDER BY k",
            "SELECT COUNT(*) FROM a WHERE k = 3",  # warm plan
        ):
            result = sess.execute(sql)
            assert result.admission.settled
            total += result.telemetry.total_work
        stats = server.admission.stats()["t"]
        assert stats["settled_work"] == pytest.approx(total)
        assert stats["charged"] - stats["refunded"] == pytest.approx(total)
        assert server.admission.balance("t") == pytest.approx(1e9 - total)
        # The rollup saw the same work.
        rollup = server.rollup.summary()["tenants"]["t"]
        assert rollup["total_work"] == pytest.approx(total)
        assert rollup["queries"] == 4

    def test_write_path_settles_at_flat_cost(self):
        server = QueryServer(
            _serving_db(), tenant_quota=1e6, quota_refill_rate=0.0,
            write_cost=64.0,
        )
        sess = server.session(tenant="w")
        sess.execute("CREATE TABLE z (id INT)")
        sess.insert_rows("z", [(1,), (2,)])
        stats = server.admission.stats()["w"]
        assert stats["charged"] == pytest.approx(128.0)
        assert stats["settled_work"] == pytest.approx(128.0)
        assert stats["refunded"] == pytest.approx(0.0)


def _wait_until(predicate, timeout=5.0, tick=0.005):
    """Poll ``predicate`` until true (assert) — bounded, never sleeps long."""
    deadline = int(timeout / tick)
    while not predicate():
        assert deadline > 0, "condition not reached within %.1fs" % timeout
        threading.Event().wait(tick)
        deadline -= 1


class TestFairShareNoStarvation:
    def _controller(self, clock, **kwargs):
        defaults = dict(
            policy="fair-share", tenant_quota=100.0, quota_refill_rate=0.0,
            timeout=10.0, clock=clock,
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_grants_alternate_between_tenants(self):
        """Hog has 4 waiters queued, meek has 2; each refill lap must
        grant one query **per tenant** — meek is never starved behind
        hog's backlog. Fully deterministic: the manual clock meters out
        exactly enough tokens for one 50-cost grant per tenant per kick,
        so the admitted counters after each kick are forced, not raced.
        """
        clock = ManualClock()
        ctl = self._controller(clock, quota_refill_rate=50.0, timeout=60.0)
        # Drive both tenants into identical debt (-100 tokens each).
        for tenant in ("hog", "meek"):
            t = ctl.admit(tenant, 100.0)
            ctl.settle(t, 200.0)
            assert ctl.balance(tenant) == pytest.approx(-100.0)

        def waiter(tenant):
            ticket = ctl.admit(tenant, 50.0)
            # actual == cost: settle leaves the bucket where the charge
            # put it, so only clock advances mint new tokens.
            ctl.settle(ticket, 50.0)

        threads = [
            threading.Thread(target=waiter, args=("hog",), daemon=True)
            for __ in range(4)
        ] + [
            threading.Thread(target=waiter, args=("meek",), daemon=True)
            for __ in range(2)
        ]
        for t in threads:
            t.start()
        _wait_until(lambda: ctl.queue_depth_now() == 6)

        def admitted(tenant):
            return ctl.stats()[tenant]["admitted"] - 1  # minus the drain

        # Lap 1: +150 tokens each (-100 -> 50): exactly one grant per
        # tenant is affordable. If fair-share were broken (e.g. strict
        # arrival order), both grants could go to hog — the counters
        # below would never reach (1, 1).
        clock.advance(3.0)
        ctl.kick()
        _wait_until(lambda: admitted("hog") == 1 and admitted("meek") == 1)
        assert ctl.queue_depth_now() == 4
        # No further grants are possible without another advance.
        threading.Event().wait(0.02)
        assert admitted("hog") == 1 and admitted("meek") == 1

        # Lap 2: +50 each (0 -> 50): again one per tenant.
        clock.advance(1.0)
        ctl.kick()
        _wait_until(lambda: admitted("hog") == 2 and admitted("meek") == 2)
        assert ctl.queue_depth_now() == 2

        # Meek's queue is now empty; hog drains alone.
        clock.advance(1.0)
        ctl.kick()
        _wait_until(lambda: admitted("hog") == 3)
        clock.advance(1.0)
        ctl.kick()
        _wait_until(lambda: admitted("hog") == 4)
        assert ctl.queue_depth_now() == 0
        for t in threads:
            t.join(timeout=5.0)
        assert all(not t.is_alive() for t in threads)
        stats = ctl.stats()
        assert stats["meek"]["queued"] == 2
        assert stats["meek"]["shed"] == 0

    def test_fifo_head_of_line_contrast(self):
        """The hazard fair-share fixes: under fifo, a broke tenant at the
        head blocks a payable tenant behind it until refill arrives."""
        clock = ManualClock()
        ctl = AdmissionController(
            policy="fifo", tenant_quota=100.0, quota_refill_rate=50.0,
            timeout=60.0, clock=clock,
        )
        broke = ctl.admit("broke", 100.0)
        ctl.settle(broke, 500.0)  # deep debt: -400 tokens
        assert ctl.balance("broke") < 0

        def waiter(tenant):
            ticket = ctl.admit(tenant, 10.0)
            ctl.settle(ticket, 10.0)

        t1 = threading.Thread(target=waiter, args=("broke",), daemon=True)
        t1.start()
        _wait_until(lambda: ctl.queue_depth_now() == 1)
        # "rich" could pay immediately, but fifo parks it behind "broke":
        # the manual clock mints no tokens, so rich must still be waiting.
        t2 = threading.Thread(target=waiter, args=("rich",), daemon=True)
        t2.start()
        _wait_until(lambda: ctl.queue_depth_now() == 2)
        threading.Event().wait(0.03)
        assert ctl.stats()["rich"]["admitted"] == 0  # blocked head-of-line
        assert ctl.queue_depth_now() == 2
        # Refill pays off broke's debt; both then drain in arrival order.
        clock.advance(1e6)
        ctl.kick()
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert not t1.is_alive() and not t2.is_alive()
        assert ctl.stats()["rich"]["admitted"] == 1
        assert ctl.stats()["broke"]["admitted"] == 2

    def test_fair_share_skips_broke_tenant(self):
        """Same setup as the fifo contrast: fair-share grants the payable
        tenant straight past the broke one's waiter."""
        clock = ManualClock()
        ctl = self._controller(clock, quota_refill_rate=50.0, timeout=15.0)
        broke = ctl.admit("broke", 100.0)
        ctl.settle(broke, 500.0)
        results = {}

        def first():
            try:
                results["broke"] = ctl.admit("broke", 10.0)
            except AdmissionError as exc:
                results["broke"] = exc

        t1 = threading.Thread(target=first, daemon=True)
        t1.start()
        while ctl.queue_depth_now() < 1:
            threading.Event().wait(0.005)
        ticket = ctl.admit("rich", 10.0)
        assert ticket.outcome in ("admitted", "queued")
        ctl.settle(ticket, 10.0)
        # Unblock the broke waiter so the thread exits.
        clock.advance(1e9)
        ctl.kick()
        t1.join(timeout=5.0)
        assert not t1.is_alive()


class TestShedNeverBlocks:
    def test_over_quota_raises_immediately(self):
        clock = ManualClock()
        ctl = AdmissionController(
            policy="shed", tenant_quota=100.0, quota_refill_rate=0.0,
            clock=clock,
        )
        ticket = ctl.admit("t", 100.0)
        ctl.settle(ticket, 100.0)
        with pytest.raises(AdmissionError):
            ctl.admit("t", 50.0)
        assert ctl.queue_depth_now() == 0
        stats = ctl.stats()["t"]
        assert stats["shed"] == 1
        assert stats["queued"] == 0

    def test_shed_through_the_server(self):
        server = QueryServer(
            _serving_db(), admission_policy="shed", tenant_quota=10.0,
            quota_refill_rate=0.0,
        )
        sess = server.session(tenant="t")
        with pytest.raises(AdmissionError):
            for __ in range(100):
                sess.query("SELECT COUNT(*) FROM a")
        stats = server.admission.stats()["t"]
        assert stats["shed"] >= 1
        # Shed outcomes are visible in the rollup too.
        outcomes = server.rollup.summary()["tenants"]["t"]["outcomes"]
        assert outcomes.get("shed", 0) >= 1

    def test_queue_full_sheds_even_under_queueing_policies(self):
        clock = ManualClock()
        ctl = AdmissionController(
            policy="fifo", tenant_quota=10.0, quota_refill_rate=10.0,
            queue_depth=1, timeout=15.0, clock=clock,
        )
        first = ctl.admit("t", 10.0)
        ctl.settle(first, 50.0)  # debt; everything below must queue

        parked = threading.Event()

        def waiter():
            parked.set()
            try:
                ticket = ctl.admit("t", 5.0)
                ctl.settle(ticket, 5.0)
            except AdmissionError:
                pass

        t1 = threading.Thread(target=waiter, daemon=True)
        t1.start()
        parked.wait()
        while ctl.queue_depth_now() < 1:
            threading.Event().wait(0.005)
        with pytest.raises(AdmissionError, match="queue full"):
            ctl.admit("t", 5.0)
        clock.advance(1e9)
        ctl.kick()
        t1.join(timeout=5.0)


class TestTenantIsolation:
    def test_over_quota_tenant_cannot_degrade_another(self):
        """Tenant A burns through its quota; tenant B (same server, same
        plan cache) must still be admitted without queueing, with its
        warm-plan hits intact.

        The quota (6000 work units, no refill) is sized so A's ~807-work
        group-by floods over it within a dozen statements while B's
        eleven 458-work point lookups fit comfortably.
        """
        server = QueryServer(
            _serving_db(), admission_policy="fair-share",
            tenant_quota=6000.0, quota_refill_rate=0.0,
            admission_timeout=0.05,
        )
        b_sess = server.session(tenant="B")
        b_sess.query("SELECT COUNT(*) FROM a WHERE k = 3")  # warm the plan
        server.db.pipeline.plan_cache.reset_counters()

        a_sess = server.session(tenant="A")
        a_shed = 0
        for __ in range(12):
            try:
                a_sess.query("SELECT k, COUNT(*) FROM a GROUP BY k")
            except AdmissionError:
                a_shed += 1
        # A actually hit the wall: its bucket can no longer pay.
        a_stats = server.admission.stats()["A"]
        assert a_shed > 0, a_stats
        assert a_stats["timed_out"] == a_shed
        assert server.admission.balance("A") < 820.0

        for __ in range(10):
            result = b_sess.execute("SELECT COUNT(*) FROM a WHERE k = 3")
            assert result.admission.outcome == "admitted"
            assert result.admission.queue_wait == 0.0
            assert result.rows == [(57,)]
        b_stats = server.admission.stats()["B"]
        assert b_stats["queued"] == 0
        assert b_stats["shed"] == 0
        assert b_stats["admitted"] == 11
        # B's plans stayed warm — A's flood didn't evict or invalidate.
        assert server.db.pipeline.plan_cache.stats()["hits"] >= 10

    def test_debt_is_charged_to_the_misestimated_tenant_only(self):
        clock = ManualClock()
        ctl = AdmissionController(
            policy="fair-share", tenant_quota=100.0, quota_refill_rate=0.0,
            clock=clock,
        )
        bad = ctl.admit("bad", 10.0)
        ctl.settle(bad, 400.0)  # 40x under-estimate
        assert ctl.balance("bad") < 0
        assert ctl.balance("good") == pytest.approx(100.0)
        ticket = ctl.admit("good", 100.0)
        assert ticket.outcome == "admitted"
        ctl.settle(ticket, 100.0)


# ----------------------------------------------------------------------
# Server plumbing around the admission core
# ----------------------------------------------------------------------
class TestServerSurface:
    def test_commit_log_grows_per_write_and_versions_match(self):
        db = _serving_db()
        server = QueryServer(db)
        base_len = len(server.commit_history())
        sess = server.session(tenant="t")
        sess.execute("CREATE TABLE c (id INT)")
        sess.insert_rows("c", [(1,)])
        sess.execute("INSERT INTO c VALUES (2)")
        history = server.commit_history()
        assert len(history) == base_len + 3
        seqs = [seq for seq, __ in history]
        assert seqs == sorted(seqs)
        # The final logged vector is the live catalog's vector.
        assert history[-1][1] == dict(db.catalog.version_vector())
        # Reads see the committed rows.
        assert sess.query("SELECT COUNT(*) FROM c") == [(2,)]

    def test_session_isolation_pins_and_rejects_writes(self):
        server = QueryServer(_serving_db())
        writer = server.session(tenant="w")
        pinned = server.session(tenant="r", isolation="session")
        before = pinned.query("SELECT COUNT(*) FROM a")
        writer.insert_rows("a", [(9999, 1, 0.5)])
        assert pinned.query("SELECT COUNT(*) FROM a") == before
        assert writer.query("SELECT COUNT(*) FROM a")[0][0] == before[0][0] + 1
        with pytest.raises(ExecutionError, match="read-only"):
            pinned.execute("INSERT INTO a VALUES (1, 1, 1.0)")
        with pytest.raises(ExecutionError, match="read-only"):
            pinned.insert_rows("a", [(1, 1, 1.0)])

    def test_statement_isolation_sees_each_commit(self):
        server = QueryServer(_serving_db())
        sess = server.session(tenant="t")
        n0 = sess.query("SELECT COUNT(*) FROM a")[0][0]
        sess.insert_rows("a", [(10_000, 0, 0.0)])
        assert sess.query("SELECT COUNT(*) FROM a")[0][0] == n0 + 1

    def test_closed_session_raises(self):
        server = QueryServer(_serving_db())
        with server.session(tenant="t") as sess:
            sess.query("SELECT COUNT(*) FROM a")
        with pytest.raises(ExecutionError, match="closed"):
            sess.query("SELECT COUNT(*) FROM a")

    def test_invalid_isolation_rejected(self):
        server = QueryServer(_serving_db())
        with pytest.raises(ExecutionError, match="isolation"):
            server.session(tenant="t", isolation="snapshotty")

    def test_db_and_config_are_mutually_exclusive(self):
        db = Database()
        with pytest.raises(ExecutionError):
            QueryServer(db, config=EngineConfig())

    def test_one_shot_execute_convenience(self):
        server = QueryServer(_serving_db())
        result = server.execute("SELECT COUNT(*) FROM a", tenant="x")
        assert result.rows == [(400,)]
        assert "x" in server.admission.stats()

    def test_snapshot_versions_surface(self):
        server = QueryServer(_serving_db())
        live = server.session(tenant="t")
        pinned = server.session(tenant="t", isolation="session")
        v0 = pinned.snapshot_versions()
        live.insert_rows("a", [(5000, 0, 0.0)])
        assert pinned.snapshot_versions() == v0
        assert live.snapshot_versions() != v0

    def test_execution_failure_cancels_the_ticket(self, monkeypatch):
        """A query that fails *after* admission must refund its charge
        (cancel), or the tenant slowly leaks quota on errors."""
        server = QueryServer(
            _serving_db(), tenant_quota=1e6, quota_refill_rate=0.0,
        )
        sess = server.session(tenant="t")

        def boom(*args, **kwargs):
            raise ExecutionError("injected executor failure")

        monkeypatch.setattr(server.db.executor, "execute", boom)
        with pytest.raises(ExecutionError, match="injected"):
            sess.query("SELECT COUNT(*) FROM a")
        assert server.admission.balance("t") == pytest.approx(1e6)
        stats = server.admission.stats()["t"]
        assert stats["charged"] == pytest.approx(stats["refunded"])
        assert stats["settled_work"] == 0.0

    def test_pre_admission_errors_charge_nothing(self):
        server = QueryServer(
            _serving_db(), tenant_quota=1e6, quota_refill_rate=0.0,
        )
        sess = server.session(tenant="t")
        with pytest.raises(CatalogError):
            sess.query("SELECT COUNT(*) FROM nope")
        # Parse/plan failures never reach admission: no tenant state.
        assert "t" not in server.admission.stats()


class TestConfigPlumbing:
    def test_env_knobs_flow_into_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION_POLICY", "fair-share")
        monkeypatch.setenv("REPRO_TENANT_QUOTA", "12345")
        monkeypatch.setenv("REPRO_QUOTA_REFILL", "678")
        monkeypatch.setenv("REPRO_ADMISSION_QUEUE_DEPTH", "9")
        config = EngineConfig.from_env()
        assert config.admission_policy == "fair-share"
        assert config.tenant_quota == 12345.0
        assert config.quota_refill_rate == 678.0
        assert config.admission_queue_depth == 9
        server = QueryServer(config=config)
        assert server.admission.policy == "fair-share"
        assert server.admission.tenant_quota == 12345.0
        assert server.admission.quota_refill_rate == 678.0
        assert server.admission.queue_depth == 9

    def test_invalid_env_policy_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADMISSION_POLICY", "lottery")
        with pytest.raises(ReproError):
            EngineConfig.from_env()

    def test_config_validation(self):
        with pytest.raises(ReproError):
            EngineConfig(admission_policy="nope")
        with pytest.raises(ReproError):
            EngineConfig(tenant_quota=0)
        with pytest.raises(ReproError):
            EngineConfig(quota_refill_rate=-1)
        with pytest.raises(ReproError):
            EngineConfig(admission_queue_depth=0)

    def test_kwargs_override_config(self):
        config = EngineConfig(admission_policy="fifo", tenant_quota=111.0)
        server = QueryServer(config=config, admission_policy="shed",
                             tenant_quota=222.0)
        assert server.admission.policy == "shed"
        assert server.admission.tenant_quota == 222.0
