"""API-surface regression test for the public ``repro.engine`` package.

Guards two properties: every name in ``repro.engine.__all__`` actually
resolves (no stale exports after refactors), and the names this PR's API
redesign promises — ``EngineConfig``, ``ExplainResult``,
``FusedPipelineOp``, ``fuse_plan`` — stay exported alongside the
long-standing surface the AI4DB/DB4AI layers import.
"""

import inspect

import repro.engine as engine

#: Names that must stay in ``repro.engine.__all__``; a superset check so
#: additive growth does not churn this test.
REQUIRED_EXPORTS = {
    # schema / storage / stats
    "ColumnSchema", "DataType", "TableSchema", "Table", "PAGE_BYTES",
    "ColumnStats", "EquiDepthHistogram", "TableStats",
    # query model + catalog
    "Aggregate", "ConjunctiveQuery", "JoinEdge", "Predicate",
    "Catalog", "IndexDef", "ViewDef",
    # indexes
    "BPlusTree", "HashIndex",
    # execution + configuration (this PR's redesigned surface)
    "EXECUTOR_MODES", "EngineConfig", "ExecutionResult", "Executor",
    "ExplainResult", "FusedPipelineOp", "Relation", "count_join_rows",
    "fuse_plan",
    # pipeline + parallelism
    "MorselPool", "MorselQueue", "morsel_slices",
    "PIPELINE_STAGES", "PlanCache", "QueryPipeline",
    # façade
    "Database",
    # knobs + transactions + helpers
    "KnobSpec", "KnobResponseSimulator", "WorkloadProfile",
    "default_knobs", "executor_knobs", "executor_params",
    "standard_workloads",
    "Transaction", "LockTableSimulator", "ScheduleResult",
    "hotspot_workload", "fifo_schedule", "cost_ordered_schedule",
    "datagen", "telemetry",
}


def test_all_names_resolve():
    for name in engine.__all__:
        assert getattr(engine, name, None) is not None, (
            "repro.engine.__all__ exports %r but the attribute is missing"
            % name
        )


def test_all_has_no_duplicates():
    assert len(engine.__all__) == len(set(engine.__all__))


def test_required_surface_present():
    missing = REQUIRED_EXPORTS - set(engine.__all__)
    assert not missing, "missing from repro.engine.__all__: %s" % sorted(
        missing
    )


def test_new_exports_are_the_right_kinds():
    assert inspect.isclass(engine.EngineConfig)
    assert inspect.isclass(engine.ExplainResult)
    assert inspect.isclass(engine.FusedPipelineOp)
    assert callable(engine.fuse_plan)
    # EngineConfig is the documented primary Database ctor argument.
    sig = inspect.signature(engine.Database.__init__)
    assert "config" in sig.parameters
    assert "fusion_enabled" in sig.parameters
