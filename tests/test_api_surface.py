"""API-surface regression test for the public ``repro.engine`` package.

Guards three properties: every name in ``repro.engine.__all__`` actually
resolves (no stale exports after refactors), the names the API redesigns
promise — the config/fusion surface and now the session layer
(``SessionContext``, ``AgentSession``, ``Policy``, ``AuditLog``, the
``repro.engine.errors`` hierarchy) — stay exported alongside the
long-standing surface the AI4DB/DB4AI layers import, and the error
hierarchy's identity/parentage invariants hold (``repro.common`` and
``repro.engine.errors`` expose the *same* classes, all under
``EngineError``).
"""

import inspect

import repro.common
import repro.engine as engine
import repro.engine.errors as engine_errors

#: Names that must stay in ``repro.engine.__all__``; a superset check so
#: additive growth does not churn this test.
REQUIRED_EXPORTS = {
    # schema / storage / stats
    "ColumnSchema", "DataType", "TableSchema", "Table", "PAGE_BYTES",
    "ColumnStats", "EquiDepthHistogram", "TableStats",
    # query model + catalog
    "Aggregate", "ConjunctiveQuery", "JoinEdge", "Predicate",
    "Catalog", "IndexDef", "ViewDef",
    # indexes
    "BPlusTree", "HashIndex",
    # execution + configuration (this PR's redesigned surface)
    "EXECUTOR_MODES", "EngineConfig", "ExecutionResult", "Executor",
    "ExplainResult", "FusedPipelineOp", "Relation", "count_join_rows",
    "fuse_plan",
    # pipeline + parallelism
    "MorselPool", "MorselQueue", "morsel_slices",
    "PIPELINE_STAGES", "PlanCache", "QueryPipeline",
    # façade
    "Database",
    # knobs + transactions + helpers
    "KnobSpec", "KnobResponseSimulator", "WorkloadProfile",
    "default_knobs", "executor_knobs", "executor_params",
    "standard_workloads",
    "Transaction", "LockTableSimulator", "ScheduleResult",
    "hotspot_workload", "fifo_schedule", "cost_ordered_schedule",
    "datagen", "telemetry",
    # session layer (this PR's redesigned surface)
    "SessionContext", "AgentSession", "SessionResult", "Policy",
    "PolicyDecision", "AuditLog", "AuditRecord", "DryRunReport",
    "StatementPreview", "StatementInfo", "split_script",
    "EngineError", "PolicyError", "SessionError", "AdmissionError",
    "TableRestorePoint", "CatalogRestorePoint",
}


def test_all_names_resolve():
    for name in engine.__all__:
        assert getattr(engine, name, None) is not None, (
            "repro.engine.__all__ exports %r but the attribute is missing"
            % name
        )


def test_all_has_no_duplicates():
    assert len(engine.__all__) == len(set(engine.__all__))


def test_required_surface_present():
    missing = REQUIRED_EXPORTS - set(engine.__all__)
    assert not missing, "missing from repro.engine.__all__: %s" % sorted(
        missing
    )


def test_new_exports_are_the_right_kinds():
    assert inspect.isclass(engine.EngineConfig)
    assert inspect.isclass(engine.ExplainResult)
    assert inspect.isclass(engine.FusedPipelineOp)
    assert callable(engine.fuse_plan)
    # EngineConfig is the documented primary Database ctor argument.
    sig = inspect.signature(engine.Database.__init__)
    assert "config" in sig.parameters
    assert "fusion_enabled" in sig.parameters


def test_session_surface_present():
    assert inspect.isclass(engine.SessionContext)
    assert inspect.isclass(engine.AgentSession)
    assert issubclass(engine.AgentSession, engine.SessionContext)
    assert inspect.isclass(engine.Policy)
    assert inspect.isclass(engine.AuditLog)
    assert callable(engine.split_script)
    # The session entry points on the three facades.
    for owner, name in [
        (engine.Database, "session"),
        (engine.Database, "agent_session"),
        (engine.DatabaseSnapshot, "session"),
        (engine.QueryServer, "agent_session"),
        (engine.Session, "session_context"),
    ]:
        assert callable(getattr(owner, name)), "%s.%s missing" % (
            owner.__name__, name)


def test_error_hierarchy_identity():
    """repro.common and repro.engine.errors expose the same classes."""
    for name in ("ReproError", "EngineError", "CatalogError", "ParseError",
                 "PlanError", "ExecutionError"):
        assert getattr(repro.common, name) is getattr(engine_errors, name), (
            "repro.common.%s is not repro.engine.errors.%s" % (name, name))


def test_error_hierarchy_parentage():
    E = engine_errors
    # One family: catch EngineError, get every engine failure.
    for cls in (E.CatalogError, E.ParseError, E.PlanError,
                E.ExecutionError, E.PolicyError, E.SessionError,
                E.AdmissionError):
        assert issubclass(cls, E.EngineError), cls
        assert issubclass(cls, E.ReproError), cls
    # AdmissionError kept its historical ExecutionError parent.
    assert issubclass(E.AdmissionError, E.ExecutionError)
    # The server package re-exports the same class object.
    assert engine.AdmissionError is E.AdmissionError
    # ParseError keeps its position attribute contract.
    err = E.ParseError("boom", 7)
    assert err.position == 7
