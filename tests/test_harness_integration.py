"""Harness registry tests + cross-subsystem integration tests."""

import numpy as np
import pytest

from repro.common import ReproError, ResultTable
from repro.harness import all_experiments, get_experiment, run_experiment


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = {spec.exp_id for spec in all_experiments()}
        expected = {"F1"} | {"E%d" % i for i in range(1, 18)}
        assert ids == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("e6").exp_id == "E6"

    def test_unknown_experiment(self):
        with pytest.raises(ReproError):
            get_experiment("E99")

    def test_specs_have_claims(self):
        for spec in all_experiments():
            assert spec.title
            assert spec.claim

    def test_f1_taxonomy_fully_covered(self):
        tables = run_experiment("F1", fast=True, show=False)
        assert len(tables) == 1
        assert all(tables[0].column("present"))
        # Figure 1 has ~30 leaf boxes; every one must be mapped.
        assert len(tables[0]) >= 30


class TestFastExperiments:
    """Each experiment must run in fast mode and return well-formed tables
    exhibiting its headline claim. These are the repo's own acceptance
    tests for the reproduction."""

    def _run(self, exp_id):
        tables = run_experiment(exp_id, seed=0, fast=True, show=False)
        assert tables
        for t in tables:
            assert isinstance(t, ResultTable)
            assert len(t) > 0
        return tables

    def test_e6_learned_beats_histogram_tail(self):
        (main, sweep) = self._run("E6")
        rows = {r[0]: r for r in main.rows}
        hist_q95 = rows["histogram"][3]
        learned_q95 = rows["learned-mscn"][3]
        assert learned_q95 < hist_q95

    def test_e7_mcts_near_dp(self):
        main = self._run("E7")[0]
        for n, method, rel_cost, __ in main.rows:
            if method == "mcts":
                assert rel_cost <= 1.35
            if method == "dp":
                assert rel_cost == pytest.approx(1.0)

    def test_e9_learned_indexes_smaller_than_btree(self):
        tables = self._run("E9")
        for table in tables[:2]:
            sizes = dict(zip(table.column("index"), table.column("size_bytes")))
            assert sizes["rmi"] < sizes["b+tree"] / 10
            assert sizes["pgm"] < sizes["b+tree"] / 10

    def test_e10_search_beats_fixed(self):
        (table,) = self._run("E10")
        for ratio in table.column("searched_vs_best_fixed"):
            assert ratio <= 1.0 + 1e-9

    def test_e11_learned_lowers_waits(self):
        (table,) = self._run("E11")
        rows = {r[0]: r for r in table.rows}
        assert rows["learned"][2] < rows["fifo"][2]  # total_wait

    def test_e13_learned_recall_wins(self):
        t1, __, t3 = self._run("E13")
        rows = {r[0]: r for r in t1.rows}
        assert rows["learned-tree"][2] > rows["signature-rules"][2]
        ac = {r[0]: r for r in t3.rows}
        assert ac["learned"][1] > ac["static-acl"][1]

    def test_e15_materialization_cheaper(self):
        t1 = self._run("E15")[0]
        rows = {r[0]: r for r in t1.rows}
        assert rows["materialize"][1] < rows["recompute"][1]

    def test_e16_pushdown_fewer_expensive_rows(self):
        t2 = self._run("E16")[1]
        rows = {r[0]: r for r in t2.rows}
        assert rows["pushdown"][1] < rows["naive"][1]
        assert rows["cascade"][1] < rows["pushdown"][1]


class TestEndToEndIntegration:
    def test_advisors_then_execution_consistency(self, star_db,
                                                  star_workload):
        """Index + view advisors must not change query answers."""
        from repro.ai4db.config.index_advisor import (
            GreedyIndexAdvisor,
            realize_indexes,
        )
        from repro.ai4db.config.view_advisor import GreedyViewAdvisor

        reference = [
            sorted(star_db.run_query_object(q).rows) for q in star_workload[:5]
        ]
        picks, __ = GreedyIndexAdvisor().recommend(star_db.catalog,
                                                   star_workload, budget=2)
        realize_indexes(star_db.catalog, picks)
        GreedyViewAdvisor().recommend(star_db, star_workload,
                                      space_budget_bytes=50_000_000)
        for q, expected in zip(star_workload[:5], reference):
            assert sorted(star_db.run_query_object(q).rows) == expected

    def test_rewriter_installed_on_database(self, star_db, star_workload):
        """A rewriter installed via the Database hook applies end to end."""
        from repro.engine.optimizer.rules import (
            apply_rules_fixed_order,
            default_rules,
        )

        rules = default_rules()
        star_db.pipeline.rewriter = lambda q: apply_rules_fixed_order(
            q, rules, catalog=star_db.catalog
        )[0]
        q = star_workload[0]
        result = star_db.run_query_object(q)
        assert result.rows  # aggregates always return one row

    def test_aisql_model_through_model_scan_operator(self):
        """Train via AISQL, then use the model in a ModelScan operator."""
        from repro.db4ai.declarative import AISQLExtension
        from repro.db4ai.inference.operators import ModelScanOperator
        from repro.engine import Database

        db = Database()
        db.execute("CREATE TABLE pts (a FLOAT, y FLOAT)")
        rows = ", ".join(
            "(%.3f, %.3f)" % (x, 3 * x + 1) for x in np.linspace(0, 1, 100)
        )
        db.execute("INSERT INTO pts VALUES " + rows)
        db.execute("ANALYZE pts")
        ext = AISQLExtension().install(db)
        db.execute("CREATE MODEL lin KIND linear ON pts TARGET y FEATURES (a)")
        bundle = ext.registry.get("lin").model

        class _Wrapped:
            def predict(self, X):
                return bundle["model"].predict(bundle["scaler"].transform(X))

        op = ModelScanOperator(_Wrapped(), [("pts", "a")])
        __, out = op.apply([("pts", "a")], [(0.5,)])
        assert out[0][-1] == pytest.approx(2.5, abs=0.05)

    def test_knob_simulator_drives_engine_cost_model(self):
        """Knob settings map into engine cost params and change plans' work."""
        from repro.engine import Database, datagen
        from repro.engine.knobs import KnobResponseSimulator

        sim = KnobResponseSimulator(seed=0)
        low_mem = np.zeros(sim.dim)
        high_mem = np.ones(sim.dim)
        works = {}
        for name, vec in (("low", low_mem), ("high", high_mem)):
            params = sim.cost_model_params(vec)
            db = Database(cost_params={
                "work_mem_rows": params["work_mem_rows"],
            })
            datagen.make_star_schema(db.catalog, n_customers=200,
                                     n_products=50, n_dates=30,
                                     n_sales=4000, seed=0)
            from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge

            q = ConjunctiveQuery(
                tables=["customer", "sales"],
                join_edges=[JoinEdge("sales", "s_customer", "customer",
                                     "c_id")],
                aggregates=[Aggregate("count")],
            )
            # Force the 4k-row fact table onto the hash-build side so the
            # work_mem threshold matters.
            works[name] = db.run_query_object(
                q, order=["customer", "sales"]
            ).work
        # Small work_mem must spill on the 4k-row build side.
        assert works["low"] > works["high"]

    def test_lineage_traces_activeclean_fixes(self):
        """Lineage + cleaning integration: trace which source records a
        cleaned training row came from."""
        from repro.db4ai.governance.cleaning import (
            ActiveCleanSession,
            CorruptedDataset,
        )
        from repro.db4ai.governance.lineage import LineageTracker

        dataset = CorruptedDataset(n_rows=300, seed=0)
        tracker = LineageTracker()
        src = tracker.source(
            "train", [{"i": i} for i in range(dataset.n_rows)]
        )
        session = ActiveCleanSession(dataset, batch_size=20, seed=0)
        cleaned = session.step()
        cleaned_view = tracker.filter(
            src, lambda r: r["i"] in set(cleaned), name="cleaned_batch"
        )
        assert len(cleaned_view) == len(cleaned)
        prov = LineageTracker.backward(cleaned_view, 0)
        assert list(prov) == ["train"]
