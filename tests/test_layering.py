"""Import-layering guards.

The dependency direction is one-way: ``repro.ai4db`` and ``repro.db4ai``
build *on* the engine, never the other way around. In particular the
physical-operator layer (``repro.engine.operators``) must stay free of
AI-layer imports, or the differential fuzzer's oracle would depend on the
models it is supposed to referee. Enforced two ways: a static AST scan of
every engine module's import statements, and a runtime check that
importing the engine pulls in no AI-layer module.
"""

import ast
import os
import subprocess
import sys

import repro.engine

ENGINE_ROOT = os.path.dirname(repro.engine.__file__)
FORBIDDEN_PREFIXES = ("repro.ai4db", "repro.db4ai")


def _engine_modules():
    for dirpath, dirnames, filenames in os.walk(ENGINE_ROOT):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _imported_modules(path):
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.module:
            yield node.module, node.lineno


def test_engine_never_imports_ai_layers_statically():
    violations = []
    for path in _engine_modules():
        for module, lineno in _imported_modules(path):
            if module.startswith(FORBIDDEN_PREFIXES):
                violations.append("%s:%d imports %s" % (path, lineno, module))
    assert not violations, "\n".join(violations)


def test_operators_package_exists_and_is_scanned():
    # Guard the guard: the scan must actually cover the operators package.
    paths = list(_engine_modules())
    assert any(os.sep + "operators" + os.sep in p for p in paths), paths


def test_importing_operators_loads_no_ai_modules():
    """Runtime check in a fresh interpreter: importing the engine (and
    the operators package explicitly) must not load ai4db/db4ai."""
    code = (
        "import sys\n"
        "import repro.engine\n"
        "import repro.engine.operators\n"
        "import repro.engine.optimizer.feedback\n"
        "bad = [m for m in sys.modules"
        "       if m.startswith(('repro.ai4db', 'repro.db4ai'))]\n"
        "assert not bad, bad\n"
    )
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(ENGINE_ROOT, "..", ".."))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env,
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
