"""Tests for learned optimization: cardinality, cost, join order, NEO."""

import numpy as np
import pytest

from repro.ai4db.optimization.cardinality import (
    LearnedCardinalityEstimator,
    QueryFeaturizer,
    generate_training_queries,
)
from repro.ai4db.optimization.cost import LearnedCostModel, PlanFeaturizer
from repro.ai4db.optimization.end_to_end import NeoLiteOptimizer, _order_of
from repro.ai4db.optimization.join_order import (
    DQNJoinOrderer,
    MCTSJoinOrderer,
    compare_orderers,
)
from repro.common import ModelError, NotFittedError
from repro.engine import Database, datagen
from repro.engine.catalog import Catalog
from repro.engine.optimizer.cardinality import TraditionalEstimator
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.join_enum import dp_left_deep
from repro.engine.query import ConjunctiveQuery, Predicate
from repro.ml import q_error_summary


@pytest.fixture(scope="module")
def trained_estimator():
    catalog = Catalog()
    datagen.make_correlated_table(catalog, "facts", n_rows=4000, n_values=40,
                                  correlation=0.9, seed=0)
    queries, cards = generate_training_queries(
        catalog, "facts", ["a", "b", "c"], n_queries=350, n_values=40, seed=1
    )
    featurizer = QueryFeaturizer(catalog, ["facts"], [])
    estimator = LearnedCardinalityEstimator(featurizer, hidden=(64, 32),
                                            epochs=80, seed=0)
    split = 280
    estimator.fit(queries[:split], cards[:split])
    return catalog, estimator, queries[split:], cards[split:]


class TestQueryFeaturizer:
    def test_dim_and_determinism(self, correlated_catalog):
        featurizer = QueryFeaturizer(correlated_catalog, ["facts"], [])
        q = ConjunctiveQuery(tables=["facts"],
                             predicates=[Predicate("facts", "a", "<", 10)])
        v1 = featurizer.featurize(q)
        v2 = featurizer.featurize(q)
        assert v1.shape == (featurizer.dim,)
        assert np.array_equal(v1, v2)

    def test_predicates_change_encoding(self, correlated_catalog):
        featurizer = QueryFeaturizer(correlated_catalog, ["facts"], [])
        q1 = ConjunctiveQuery(tables=["facts"],
                              predicates=[Predicate("facts", "a", "<", 10)])
        q2 = ConjunctiveQuery(tables=["facts"],
                              predicates=[Predicate("facts", "a", "<", 30)])
        assert not np.array_equal(featurizer.featurize(q1),
                                  featurizer.featurize(q2))

    def test_unknown_table_rejected(self, correlated_catalog):
        featurizer = QueryFeaturizer(correlated_catalog, ["facts"], [])
        q = ConjunctiveQuery(tables=["facts"])
        q.tables = ["other"]
        with pytest.raises(ModelError):
            featurizer.featurize(q)


class TestLearnedCardinality:
    def test_beats_histogram_tail_on_correlated(self, trained_estimator):
        catalog, estimator, test_q, test_c = trained_estimator
        learned = q_error_summary(test_c, estimator.predict(test_q))
        trad = TraditionalEstimator(catalog)
        trad_pred = [trad.estimate_subset(q, q.tables) for q in test_q]
        hist = q_error_summary(test_c, trad_pred)
        assert learned["q95"] < hist["q95"]

    def test_estimator_contract_subset(self, trained_estimator):
        __, estimator, test_q, ___ = trained_estimator
        q = test_q[0]
        est = estimator.estimate_subset(q, q.tables)
        assert est >= 0.0
        assert estimator.estimate_table(q, q.tables[0]) >= 0.0

    def test_unfitted_raises(self, correlated_catalog):
        featurizer = QueryFeaturizer(correlated_catalog, ["facts"], [])
        with pytest.raises(NotFittedError):
            LearnedCardinalityEstimator(featurizer).predict([])

    def test_fit_length_mismatch(self, correlated_catalog):
        featurizer = QueryFeaturizer(correlated_catalog, ["facts"], [])
        q = ConjunctiveQuery(tables=["facts"])
        with pytest.raises(ModelError):
            LearnedCardinalityEstimator(featurizer).fit([q], [1, 2])

    def test_training_queries_meet_min_card(self, correlated_catalog):
        queries, cards = generate_training_queries(
            correlated_catalog, "facts", ["a", "b"], n_queries=50,
            n_values=40, seed=2, min_card=5,
        )
        assert all(c >= 5 for c in cards)


class TestLearnedCostModel:
    @pytest.fixture(scope="class")
    def plan_corpus(self):
        db = Database()
        names, edges = datagen.make_join_graph_schema(
            db.catalog, "chain", n_tables=4, rows_per_table=400, seed=0,
            prefix="lc_",
        )
        queries = datagen.join_graph_workload(names, edges, n_queries=24,
                                              seed=1, min_tables=2)
        plans, works = [], []
        for q in queries:
            plan = db.planner.plan(q)
            plans.append(plan)
            works.append(db.executor.execute(plan).work)
        return plans, works

    def test_featurizer_fixed_dim(self, plan_corpus):
        plans, __ = plan_corpus
        featurizer = PlanFeaturizer()
        for plan in plans:
            assert featurizer.featurize(plan).shape == (featurizer.dim,)

    def test_predictions_close_on_train(self, plan_corpus):
        plans, works = plan_corpus
        model = LearnedCostModel(n_estimators=40).fit(plans, works)
        preds = model.predict(plans)
        qerr = q_error_summary(works, preds)
        assert qerr["q90"] < 2.0

    def test_generalizes_to_held_out(self, plan_corpus):
        plans, works = plan_corpus
        model = LearnedCostModel(n_estimators=40).fit(plans[:18], works[:18])
        preds = model.predict(plans[18:])
        qerr = q_error_summary(works[18:], preds)
        assert qerr["q50"] < 3.0

    def test_unfitted_raises(self, plan_corpus):
        plans, __ = plan_corpus
        with pytest.raises(NotFittedError):
            LearnedCostModel().predict(plans[:1])


class TestJoinOrderAgents:
    @pytest.fixture(scope="class")
    def clique(self):
        catalog = Catalog()
        names, edges = datagen.make_join_graph_schema(
            catalog, "clique", n_tables=6, rows_per_table=400, seed=2,
            prefix="jo_",
        )
        queries = datagen.join_graph_workload(names, edges, n_queries=5,
                                              seed=3, min_tables=5)
        return catalog, names, queries

    def test_mcts_close_to_dp(self, clique):
        catalog, __, queries = clique
        estimator = TraditionalEstimator(catalog)
        cm = CostModel()
        mcts = MCTSJoinOrderer(estimator, cm, n_iterations=200, seed=0)
        for q in queries:
            __, dp_cost = dp_left_deep(q, estimator, cm)
            order, mcts_cost = mcts.order(q)
            assert mcts_cost <= dp_cost * 1.3
            assert sorted(t.lower() for t in order) == sorted(
                t.lower() for t in q.tables
            )

    def test_mcts_single_table(self, clique):
        catalog, names, __ = clique
        estimator = TraditionalEstimator(catalog)
        cm = CostModel()
        q = ConjunctiveQuery(tables=[names[0]])
        order, cost = MCTSJoinOrderer(estimator, cm, seed=0).order(q)
        assert order == [names[0]]

    def test_dqn_trains_and_orders(self, clique):
        catalog, names, queries = clique
        estimator = TraditionalEstimator(catalog)
        cm = CostModel()
        dqn = DQNJoinOrderer(names, estimator, cm, episodes_per_query=3,
                             epochs=2, seed=0)
        dqn.fit(queries)
        order, cost = dqn.order(queries[0])
        assert sorted(t.lower() for t in order) == sorted(
            t.lower() for t in queries[0].tables
        )
        # The order must be valid for order_cost (no exception, finite).
        assert np.isfinite(cost)

    def test_dqn_unfitted_raises(self, clique):
        catalog, names, queries = clique
        dqn = DQNJoinOrderer(names, TraditionalEstimator(catalog), CostModel())
        with pytest.raises(NotFittedError):
            dqn.order(queries[0])

    def test_dqn_rejects_foreign_tables(self, clique):
        catalog, names, __ = clique
        dqn = DQNJoinOrderer(names[:2], TraditionalEstimator(catalog),
                             CostModel())
        foreign = ConjunctiveQuery(tables=[names[-1]])
        with pytest.raises(ModelError):
            dqn.fit([foreign])

    def test_compare_orderers_keys(self, clique):
        catalog, __, queries = clique
        results = compare_orderers(queries[:2],
                                   TraditionalEstimator(catalog),
                                   CostModel(), mcts_iterations=50, seed=0)
        assert set(results) == {"dp", "greedy", "random", "mcts"}
        for v in results.values():
            assert len(v["cost"]) == 2


class TestNeoLite:
    @pytest.fixture(scope="class")
    def neo_setup(self):
        db = Database()
        names, edges = datagen.make_join_graph_schema(
            db.catalog, "clique", n_tables=4, rows_per_table=300, seed=3,
            prefix="neo_", correlated=True,
        )
        workload = datagen.join_graph_workload(names, edges, n_queries=10,
                                               seed=4, min_tables=3)
        neo = NeoLiteOptimizer(db, names, epochs=60, seed=0)
        neo.bootstrap(workload[:6], extra_random_orders=1).train()
        return db, neo, workload

    def test_plan_order_covers_tables(self, neo_setup):
        __, neo, workload = neo_setup
        for q in workload[6:]:
            order = neo.plan_order(q)
            assert sorted(t.lower() for t in order) == sorted(
                t.lower() for t in q.tables
            )

    def test_execute_returns_correct_result(self, neo_setup):
        db, neo, workload = neo_setup
        q = workload[7]
        neo_result, __ = neo.execute(q, learn=False)
        reference = db.run_query_object(q)
        assert sorted(neo_result.rows) == sorted(reference.rows)

    def test_experience_grows_when_learning(self, neo_setup):
        __, neo, workload = neo_setup
        before = len(neo._experience)
        neo.execute(workload[8], learn=True)
        assert len(neo._experience) == before + 1

    def test_train_before_bootstrap_raises(self):
        db = Database()
        datagen.make_join_graph_schema(db.catalog, "chain", n_tables=2,
                                       rows_per_table=50, seed=0,
                                       prefix="nx_")
        neo = NeoLiteOptimizer(db, ["nx_0", "nx_1"])
        with pytest.raises(ModelError):
            neo.train()

    def test_order_recovery_from_plan(self, neo_setup):
        db, __, workload = neo_setup
        q = workload[0]
        plan = db.planner.plan(q)
        order = _order_of(plan, q)
        assert sorted(t.lower() for t in order) == sorted(
            t.lower() for t in q.tables
        )
