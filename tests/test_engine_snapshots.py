"""Per-table version vectors and MVCC-style catalog snapshots (PR 7).

Covers the versioning contract (which mutations bump which table's
version, the O(1) derived epoch, monotonicity across drop/create), the
snapshot pinning contract (``TableSnapshot``/``CatalogSnapshot``/
``DatabaseSnapshot`` keep serving the state they were taken at while
writers move the live objects), and the scoped cache contract (plan
cache and SQL-text cache key on exactly the versions they depend on,
and report what invalidated them).
"""

import pytest

from repro.common import CatalogError, ExecutionError, ReproError
from repro.engine import (
    CatalogSnapshot,
    Database,
    DatabaseSnapshot,
    EngineConfig,
    Table,
    TableSnapshot,
)
from repro.engine.catalog import Catalog
from repro.engine.query import Aggregate, ConjunctiveQuery, Predicate
from repro.engine.types import ColumnSchema, TableSchema


def _small_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE a (id INT, k INT)")
    db.catalog.table("a").insert_rows([(i, i % 5) for i in range(100)])
    db.execute("CREATE TABLE b (id INT, k INT)")
    db.catalog.table("b").insert_rows([(i, i % 3) for i in range(60)])
    db.execute("ANALYZE")
    return db


class TestPerTableVersions:
    def test_insert_bumps_only_its_table(self):
        db = _small_db()
        before_a = db.catalog.version("a")
        before_b = db.catalog.version("b")
        db.catalog.table("a").insert_rows([(500, 1)])
        assert db.catalog.version("a") == before_a + 1
        assert db.catalog.version("b") == before_b

    def test_sql_insert_and_analyze_bump(self):
        db = _small_db()
        v = db.catalog.version("a")
        db.execute("INSERT INTO a VALUES (900, 2)")
        assert db.catalog.version("a") == v + 1
        db.execute("ANALYZE a")
        assert db.catalog.version("a") == v + 2

    def test_index_and_view_bump_their_base_tables(self):
        db = _small_db()
        va, vb = db.catalog.version("a"), db.catalog.version("b")
        db.catalog.create_index("idx_a_k", "a", "k")
        assert db.catalog.version("a") == va + 1
        assert db.catalog.version("b") == vb
        db.catalog.drop_index("idx_a_k")
        assert db.catalog.version("a") == va + 2

    def test_version_vector_restriction(self):
        db = _small_db()
        vec = db.catalog.version_vector(["a"])
        assert [name for name, __ in vec] == ["a"]
        full = dict(db.catalog.version_vector())
        assert set(full) == {"a", "b"}
        assert dict(vec)["a"] == full["a"]
        # Unknown tables appear with version 0, keeping the token total.
        assert dict(db.catalog.version_vector(["nope"]))["nope"] == 0

    def test_epoch_is_sum_of_bumps(self):
        db = _small_db()
        epoch = db.epoch
        db.catalog.table("a").insert_rows([(1, 1)])
        db.catalog.table("b").insert_rows([(1, 1)])
        assert db.epoch == epoch + 2
        assert db.epoch == sum(v for __, v in db.catalog.version_vector())

    def test_epoch_read_never_scans_tables(self):
        """Regression for the O(#tables) hot path: ``Catalog.epoch`` used
        to sum every table's row count on every plan-cache lookup. Now it
        must be a stored counter — reading it may not touch ``n_rows``."""
        catalog = Catalog()

        class ExplodingTable(Table):
            @property
            def n_rows(self):
                raise AssertionError("epoch read touched Table.n_rows")

        for i in range(5):
            catalog.register_table(ExplodingTable(
                TableSchema("t%d" % i, [ColumnSchema("id", "INT")])
            ))
        for __ in range(3):
            assert catalog.epoch == 5  # one bump per registration
        assert catalog.version("t0") == 1

    def test_drop_create_keeps_versions_monotonic(self):
        """Satellite (a): a re-created table continues from the dropped
        one's version floor, and the derived epoch never moves backward."""
        db = _small_db()
        observed_versions = [db.catalog.version("a")]
        observed_epochs = [db.epoch]
        for __ in range(3):
            db.catalog.drop_table("a")
            observed_epochs.append(db.epoch)
            db.execute("CREATE TABLE a (id INT, k INT)")
            db.catalog.table("a").insert_rows([(1, 1)])
            observed_versions.append(db.catalog.version("a"))
            observed_epochs.append(db.epoch)
        assert observed_versions == sorted(set(observed_versions))
        assert observed_epochs == sorted(set(observed_epochs))

    def test_table_write_hook_fires_and_removes(self):
        t = Table(TableSchema("t", [ColumnSchema("id", "INT")]))
        seen = []
        hook = t.add_write_hook(lambda tbl: seen.append(tbl.version))
        t.insert_rows([(1,)])
        t.replace_column("id", [7])
        assert seen == [1, 2]
        t.remove_write_hook(hook)
        t.insert_rows([(2,)])
        assert seen == [1, 2]


class TestTableSnapshot:
    def _table(self, n=10, segment_rows=4):
        t = Table(
            TableSchema("t", [ColumnSchema("id", "INT")]),
            segment_rows=segment_rows,
        )
        t.insert_rows([(i,) for i in range(n)])
        return t

    def test_pinned_under_appends(self):
        t = self._table()
        snap = t.snapshot()
        t.insert_rows([(i,) for i in range(10, 30)])
        assert snap.n_rows == 10
        assert t.n_rows == 30
        assert snap.rows() == [(i,) for i in range(10)]
        assert snap.column_array("id").tolist() == list(range(10))

    def test_pinned_under_tail_seal(self):
        """Appends that seal the old tail into an encoded segment must not
        disturb a snapshot holding the frozen plain tail group."""
        t = self._table(n=6, segment_rows=4)  # one sealed group + 2 tail
        snap = t.snapshot()
        t.insert_rows([(i,) for i in range(6, 14)])  # seals past the tail
        assert snap.rows() == [(i,) for i in range(6)]
        assert snap.n_segments == 2

    def test_pinned_under_replace_column(self):
        t = self._table()
        snap = t.snapshot()
        t.replace_column("id", [i * 100 for i in range(10)])
        assert snap.column_array("id").tolist() == list(range(10))
        assert t.column_array("id").tolist()[1] == 100

    def test_read_surface_matches_table(self):
        t = self._table()
        snap = t.snapshot()
        assert isinstance(snap, TableSnapshot)
        assert snap.name == t.name
        assert len(snap) == len(t)
        assert snap.row(3) == t.row(3)
        assert snap.rows([2, 5]) == t.rows([2, 5])
        assert (snap.column_arrays(row_ids=[1, 2])["id"].tolist()
                == t.column_arrays(row_ids=[1, 2])["id"].tolist())
        assert snap.column_value_counts("id") == t.column_value_counts("id")
        assert snap.snapshot() is snap
        with pytest.raises(CatalogError):
            snap.column_array("nope")

    def test_version_stamped(self):
        t = self._table()
        assert t.snapshot().version == 1
        t.insert_rows([(99,)])
        assert t.snapshot().version == 2


class TestCatalogSnapshot:
    def test_pins_tables_stats_and_versions(self):
        db = _small_db()
        snap = db.catalog.snapshot()
        assert isinstance(snap, CatalogSnapshot)
        pinned_vec = snap.version_vector()
        pinned_ndv = snap.stats("a").column("k").n_distinct
        db.catalog.table("a").insert_rows([(i, i) for i in range(200)])
        db.execute("ANALYZE a")
        assert snap.table("a").n_rows == 100
        assert snap.version_vector() == pinned_vec
        assert snap.stats("a").column("k").n_distinct == pinned_ndv
        assert db.catalog.stats("a").column("k").n_distinct > pinned_ndv

    def test_pins_table_set(self):
        db = _small_db()
        snap = db.catalog.snapshot()
        db.catalog.drop_table("b")
        db.execute("CREATE TABLE c (id INT)")
        assert snap.has_table("b")
        assert not snap.has_table("c")
        assert snap.table_names() == ["a", "b"]
        with pytest.raises(CatalogError):
            snap.table("c")

    def test_pins_indexes(self):
        db = _small_db()
        db.catalog.create_index("idx_a_k", "a", "k")
        snap = db.catalog.snapshot()
        db.catalog.drop_index("idx_a_k")
        assert snap.index_on("a", "k") is not None
        assert db.catalog.index_on("a", "k") is None
        assert [i.name for i in snap.indexes("a")] == ["idx_a_k"]

    def test_lazy_stats_do_not_touch_live_catalog(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.catalog.table("t").insert_rows([(i,) for i in range(10)])
        snap = db.catalog.snapshot()  # no ANALYZE has run
        epoch = db.epoch
        assert snap.stats("t").n_rows == 10  # computed over pinned data
        assert db.epoch == epoch  # the live catalog never observed it

    def test_snapshot_is_idempotent(self):
        db = _small_db()
        snap = db.catalog.snapshot()
        assert snap.snapshot() is snap


class TestDatabaseSnapshot:
    def test_reads_pinned_while_live_moves(self):
        db = _small_db()
        snap = db.snapshot()
        assert isinstance(snap, DatabaseSnapshot)
        before = snap.query("SELECT COUNT(*) FROM a")
        db.catalog.table("a").insert_rows([(i, 0) for i in range(50)])
        assert snap.query("SELECT COUNT(*) FROM a") == before == [(100,)]
        assert db.query("SELECT COUNT(*) FROM a") == [(150,)]

    def test_aggregates_and_joins_pinned(self):
        db = _small_db()
        snap = db.snapshot()
        q = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k"
        before = snap.query(q)
        db.catalog.table("b").insert_rows([(i, i % 3) for i in range(40)])
        assert snap.query(q) == before
        assert db.query(q) != before

    def test_rejects_writes(self):
        db = _small_db()
        snap = db.snapshot()
        for sql in (
            "INSERT INTO a VALUES (1, 1)",
            "CREATE TABLE z (id INT)",
            "ANALYZE a",
        ):
            with pytest.raises(ExecutionError, match="read-only"):
                snap.execute(sql)

    def test_shares_live_plan_cache(self):
        db = _small_db()
        db.query("SELECT COUNT(*) FROM a")  # warm the plan
        snap = db.snapshot()
        res = snap.execute("SELECT COUNT(*) FROM a")
        assert res.pipeline_telemetry.cache_outcome == "hit"

    def test_run_query_object_pinned(self):
        db = _small_db()
        snap = db.snapshot()
        q = ConjunctiveQuery(tables=["a"], aggregates=[Aggregate("count")])
        assert snap.run_query_object(q).rows == [(100,)]
        db.catalog.table("a").insert_rows([(1, 1)])
        assert snap.run_query_object(q).rows == [(100,)]

    def test_snapshot_does_not_feed_feedback(self):
        db = Database(feedback_enabled=True)
        db.execute("CREATE TABLE t (id INT, k INT)")
        db.catalog.table("t").insert_rows([(i, i % 4) for i in range(80)])
        db.execute("ANALYZE")
        snap = db.snapshot()
        db.catalog.table("t").insert_rows([(i, 0) for i in range(400)])
        observed = db.feedback.stats()["observations"]
        snap.query("SELECT COUNT(*) FROM t WHERE k = 1")
        assert db.feedback.stats()["observations"] == observed

    def test_epoch_and_vector_pinned(self):
        db = _small_db()
        snap = db.snapshot()
        epoch, vec = snap.epoch, snap.version_vector(["a"])
        db.catalog.table("a").insert_rows([(1, 1)])
        assert snap.epoch == epoch
        assert snap.version_vector(["a"]) == vec
        assert db.epoch == epoch + 1
        assert "DatabaseSnapshot" in repr(snap)


class TestScopedPlanCache:
    def test_writer_on_b_keeps_plans_for_a(self):
        db = _small_db()
        db.query("SELECT COUNT(*) FROM a")
        db.pipeline.plan_cache.reset_counters()
        for __ in range(5):
            db.catalog.table("b").insert_rows([(1, 1)])
            db.query("SELECT COUNT(*) FROM a")
        stats = db.pipeline.plan_cache.stats()
        assert stats["hits"] == 5
        assert stats["invalidations"] == 0

    def test_writer_on_a_invalidates_plans_for_a(self):
        db = _small_db()
        db.query("SELECT COUNT(*) FROM a")
        db.catalog.table("a").insert_rows([(1, 1)])
        res = db.execute("SELECT COUNT(*) FROM a")
        tele = res.pipeline_telemetry
        assert tele.cache_outcome == "invalidated"
        assert tele.invalidation_cause == "table:a"
        assert dict(tele.plan_versions)["a"] == db.catalog.version("a")

    def test_global_scope_invalidates_across_tables(self):
        db = _small_db(cache_scope="global")
        db.query("SELECT COUNT(*) FROM a")
        db.catalog.table("b").insert_rows([(1, 1)])
        res = db.execute("SELECT COUNT(*) FROM a")
        tele = res.pipeline_telemetry
        assert tele.cache_outcome == "invalidated"
        assert tele.invalidation_cause == "table:*"

    def test_cache_scope_config_validation(self):
        assert EngineConfig(cache_scope="global").cache_scope == "global"
        with pytest.raises(ReproError, match="cache_scope"):
            EngineConfig(cache_scope="per-row")

    def test_join_invalidated_by_either_table(self):
        db = _small_db()
        sql = "SELECT COUNT(*) FROM a, b WHERE a.k = b.k"
        db.query(sql)
        db.catalog.table("b").insert_rows([(1, 1)])
        res = db.execute(sql)
        assert res.pipeline_telemetry.cache_outcome == "invalidated"
        assert res.pipeline_telemetry.invalidation_cause == "table:b"

    def test_explain_analyze_reports_versions_and_outcome(self):
        db = _small_db()
        sql = "SELECT COUNT(*) FROM a WHERE k = 1"
        db.query(sql)
        db.catalog.table("a").insert_rows([(1, 1)])
        out = db.explain_analyze(sql)
        assert out.cache_outcome == "invalidated"
        assert out.invalidation_cause == "table:a"
        assert dict(out.version_vector)["a"] == db.catalog.version("a")
        assert "Versions: a=%d" % db.catalog.version("a") in out.text
        assert "Plan cache: invalidated (table:a)" in out.text
        warm = db.explain_analyze(sql)
        assert warm.cache_outcome == "hit"
        assert "Plan cache: hit" in warm.text


class TestSqlTextCache:
    def test_inserts_keep_sql_text_warm(self):
        """Lowering depends only on name resolution, so the SQL-text cache
        keys on schema_epoch and survives inserts and ANALYZE."""
        db = _small_db()
        sql = "SELECT COUNT(*) FROM a"
        db.query(sql)
        db.pipeline.query_cache.reset_counters()
        db.catalog.table("a").insert_rows([(1, 1)])
        db.execute("ANALYZE a")
        db.query(sql)
        stats = db.pipeline.query_cache.stats()
        assert stats["hits"] == 1
        assert stats["invalidations"] == 0

    def test_ddl_invalidates_sql_text(self):
        db = _small_db()
        sql = "SELECT COUNT(*) FROM a"
        db.query(sql)
        epoch = db.catalog.schema_epoch
        db.execute("CREATE TABLE z (id INT)")
        assert db.catalog.schema_epoch == epoch + 1
        db.pipeline.query_cache.reset_counters()
        db.query(sql)
        assert db.pipeline.query_cache.stats()["invalidations"] == 1


class TestScopedEstimatorMemos:
    def test_true_cardinality_memo_scoped_per_table(self):
        from repro.engine import count_join_rows
        from repro.engine.optimizer.cardinality import TrueCardinalityEstimator

        db = _small_db()
        est = TrueCardinalityEstimator(
            lambda q, ts: count_join_rows(db.catalog, q, ts),
            catalog=db.catalog,
        )
        qa = ConjunctiveQuery(
            tables=["a"], predicates=[Predicate("a", "k", "=", 1)]
        )
        qb = ConjunctiveQuery(
            tables=["b"], predicates=[Predicate("b", "k", "=", 1)]
        )
        est.estimate_subset(qa, ["a"])
        est.estimate_subset(qb, ["b"])
        before_b = est.estimate_subset(qb, ["b"])
        # Writing a must invalidate only a's memo entries.
        db.catalog.table("a").insert_rows([(i, 1) for i in range(10)])
        assert est.estimate_subset(qa, ["a"]) == 30
        assert est.estimate_subset(qb, ["b"]) == before_b

    def test_feedback_drift_scoped_per_table(self):
        db = Database(feedback_enabled=True)
        db.execute("CREATE TABLE a (id INT, k INT)")
        db.catalog.table("a").insert_rows([(i, i % 5) for i in range(100)])
        db.execute("CREATE TABLE b (id INT, k INT)")
        db.catalog.table("b").insert_rows([(i, i % 3) for i in range(60)])
        db.execute("ANALYZE")
        store = db.feedback
        db.query("SELECT COUNT(*) FROM a WHERE k = 2")
        va = store.version_vector(["a"])
        vb = store.version_vector(["b"])
        db.query("SELECT COUNT(*) FROM a WHERE k = 3")
        # a's estimates drifted (or not) — b's vector must be untouched.
        assert store.version_vector(["b"]) == vb
        assert store.version_vector(["a", "b"]) == tuple(
            sorted(store.version_vector(["a"]) + vb)
        )
        assert isinstance(va, tuple)
