"""Tests for the simulators: datagen, knobs, transactions, telemetry."""

import numpy as np
import pytest

from repro.common import ReproError
from repro.engine.catalog import Catalog
from repro.engine import datagen
from repro.engine.knobs import (
    KnobResponseSimulator,
    KnobSpec,
    default_knobs,
    standard_workloads,
)
from repro.engine.telemetry import (
    ACTIVITY_TYPES,
    KPI_NAMES,
    ROOT_CAUSES,
    activity_stream,
    arrival_trace,
    kpi_episodes,
)
from repro.engine.txn import (
    LockTableSimulator,
    Transaction,
    cost_ordered_schedule,
    fifo_schedule,
    hotspot_workload,
)


class TestDatagen:
    def test_zipf_skew_concentrates_mass(self, rng):
        skewed = datagen.zipf_integers(5000, 100, skew=1.5, seed=0)
        uniform = datagen.zipf_integers(5000, 100, skew=0.0, seed=0)
        top_share_skewed = np.mean(skewed < 5)
        top_share_uniform = np.mean(uniform < 5)
        assert top_share_skewed > 3 * top_share_uniform

    def test_correlated_pair_extremes(self):
        x, y = datagen.correlated_pair(2000, 50, correlation=1.0, seed=0)
        assert np.array_equal(x, y)
        x2, y2 = datagen.correlated_pair(2000, 50, correlation=0.0, seed=0)
        agreement = float(np.mean(x2 == y2))
        assert agreement < 0.1

    def test_star_schema_referential_integrity(self):
        catalog = Catalog()
        tables = datagen.make_star_schema(catalog, n_customers=100,
                                          n_products=30, n_dates=20,
                                          n_sales=500, seed=0)
        sales = tables["sales"]
        customer_ids = set(tables["customer"].column_array("c_id").tolist())
        fk = sales.column_array("s_customer")
        assert set(fk.tolist()) <= customer_ids

    def test_star_workload_valid_queries(self):
        queries = datagen.star_workload(n_queries=20, seed=0)
        assert len(queries) == 20
        for q in queries:
            assert "sales" in [t.lower() for t in q.tables]
            assert q.is_connected()

    def test_join_graph_topologies(self):
        for topology, expected_edges in (("chain", 3), ("star", 3),
                                         ("clique", 6)):
            catalog = Catalog()
            names, edges = datagen.make_join_graph_schema(
                catalog, topology, n_tables=4, rows_per_table=100, seed=0,
                prefix="%s_" % topology,
            )
            assert len(edges) == expected_edges

    def test_join_graph_bad_topology(self):
        with pytest.raises(ValueError):
            datagen.make_join_graph_schema(Catalog(), "ring")

    def test_correlated_fk_mode(self):
        catalog = Catalog()
        names, __ = datagen.make_join_graph_schema(
            catalog, "chain", n_tables=2, rows_per_table=2000, seed=0,
            prefix="cf_", correlated=True,
        )
        t = catalog.table(names[0])
        val = t.column_array("val").astype(float)
        fk = t.column_array("fk").astype(float)
        corr = float(np.corrcoef(val, fk)[0, 1])
        assert corr > 0.9

    def test_workload_connected_subsets(self):
        catalog = Catalog()
        names, edges = datagen.make_join_graph_schema(
            catalog, "chain", n_tables=5, rows_per_table=100, seed=0,
            prefix="wc_",
        )
        queries = datagen.join_graph_workload(names, edges, n_queries=10,
                                              seed=1)
        for q in queries:
            assert q.is_connected()


class TestKnobs:
    def test_knob_normalization_roundtrip(self):
        for knob in default_knobs():
            for raw in (knob.low, knob.default, knob.high):
                unit = knob.normalize(raw)
                assert 0.0 <= unit <= 1.0
                assert knob.denormalize(unit) == pytest.approx(raw, rel=1e-6)

    def test_log_scale_midpoint(self):
        knob = KnobSpec("k", 1, 100, 10, log_scale=True)
        assert knob.normalize(10) == pytest.approx(0.5)

    def test_invalid_spec(self):
        with pytest.raises(ReproError):
            KnobSpec("k", 5, 5, 5)
        with pytest.raises(ReproError):
            KnobSpec("k", 0.1, 1, 2)

    def test_simulator_deterministic_without_noise(self):
        sim = KnobResponseSimulator(seed=0, noise=0.0)
        wl = standard_workloads()[0]
        x = sim.default_vector()
        assert sim.throughput(x, wl) == sim.throughput(x, wl)

    def test_simulator_noise_varies(self):
        sim = KnobResponseSimulator(seed=0, noise=0.1)
        wl = standard_workloads()[0]
        x = sim.default_vector()
        values = {sim.throughput(x, wl) for __ in range(5)}
        assert len(values) > 1

    def test_workload_changes_optimum(self):
        sim = KnobResponseSimulator(seed=3, noise=0.0)
        oltp, olap, __ = standard_workloads()
        rng = np.random.default_rng(0)
        xs = rng.random((512, sim.dim))
        best_oltp = xs[int(np.argmax([sim.score(x, oltp) for x in xs]))]
        best_olap = xs[int(np.argmax([sim.score(x, olap) for x in xs]))]
        assert not np.allclose(best_oltp, best_olap, atol=0.05)

    def test_wrong_dimension_rejected(self):
        sim = KnobResponseSimulator(seed=0)
        with pytest.raises(ReproError):
            sim.score(np.zeros(3), standard_workloads()[0])

    def test_metrics_vector_shape(self):
        sim = KnobResponseSimulator(seed=0)
        m = sim.metrics(sim.default_vector(), standard_workloads()[0])
        assert m.shape == (5,)

    def test_cost_model_params_mapping(self):
        sim = KnobResponseSimulator(seed=0)
        params = sim.cost_model_params(np.ones(sim.dim))
        assert params["work_mem_rows"] > 0
        assert params["index_probe_cost"] > 0

    def test_evaluation_counter(self):
        sim = KnobResponseSimulator(seed=0)
        wl = standard_workloads()[0]
        sim.throughput(sim.default_vector(), wl)
        sim.throughput(sim.default_vector(), wl)
        assert sim.evaluations == 2


class TestTransactions:
    def test_conflict_detection(self):
        a = Transaction(0, reads={1}, writes={2}, duration=1.0)
        b = Transaction(1, reads={2}, writes=set(), duration=1.0)
        c = Transaction(2, reads={9}, writes=set(), duration=1.0)
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)
        assert not a.conflicts_with(c)
        # Pure read-read never conflicts.
        d = Transaction(3, reads={1}, writes=set(), duration=1.0)
        assert not c.conflicts_with(d)

    def test_hotspot_workload_shape(self):
        txns = hotspot_workload(n_txns=100, hot_keys=10, hot_fraction=0.8,
                                seed=0)
        assert len(txns) == 100
        hot_hits = sum(
            1 for t in txns for k in t.keys() if k < 10
        )
        total = sum(len(t.keys()) for t in txns)
        assert hot_hits / total > 0.5

    def test_fifo_round_robin(self):
        txns = hotspot_workload(n_txns=10, seed=0)
        queues = fifo_schedule(txns, 3)
        assert [len(q) for q in queues] == [4, 3, 3]

    def test_cost_ordered_balances_load(self):
        txns = hotspot_workload(n_txns=40, seed=1)
        queues = cost_ordered_schedule(txns, 4)
        loads = [sum(t.duration for t in q) for q in queues]
        assert max(loads) - min(loads) < max(t.duration for t in txns) * 2

    def test_simulator_commits_everything(self):
        txns = hotspot_workload(n_txns=60, seed=2)
        sim = LockTableSimulator()
        result = sim.run(fifo_schedule(txns, 3))
        assert result.committed == 60
        assert result.makespan > 0

    def test_conflict_free_batch_has_no_waits(self):
        txns = [Transaction(i, reads={i * 2}, writes={i * 2 + 1}, duration=2.0)
                for i in range(20)]
        result = LockTableSimulator().run(fifo_schedule(txns, 4))
        assert result.total_wait == 0.0
        assert result.aborts == 0

    def test_contention_raises_waits(self):
        # Everyone writes the same key: fully serialized.
        txns = [Transaction(i, reads=set(), writes={0}, duration=2.0)
                for i in range(12)]
        serialized = LockTableSimulator(timeout_ms=1e9).run(
            fifo_schedule(txns, 4)
        )
        assert serialized.makespan == pytest.approx(24.0, rel=0.01)
        assert serialized.total_wait > 0


class TestTelemetry:
    def test_arrival_trace_daily_pattern(self):
        counts, is_burst = arrival_trace(n_hours=24 * 14, burst_prob=0.0,
                                         seed=0)
        assert len(counts) == 24 * 14
        by_hour = counts.reshape(-1, 24).mean(axis=0)
        # Business hours busier than small hours.
        assert by_hour[12] > by_hour[3]

    def test_bursts_marked_and_large(self):
        counts, is_burst = arrival_trace(n_hours=24 * 30, burst_prob=0.05,
                                         seed=1)
        assert is_burst.any()
        assert counts[is_burst].mean() > counts[~is_burst].mean()

    def test_kpi_episodes_labels_match_signatures(self):
        X, labels = kpi_episodes(n_episodes=100, noise=0.0, seed=0)
        for row, label in zip(X, labels):
            assert np.allclose(row, ROOT_CAUSES[label])
        assert X.shape[1] == len(KPI_NAMES)

    def test_activity_stream_frequencies(self):
        types, risks, means = activity_stream(n_events=5000, seed=0)
        assert len(means) == len(ACTIVITY_TYPES)
        # The most common type should be the mundane select_public (idx 0).
        assert np.bincount(types).argmax() == 0
        assert np.all((risks >= 0) & (risks <= 1))
