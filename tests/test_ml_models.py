"""Tests for the supervised models in repro.ml (linear, MLP, trees, GP)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import ModelError, NotFittedError
from repro.ml import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    LogisticRegression,
    MLPClassifier,
    MLPRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
    RidgeRegression,
    expected_improvement,
    rbf_kernel,
)


def _linear_data(rng, n=200, d=3, noise=0.05):
    X = rng.normal(size=(n, d))
    w = np.arange(1, d + 1, dtype=float)
    y = X @ w + 0.5 + noise * rng.normal(size=n)
    return X, y, w


class TestLinearRegression:
    def test_recovers_coefficients(self, rng):
        X, y, w = _linear_data(rng, noise=0.0)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict([[1.0]])

    def test_1d_input_accepted(self, rng):
        x = rng.normal(size=100)
        y = 2 * x + 1
        model = LinearRegression().fit(x, y)
        assert model.predict(np.array([3.0])) == pytest.approx(7.0, abs=1e-6)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ModelError):
            LinearRegression().fit(rng.normal(size=(10, 2)), np.ones(9))

    def test_no_intercept(self, rng):
        X, y, w = _linear_data(rng, noise=0.0)
        model = LinearRegression(add_intercept=False).fit(X, y - 0.5)
        assert np.allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == 0.0


class TestRidgeRegression:
    def test_shrinks_toward_zero(self, rng):
        X, y, __ = _linear_data(rng)
        small = RidgeRegression(alpha=1e-6).fit(X, y)
        large = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ModelError):
            RidgeRegression(alpha=-1.0)

    def test_matches_ols_at_zero_alpha(self, rng):
        X, y, __ = _linear_data(rng, noise=0.0)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-6)


class TestLogisticRegression:
    def test_separable_data(self, rng):
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        model = LogisticRegression(lr=0.5, epochs=800, seed=0).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.95

    def test_proba_in_unit_interval(self, rng):
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(float)
        model = LogisticRegression(epochs=100).fit(X, y)
        p = model.predict_proba(X)
        assert np.all(p >= 0) and np.all(p <= 1)

    def test_bad_labels_rejected(self, rng):
        with pytest.raises(ModelError):
            LogisticRegression().fit(rng.normal(size=(5, 2)),
                                     np.array([0, 1, 2, 0, 1]))


class TestMLP:
    def test_regression_learns_nonlinear(self, rng):
        X = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        model = MLPRegressor(hidden=(32, 32), epochs=200, seed=0).fit(X, y)
        mse = float(np.mean((model.predict(X) - y) ** 2))
        assert mse < 0.05

    def test_loss_curve_decreases(self, rng):
        X = rng.normal(size=(200, 2))
        y = X[:, 0]
        model = MLPRegressor(hidden=(16,), epochs=60, seed=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_classifier_learns(self, rng):
        X = rng.normal(size=(300, 2))
        y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 1.0).astype(float)
        model = MLPClassifier(hidden=(32,), epochs=150, seed=0).fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_classifier_bad_labels(self, rng):
        with pytest.raises(ModelError):
            MLPClassifier().fit(rng.normal(size=(4, 2)), [0, 1, 5, 1])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict([[0.0]])

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0]
        p1 = MLPRegressor(hidden=(8,), epochs=30, seed=3).fit(X, y).predict(X)
        p2 = MLPRegressor(hidden=(8,), epochs=30, seed=3).fit(X, y).predict(X)
        assert np.allclose(p1, p2)

    def test_multioutput_regression(self, rng):
        X = rng.normal(size=(200, 3))
        Y = np.stack([X[:, 0], -X[:, 1]], axis=1)
        model = MLPRegressor(hidden=(32,), epochs=150, seed=0).fit(X, Y)
        pred = model.predict(X)
        assert pred.shape == Y.shape
        assert float(np.mean((pred - Y) ** 2)) < 0.1


class TestTrees:
    def test_regressor_fits_step_function(self, rng):
        X = rng.uniform(0, 1, size=(300, 1))
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert float(np.mean((tree.predict(X) - y) ** 2)) < 0.1

    def test_classifier_axis_aligned(self, rng):
        X = rng.uniform(-1, 1, size=(400, 2))
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(float)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.95

    def test_depth_limit_respected(self, rng):
        X = rng.normal(size=(500, 3))
        y = rng.normal(size=500)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(50, 1))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=20)
        tree.fit(X, y)

        def leaf_sizes(node, X_sub, y_sub):
            if node.is_leaf:
                return [len(y_sub)]
            mask = X_sub[:, node.feature] <= node.threshold
            return leaf_sizes(node.left, X_sub[mask], y_sub[mask]) + \
                leaf_sizes(node.right, X_sub[~mask], y_sub[~mask])

        assert min(leaf_sizes(tree.root_, X, y)) >= 20

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 3.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 3.0)

    def test_empty_fit_rejected(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor().fit(np.empty((0, 1)), np.empty(0))

    def test_invalid_hyperparams(self):
        with pytest.raises(ModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ModelError):
            DecisionTreeRegressor(min_samples_leaf=0)


class TestEnsembles:
    def test_forest_averages_out_overfit_noise(self, rng):
        # Bagging's textbook claim: deep trees overfit label noise; the
        # forest's average generalizes better.
        X = rng.normal(size=(300, 3))
        y = X[:, 0] + 1.5 * rng.normal(size=300)
        X_test = rng.normal(size=(300, 3))
        y_test = X_test[:, 0]
        deep = dict(max_depth=12, min_samples_leaf=1)
        tree = DecisionTreeRegressor(seed=0, **deep).fit(X, y)
        forest = RandomForestRegressor(n_estimators=20, max_features=3,
                                       seed=0, **deep).fit(X, y)
        tree_mse = float(np.mean((tree.predict(X_test) - y_test) ** 2))
        forest_mse = float(np.mean((forest.predict(X_test) - y_test) ** 2))
        assert forest_mse < tree_mse

    def test_forest_classifier_probability_range(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(float)
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        p = forest.predict_proba(X)
        assert np.all((p >= 0) & (p <= 1))
        assert np.mean(forest.predict(X) == y) > 0.85

    def test_gbm_improves_with_stages(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] ** 2 + X[:, 1]
        weak = GradientBoostingRegressor(n_estimators=2).fit(X, y)
        strong = GradientBoostingRegressor(n_estimators=60).fit(X, y)
        weak_mse = float(np.mean((weak.predict(X) - y) ** 2))
        strong_mse = float(np.mean((strong.predict(X) - y) ** 2))
        assert strong_mse < weak_mse

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict([[1.0]])
        with pytest.raises(NotFittedError):
            GradientBoostingRegressor().predict([[1.0]])


class TestGaussianProcess:
    def test_interpolates_noiseless(self, rng):
        X = np.linspace(0, 5, 20).reshape(-1, 1)
        y = np.sin(X).ravel()
        gp = GaussianProcessRegressor(length_scale=1.0, noise=1e-8).fit(X, y)
        pred = gp.predict(X)
        assert np.allclose(pred, y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        gp = GaussianProcessRegressor(noise=1e-6).fit(X, y)
        __, near = gp.predict([[0.5]], return_std=True)
        __, far = gp.predict([[10.0]], return_std=True)
        assert far[0] > near[0]

    def test_negative_noise_rejected(self):
        with pytest.raises(ModelError):
            GaussianProcessRegressor(noise=-1.0)

    def test_rbf_kernel_diagonal_is_variance(self):
        A = np.array([[1.0, 2.0]])
        K = rbf_kernel(A, A, variance=2.5)
        assert K[0, 0] == pytest.approx(2.5)

    def test_expected_improvement_positive_at_high_mean(self):
        ei_good = expected_improvement(np.array([2.0]), np.array([0.1]),
                                       best=1.0)
        ei_bad = expected_improvement(np.array([0.0]), np.array([0.1]),
                                      best=1.0)
        assert ei_good[0] > ei_bad[0] >= 0.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
def test_linear_regression_exact_on_any_line(n, seed):
    """Property: OLS recovers any noiseless affine function exactly."""
    rng = np.random.default_rng(seed)
    slope = rng.uniform(-5, 5)
    intercept = rng.uniform(-5, 5)
    x = rng.uniform(-10, 10, size=n)
    if np.ptp(x) < 1e-6:
        x[0] += 1.0
    y = slope * x + intercept
    model = LinearRegression().fit(x, y)
    assert model.coef_[0] == pytest.approx(slope, abs=1e-6)
    assert model.intercept_ == pytest.approx(intercept, abs=1e-5)
