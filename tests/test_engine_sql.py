"""Tests for the SQL front end: lexer, parser, lowering."""

import pytest

from repro.common import ParseError
from repro.engine.sql import (
    AggCall,
    AnalyzeStmt,
    CreateIndexStmt,
    CreateTableStmt,
    InsertStmt,
    SelectStmt,
    TokenType,
    lower_select,
    parse_sql,
    tokenize,
)


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("SELECT foo FROM bar")
        assert toks[0].matches(TokenType.KEYWORD, "SELECT")
        assert toks[1].matches(TokenType.IDENT, "foo")

    def test_numbers(self):
        toks = tokenize("1 2.5 -3 1e3 2.5E-2")
        values = [t.value for t in toks[:-1]]
        assert values == [1, 2.5, -3, 1000.0, 0.025]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_strings_with_escapes(self):
        toks = tokenize("'it''s'")
        assert toks[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_operators(self):
        toks = tokenize("= != <> <= >= < >")
        ops = [t.value for t in toks[:-1]]
        assert ops == ["=", "!=", "!=", "<=", ">=", "<", ">"]

    def test_comments_stripped(self):
        toks = tokenize("SELECT 1 -- trailing comment\n")
        assert len(toks) == 3  # SELECT, 1, EOF

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("SELECT @")
        assert err.value.position == 7

    def test_eof_token_present(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].type is TokenType.EOF


class TestParserSelect:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM t WHERE a > 5")
        assert isinstance(stmt, SelectStmt)
        assert [c.column for c in stmt.items] == ["a", "b"]
        assert len(stmt.where) == 1

    def test_select_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert stmt.items == "*"

    def test_qualified_columns_and_joins(self):
        stmt = parse_sql(
            "SELECT t.a FROM t JOIN s ON t.id = s.tid WHERE s.x = 3"
        )
        assert len(stmt.joins) == 1
        ref, cond = stmt.joins[0]
        assert ref.name == "s"
        assert cond.is_join

    def test_inner_join_keyword(self):
        stmt = parse_sql("SELECT a FROM t INNER JOIN s ON t.a = s.b")
        assert len(stmt.joins) == 1

    def test_aggregates(self):
        stmt = parse_sql("SELECT COUNT(*), SUM(x), AVG(t.y) FROM t")
        assert isinstance(stmt.items[0], AggCall)
        assert stmt.items[0].arg is None
        assert stmt.items[1].func == "sum"
        assert stmt.items[2].arg.table == "t"

    def test_count_star_only(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT SUM(*) FROM t")

    def test_group_order_limit(self):
        stmt = parse_sql(
            "SELECT region, COUNT(*) FROM t GROUP BY region "
            "ORDER BY region DESC LIMIT 10"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[1] is True
        assert stmt.limit == 10

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t LIMIT -1")

    def test_between_desugars(self):
        stmt = parse_sql("SELECT a FROM t WHERE a BETWEEN 3 AND 9")
        ops = sorted(c.op for c in stmt.where)
        assert ops == ["<=", ">="]

    def test_or_rejected_with_message(self):
        with pytest.raises(ParseError) as err:
            parse_sql("SELECT a FROM t WHERE a = 1 OR a = 2")
        assert "OR" in str(err.value)

    def test_aliases(self):
        stmt = parse_sql("SELECT u.a FROM users AS u")
        assert stmt.tables[0].alias == "u"
        stmt2 = parse_sql("SELECT u.a FROM users u")
        assert stmt2.tables[0].alias == "u"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM t zzz qqq")

    def test_trailing_semicolon_ok(self):
        parse_sql("SELECT a FROM t;")


class TestParserDDL:
    def test_create_table(self):
        stmt = parse_sql("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
        assert isinstance(stmt, CreateTableStmt)
        assert stmt.columns == [("a", "INT"), ("b", "TEXT"), ("c", "FLOAT")]

    def test_create_index(self):
        stmt = parse_sql("CREATE INDEX i ON t (a) USING hash")
        assert isinstance(stmt, CreateIndexStmt)
        assert stmt.kind == "hash"
        assert not stmt.hypothetical

    def test_create_hypothetical_index(self):
        stmt = parse_sql("CREATE HYPOTHETICAL INDEX i ON t (a)")
        assert stmt.hypothetical

    def test_hypothetical_table_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("CREATE HYPOTHETICAL TABLE t (a INT)")

    def test_insert(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, InsertStmt)
        assert stmt.columns == ["a", "b"]
        assert stmt.rows == [[1, "x"], [2, "y"]]

    def test_insert_without_columns(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns is None

    def test_analyze(self):
        assert isinstance(parse_sql("ANALYZE"), AnalyzeStmt)
        stmt = parse_sql("ANALYZE users")
        assert stmt.table == "users"

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_sql("DELETE FROM t")


class TestLowering:
    def test_binds_unqualified_columns(self, tiny_db):
        stmt = parse_sql("SELECT name FROM users WHERE age > 30")
        query = lower_select(stmt, tiny_db.catalog)
        assert query.projections == [("users", "name")]
        assert query.predicates[0].table == "users"

    def test_classifies_join_predicates(self, tiny_db):
        stmt = parse_sql(
            "SELECT name FROM users, orders WHERE id = user_id AND amount > 5"
        )
        query = lower_select(stmt, tiny_db.catalog)
        assert len(query.join_edges) == 1
        assert len(query.predicates) == 1

    def test_ambiguous_column_rejected(self, tiny_db):
        tiny_db.execute("CREATE TABLE extra (id INT)")
        stmt = parse_sql("SELECT id FROM users, extra")
        with pytest.raises(ParseError):
            lower_select(stmt, tiny_db.catalog)

    def test_unknown_column_rejected(self, tiny_db):
        stmt = parse_sql("SELECT nonexistent FROM users")
        with pytest.raises(ParseError):
            lower_select(stmt, tiny_db.catalog)

    def test_alias_resolution(self, tiny_db):
        stmt = parse_sql("SELECT u.name FROM users AS u WHERE u.age < 30")
        query = lower_select(stmt, tiny_db.catalog)
        assert query.projections == [("users", "name")]

    def test_self_join_rejected(self, tiny_db):
        stmt = parse_sql("SELECT a.name FROM users a, users b")
        with pytest.raises(ParseError):
            lower_select(stmt, tiny_db.catalog)

    def test_nonaggregated_projection_needs_group_by(self, tiny_db):
        stmt = parse_sql("SELECT name, COUNT(*) FROM users")
        from repro.common import PlanError
        with pytest.raises(PlanError):
            lower_select(stmt, tiny_db.catalog)

    def test_group_by_projection_allowed(self, tiny_db):
        stmt = parse_sql("SELECT age, COUNT(*) FROM users GROUP BY age")
        query = lower_select(stmt, tiny_db.catalog)
        assert query.group_by == [("users", "age")]

    def test_distinct_carried(self, tiny_db):
        stmt = parse_sql("SELECT DISTINCT age FROM users")
        query = lower_select(stmt, tiny_db.catalog)
        assert query.distinct
