"""Tests for training optimization and in-database inference."""

import numpy as np
import pytest

from repro.common import CatalogError, ReproError
from repro.db4ai.inference.operators import (
    ModelScanOperator,
    select_operator,
    udf_per_row_inference,
    vectorized_inference,
)
from repro.db4ai.inference.pushdown import (
    CascadeStrategy,
    HybridQuery,
    NaiveStrategy,
    PushdownStrategy,
    make_patients_database,
    run_hybrid_query,
    train_stay_models,
)
from repro.db4ai.training.features import (
    FeatureComputeEngine,
    default_feature_library,
    greedy_forward_selection,
    make_regression_data,
)
from repro.db4ai.training.hardware import (
    DEVICES,
    best_device,
    crossover_table,
    scan_time_s,
    training_time,
)
from repro.db4ai.training.model_select import (
    grid_under_budget,
    make_search_space,
    simulate_parallel_search,
    successive_halving,
)
from repro.db4ai.training.registry import ModelRegistry
from repro.engine.query import Predicate
from repro.ml import LinearRegression


class TestModelRegistry:
    def test_register_and_get_latest(self):
        reg = ModelRegistry()
        reg.register("m", object(), metrics={"acc": 0.8})
        r2 = reg.register("m", object(), metrics={"acc": 0.9})
        assert reg.get("m") is r2
        assert reg.get("m", version=1).metrics["acc"] == 0.8

    def test_unknown_model(self):
        with pytest.raises(CatalogError):
            ModelRegistry().get("nope")

    def test_bad_version(self):
        reg = ModelRegistry()
        reg.register("m", object())
        with pytest.raises(CatalogError):
            reg.get("m", version=5)

    def test_best_by_metric(self):
        reg = ModelRegistry()
        reg.register("a", object(), metrics={"rmse": 2.0})
        reg.register("b", object(), metrics={"rmse": 1.0})
        assert reg.best("rmse", higher_is_better=False).name == "b"

    def test_best_with_tag(self):
        reg = ModelRegistry()
        reg.register("a", object(), metrics={"acc": 0.9}, tags=["prod"])
        reg.register("b", object(), metrics={"acc": 0.99})
        assert reg.best("acc", tag="prod").name == "a"

    def test_best_no_metric(self):
        reg = ModelRegistry()
        reg.register("a", object())
        with pytest.raises(CatalogError):
            reg.best("f1")

    def test_lineage_chain(self):
        reg = ModelRegistry()
        r1 = reg.register("base", object())
        r2 = reg.register("tuned", object(), parent=("base", 1))
        chain = reg.lineage_chain("tuned")
        assert [r.name for r in chain] == ["tuned", "base"]

    def test_search_predicate(self):
        reg = ModelRegistry()
        reg.register("x", object(), params={"lr": 0.1})
        reg.register("y", object(), params={"lr": 0.2})
        hits = reg.search(lambda r: r.params.get("lr", 0) > 0.15)
        assert [r.name for r in hits] == ["y"]

    def test_len_counts_versions(self):
        reg = ModelRegistry()
        reg.register("m", object())
        reg.register("m", object())
        assert len(reg) == 2


class TestFeatureSelection:
    @pytest.fixture(scope="class")
    def data(self):
        cols, y = make_regression_data(n_rows=1000, seed=0)
        return cols, y, default_feature_library()

    def test_materialization_same_result_less_cost(self, data):
        cols, y, specs = data
        results = {}
        for materialize in (True, False):
            engine = FeatureComputeEngine(cols, y, specs,
                                          materialize=materialize)
            selected, traj = greedy_forward_selection(engine, k=3)
            results[materialize] = (selected, traj, engine.compute_cost)
        assert results[True][0] == results[False][0]  # same selection
        assert results[True][2] < results[False][2] / 3  # >=3x cheaper

    def test_selection_finds_planted_structure(self, data):
        cols, y, specs = data
        engine = FeatureComputeEngine(cols, y, specs)
        selected, traj = greedy_forward_selection(engine, k=4)
        assert "x0_x1" in selected  # the planted interaction
        assert traj[-1] > 0.9

    def test_scores_monotone_nondecreasing(self, data):
        cols, y, specs = data
        engine = FeatureComputeEngine(cols, y, specs)
        __, traj = greedy_forward_selection(engine, k=4)
        assert all(b >= a - 1e-9 for a, b in zip(traj, traj[1:]))

    def test_unknown_feature_rejected(self, data):
        cols, y, specs = data
        engine = FeatureComputeEngine(cols, y, specs)
        with pytest.raises(ReproError):
            engine.evaluate(["made_up"])


class TestModelSelect:
    @pytest.fixture(scope="class")
    def jobs(self):
        return make_search_space(48, seed=0)

    def test_task_parallel_beats_bsp_with_stragglers(self, jobs):
        task = simulate_parallel_search(jobs, strategy="task", seed=1)
        bsp = simulate_parallel_search(jobs, strategy="bsp", seed=1)
        assert task["throughput"] > bsp["throughput"]

    def test_ps_capacity_slowdown(self, jobs):
        fast = simulate_parallel_search(jobs, strategy="ps", seed=1,
                                        server_capacity=8)
        slow = simulate_parallel_search(jobs, strategy="ps", seed=1,
                                        server_capacity=2)
        assert slow["makespan"] > fast["makespan"]

    def test_unknown_strategy(self, jobs):
        with pytest.raises(ReproError):
            simulate_parallel_search(jobs, strategy="mapreduce")

    def test_halving_finds_best_config(self, jobs):
        result = successive_halving(jobs, budget_seconds=800)
        oracle = max(j.quality(1.0) for j in jobs)
        assert result["best_quality"] >= oracle - 0.03

    def test_halving_beats_or_ties_grid(self, jobs):
        h = successive_halving(jobs, budget_seconds=800)
        g = grid_under_budget(jobs, budget_seconds=800)
        assert h["best_quality"] >= g["best_quality"] - 1e-9

    def test_halving_respects_budget(self, jobs):
        result = successive_halving(jobs, budget_seconds=500)
        assert result["budget_used"] <= 500

    def test_empty_space_rejected(self):
        with pytest.raises(ReproError):
            successive_halving([], 100)


class TestHardwareModel:
    def test_column_layout_scans_less(self):
        row = scan_time_s(10**6, 6, 20, layout="row")
        col = scan_time_s(10**6, 6, 20, layout="column")
        assert col < row

    def test_bad_layout(self):
        with pytest.raises(ReproError):
            scan_time_s(10, 1, 2, layout="hybrid")

    def test_cpu_wins_small_gpu_wins_large(self):
        small_best, __ = best_device(10_000)
        large_best, __ = best_device(100_000_000)
        assert small_best == "cpu"
        assert large_best == "gpu"

    def test_crossover_exists(self):
        sizes = [10**k for k in range(3, 9)]
        winners = [best_device(n)[0] for n in sizes]
        assert winners[0] == "cpu" and winners[-1] != "cpu"

    def test_components_sum(self):
        t = training_time("fpga", 10**6, 6)
        assert t["total"] == pytest.approx(
            t["scan"] + t["transfer"] + t["compute"] + DEVICES["fpga"].setup_ms / 1000.0
        )

    def test_crossover_table_rows(self):
        rows = crossover_table([1000, 10**6])
        assert len(rows) == 2 * 3 * 2


class TestInferenceOperators:
    @pytest.fixture(scope="class")
    def model(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2))
        return LinearRegression().fit(X, X[:, 0] + 2 * X[:, 1])

    def test_udf_and_vectorized_agree(self, model, rng):
        X = rng.normal(size=(500, 2))
        udf_pred, __ = udf_per_row_inference(model, X)
        vec_pred, __ = vectorized_inference(model, X)
        assert np.allclose(udf_pred, vec_pred)

    def test_vectorized_faster_at_scale(self, model, rng):
        X = rng.normal(size=(5000, 2))
        __, t_udf = udf_per_row_inference(model, X)
        __, t_vec = vectorized_inference(model, X)
        assert t_vec < t_udf

    def test_select_operator_crossover(self):
        assert select_operator(10) == "udf"
        assert select_operator(100000) == "vectorized"

    def test_model_scan_operator(self, model):
        op = ModelScanOperator(model, [("t", "a"), ("t", "b")], mode="auto")
        columns = [("t", "a"), ("t", "b")]
        rows = [(1.0, 2.0), (0.0, 1.0)]
        new_cols, new_rows = op.apply(columns, rows)
        assert new_cols[-1] == ("ml", "prediction")
        assert new_rows[0][-1] == pytest.approx(5.0)
        assert op.last_mode in ("udf", "vectorized")

    def test_model_scan_missing_column(self, model):
        op = ModelScanOperator(model, [("t", "zz")])
        with pytest.raises(ReproError):
            op.apply([("t", "a")], [(1.0,)])

    def test_model_scan_empty_input(self, model):
        op = ModelScanOperator(model, [("t", "a")])
        cols, rows = op.apply([("t", "a")], [])
        assert rows == []

    def test_bad_mode(self, model):
        with pytest.raises(ReproError):
            ModelScanOperator(model, [], mode="turbo")


class TestHybridPushdown:
    @pytest.fixture(scope="class")
    def setup(self):
        db, features = make_patients_database(5000, seed=0)
        models = train_stay_models(db, features, n_train=1500, seed=0)
        hybrid = HybridQuery("patients",
                             [Predicate("patients", "age", ">", 60)],
                             features, threshold=5.0)
        return db, models, hybrid

    def test_pushdown_predicts_fewer_rows_same_answer(self, setup):
        db, models, hybrid = setup
        naive = NaiveStrategy().run(db, models, hybrid)
        pushdown = PushdownStrategy().run(db, models, hybrid)
        assert pushdown["expensive_rows"] < naive["expensive_rows"]
        assert pushdown["selected"] == naive["selected"]

    def test_cascade_cuts_expensive_rows_further(self, setup):
        db, models, hybrid = setup
        pushdown = PushdownStrategy().run(db, models, hybrid)
        cascade = CascadeStrategy(low=0.1, high=0.9).run(db, models, hybrid)
        assert cascade["expensive_rows"] < pushdown["expensive_rows"]

    def test_all_strategies_high_recall(self, setup):
        db, models, hybrid = setup
        results = run_hybrid_query(db, models, hybrid)
        for row in results:
            assert row["recall"] > 0.85
            assert row["precision"] > 0.7

    def test_cascade_threshold_validation(self):
        with pytest.raises(ReproError):
            CascadeStrategy(low=0.9, high=0.1)

    def test_wider_uncertain_band_predicts_more(self, setup):
        db, models, hybrid = setup
        narrow = CascadeStrategy(low=0.4, high=0.6).run(db, models, hybrid)
        wide = CascadeStrategy(low=0.02, high=0.98).run(db, models, hybrid)
        assert wide["expensive_rows"] > narrow["expensive_rows"]

    def test_empty_relational_filter(self, setup):
        db, models, __ = setup
        hybrid = HybridQuery("patients",
                             [Predicate("patients", "age", ">", 999)],
                             ["age", "severity", "comorbidities",
                              "emergency", "ward"], threshold=5.0)
        result = PushdownStrategy().run(db, models, hybrid)
        assert result["selected"] == set()
        assert result["expensive_rows"] == 0
