"""Concurrency battery for the query server: the no-torn-reads invariant.

The server pins every read snapshot **under the commit lock** and logs
the per-table version vector after every commit. Together those give a
property a test can check exactly, under real thread interleaving:

    every version vector a read observes is one the commit log records —
    a catalog state that actually existed between two commits, never a
    torn mix of half-applied writes.

These tests race barrier-synchronized writer and reader threads (through
server sessions — the only supported write path), then check:

* every read's ``ExecutionTelemetry.catalog_versions`` is a member of
  ``QueryServer.committed_vectors()``;
* per reader, observed vectors are monotonically non-decreasing
  (statement isolation never travels back in time);
* data agrees with the vector in the same result: each writer commit
  appends a fixed row count, so ``COUNT(*)`` is a pure function of the
  table's observed version;
* pinned (``isolation="session"``) readers observe one single committed
  vector for their whole lifetime (repeatable read).

Everything is seeded and event-synchronized — no sleeps; thread
interleaving is the only nondeterminism, and the assertions hold for
*any* interleaving. The tier-1 sizes keep the suite fast; the ``slow``
variant turns the same harness up for ``make test-concurrency``.
"""

import random
import threading

import pytest

from repro.engine import Database, QueryServer

#: Rows every writer commit appends — what binds COUNT(*) to the version.
ROWS_PER_COMMIT = 3

TABLES = ("t0", "t1", "t2")


def _server_db():
    db = Database()
    for name in TABLES:
        db.execute("CREATE TABLE %s (id INT, k INT, v FLOAT)" % name)
        db.catalog.table(name).insert_rows(
            [(i, i % 5, float(i)) for i in range(60)]
        )
    db.execute("ANALYZE")
    return db


def _run_race(n_writers, commits_per_writer, n_readers, reads_per_reader,
              seed=0):
    """Race writers and readers through one server; return observations.

    Returns ``(server, base_versions, reader_obs)`` where ``reader_obs``
    maps reader index to its ordered ``[(vector_dict, table, count)]``
    observations.
    """
    db = _server_db()
    server = QueryServer(db, tenant_quota=1e12, quota_refill_rate=0.0)
    base_versions = dict(db.catalog.version_vector())
    base_counts = {name: db.catalog.table(name).n_rows for name in TABLES}

    barrier = threading.Barrier(n_writers + n_readers)
    first_commit = threading.Event()
    errors = []
    reader_obs = {i: [] for i in range(n_readers)}

    def writer(idx):
        try:
            rng = random.Random(seed * 7919 + idx)
            with server.session(tenant="writer%d" % idx) as sess:
                barrier.wait()
                for c in range(commits_per_writer):
                    table = TABLES[rng.randrange(len(TABLES))]
                    sess.insert_rows(table, [
                        (10_000 + idx * 1000 + c * 10 + r,
                         rng.randrange(5), 0.0)
                        for r in range(ROWS_PER_COMMIT)
                    ])
                    first_commit.set()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    def reader(idx):
        try:
            rng = random.Random(seed * 104729 + idx)
            with server.session(tenant="reader%d" % idx) as sess:
                barrier.wait()

                def observe(table):
                    result = sess.execute("SELECT COUNT(*) FROM %s" % table)
                    reader_obs[idx].append((
                        dict(result.telemetry.catalog_versions),
                        table,
                        result.rows[0][0],
                    ))

                for __ in range(reads_per_reader):
                    observe(TABLES[rng.randrange(len(TABLES))])
                # Guarantee the race is observable for *every*
                # interleaving: once at least one commit has landed, one
                # more read must pin a post-base snapshot. The extra
                # observation flows through the same torn-read
                # assertions as all the others.
                first_commit.wait(timeout=60)
                observe(TABLES[rng.randrange(len(TABLES))])
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(n_writers)]
    threads += [threading.Thread(target=reader, args=(i,))
                for i in range(n_readers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]
    # All commits landed in the log, in sequence order.
    history = server.commit_history()
    assert len(history) == 1 + n_writers * commits_per_writer
    assert [seq for seq, __ in history] == list(range(len(history)))
    return server, base_versions, base_counts, reader_obs


def _assert_no_torn_reads(server, base_versions, base_counts, reader_obs):
    committed = server.committed_vectors()
    for idx, observations in reader_obs.items():
        assert observations, "reader %d observed nothing" % idx
        prev = None
        for vector, table, count in observations:
            key = tuple(sorted(vector.items()))
            # The heart of the invariant: this exact vector was committed.
            assert key in committed, (
                "reader %d observed a torn vector %r" % (idx, vector)
            )
            # Statement isolation never travels backwards.
            if prev is not None:
                assert all(vector[t] >= prev[t] for t in vector), (
                    "reader %d went back in time: %r -> %r"
                    % (idx, prev, vector)
                )
            prev = vector
            # Data is a pure function of the observed version: each bump
            # past the base appended exactly ROWS_PER_COMMIT rows.
            expected = (base_counts[table] + ROWS_PER_COMMIT
                        * (vector[table] - base_versions[table]))
            assert count == expected, (
                "reader %d: %s count %d disagrees with version %d"
                % (idx, table, count, vector[table])
            )


class TestNoTornReads:
    def test_statement_reads_see_only_committed_vectors(self):
        server, base_v, base_c, obs = _run_race(
            n_writers=2, commits_per_writer=12,
            n_readers=4, reads_per_reader=15,
        )
        _assert_no_torn_reads(server, base_v, base_c, obs)
        # The race was real: someone read a post-base vector.
        assert any(
            vec != base_v
            for observations in obs.values()
            for vec, __, __ in observations
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_heavy_race(self, seed):
        server, base_v, base_c, obs = _run_race(
            n_writers=4, commits_per_writer=40,
            n_readers=8, reads_per_reader=50, seed=seed,
        )
        _assert_no_torn_reads(server, base_v, base_c, obs)

    def test_pinned_sessions_are_repeatable_read(self):
        """Session-isolation readers racing live writers observe exactly
        one committed vector, forever, and their counts never move."""
        db = _server_db()
        server = QueryServer(db, tenant_quota=1e12, quota_refill_rate=0.0)
        n_readers, n_commits = 4, 20
        start = threading.Barrier(n_readers + 1)
        errors = []
        observations = {i: [] for i in range(n_readers)}

        def reader(idx):
            try:
                with server.session(tenant="r%d" % idx,
                                    isolation="session") as sess:
                    start.wait()
                    for __ in range(10):
                        result = sess.execute("SELECT COUNT(*) FROM t0")
                        observations[idx].append((
                            dict(result.telemetry.catalog_versions),
                            result.rows[0][0],
                        ))
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        def writer():
            try:
                with server.session(tenant="w") as sess:
                    start.wait()
                    for c in range(n_commits):
                        sess.insert_rows(
                            "t0", [(20_000 + c, 0, 0.0)]
                        )
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(n_readers)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        committed = server.committed_vectors()
        for idx, obs in observations.items():
            vectors = {tuple(sorted(vec.items())) for vec, __ in obs}
            counts = {count for __, count in obs}
            # One vector, one count, and the vector was committed.
            assert len(vectors) == 1, (idx, vectors)
            assert len(counts) == 1, (idx, counts)
            assert vectors.pop() in committed
        # Meanwhile the live table really did move under them.
        assert db.catalog.table("t0").n_rows == 60 + n_commits

    def test_commit_log_linearizes_interleaved_writers(self):
        """Two writer sessions interleave commits; the log's vectors must
        be totally ordered (pointwise non-decreasing, strictly growing in
        total) — the single-writer path never interleaves two commits."""
        db = _server_db()
        server = QueryServer(db, tenant_quota=1e12, quota_refill_rate=0.0)
        barrier = threading.Barrier(3)
        errors = []

        def writer(idx):
            try:
                rng = random.Random(idx)
                with server.session(tenant="w%d" % idx) as sess:
                    barrier.wait()
                    for __ in range(25):
                        table = TABLES[rng.randrange(len(TABLES))]
                        sess.insert_rows(table, [(0, 0, 0.0)])
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        history = server.commit_history()
        assert len(history) == 1 + 3 * 25
        for (__, before), (__, after) in zip(history, history[1:]):
            assert all(after[t] >= before[t] for t in after)
            assert sum(after.values()) == sum(before.values()) + 1
