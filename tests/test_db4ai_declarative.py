"""Tests for AISQL: CREATE MODEL / PREDICT / EVALUATE."""

import numpy as np
import pytest

from repro.common import CatalogError, ParseError
from repro.db4ai.declarative import AISQLExtension, PredictResult
from repro.engine import Database


@pytest.fixture
def ml_db():
    db = Database()
    db.execute("CREATE TABLE samples (x FLOAT, z FLOAT, y FLOAT, label INT)")
    rng = np.random.default_rng(0)
    rows = []
    for __ in range(400):
        x, z = rng.normal(), rng.normal()
        y = 2.0 * x - z + 0.05 * rng.normal()
        label = 1 if x + z > 0 else 0
        rows.append("(%.4f, %.4f, %.4f, %d)" % (x, z, y, label))
    db.execute("INSERT INTO samples VALUES " + ", ".join(rows))
    db.execute("ANALYZE samples")
    ext = AISQLExtension().install(db)
    return db, ext


class TestCreateModel:
    def test_regressor_trains_and_registers(self, ml_db):
        db, ext = ml_db
        out = db.execute(
            "CREATE MODEL m KIND regressor ON samples TARGET y "
            "FEATURES (x, z) WITH (epochs = 60)"
        )
        assert out.startswith("CREATE MODEL m v1")
        record = ext.registry.get("m")
        assert record.metrics["train_r2"] > 0.9
        assert record.lineage["table"] == "samples"
        assert record.lineage["n_rows"] == 400

    def test_classifier_kind(self, ml_db):
        db, ext = ml_db
        db.execute(
            "CREATE MODEL c KIND classifier ON samples TARGET label "
            "FEATURES (x, z) WITH (epochs = 60)"
        )
        assert ext.registry.get("c").metrics["train_accuracy"] > 0.85

    def test_linear_kind(self, ml_db):
        db, ext = ml_db
        db.execute(
            "CREATE MODEL lin KIND linear ON samples TARGET y FEATURES (x, z)"
        )
        assert ext.registry.get("lin").metrics["train_r2"] > 0.95

    def test_where_clause_limits_training_rows(self, ml_db):
        db, ext = ml_db
        db.execute(
            "CREATE MODEL sub KIND linear ON samples TARGET y "
            "FEATURES (x, z) WHERE x > 0"
        )
        assert ext.registry.get("sub").lineage["n_rows"] < 400
        assert ext.registry.get("sub").lineage["predicates"]

    def test_versioning(self, ml_db):
        db, ext = ml_db
        db.execute("CREATE MODEL v KIND linear ON samples TARGET y FEATURES (x)")
        db.execute("CREATE MODEL v KIND linear ON samples TARGET y FEATURES (z)")
        assert ext.registry.get("v").version == 2
        assert len(ext.registry.versions("v")) == 2

    def test_text_feature_rejected(self, ml_db):
        db, __ = ml_db
        db.execute("CREATE TABLE txt (s TEXT, y FLOAT)")
        db.execute("INSERT INTO txt VALUES ('a', 1.0)")
        with pytest.raises(ParseError):
            db.execute("CREATE MODEL t KIND linear ON txt TARGET y FEATURES (s)")

    def test_empty_training_set_rejected(self, ml_db):
        db, __ = ml_db
        with pytest.raises(ParseError):
            db.execute(
                "CREATE MODEL e KIND linear ON samples TARGET y "
                "FEATURES (x) WHERE x > 99999"
            )

    def test_bad_kind_rejected(self, ml_db):
        db, __ = ml_db
        with pytest.raises(ParseError):
            db.execute(
                "CREATE MODEL b KIND forest ON samples TARGET y FEATURES (x)"
            )


class TestPredictEvaluate:
    def test_predict_appends_column(self, ml_db):
        db, __ = ml_db
        db.execute("CREATE MODEL p KIND linear ON samples TARGET y FEATURES (x, z)")
        result = db.execute("PREDICT p ON samples LIMIT 5")
        assert isinstance(result, PredictResult)
        assert len(result.rows) == 5
        assert result.columns[-1] == "prediction"
        # prediction approximately 2x - z
        x, z, pred = result.rows[0][0], result.rows[0][1], result.rows[0][2]
        assert pred == pytest.approx(2 * x - z, abs=0.2)

    def test_predict_with_where(self, ml_db):
        db, __ = ml_db
        db.execute("CREATE MODEL pw KIND linear ON samples TARGET y FEATURES (x)")
        result = db.execute("PREDICT pw ON samples WHERE x > 1.0")
        assert all(row[0] > 1.0 for row in result.rows)

    def test_predict_empty_result(self, ml_db):
        db, __ = ml_db
        db.execute("CREATE MODEL pe KIND linear ON samples TARGET y FEATURES (x)")
        result = db.execute("PREDICT pe ON samples WHERE x > 99999")
        assert result.rows == []

    def test_predict_unknown_model(self, ml_db):
        db, __ = ml_db
        with pytest.raises(CatalogError):
            db.execute("PREDICT ghost ON samples")

    def test_evaluate_updates_registry(self, ml_db):
        db, ext = ml_db
        db.execute("CREATE MODEL ev KIND linear ON samples TARGET y FEATURES (x, z)")
        metrics = db.execute("EVALUATE ev ON samples")
        assert metrics["r2"] > 0.95
        assert "r2" in ext.registry.get("ev").metrics

    def test_evaluate_classifier_accuracy(self, ml_db):
        db, __ = ml_db
        db.execute(
            "CREATE MODEL evc KIND classifier ON samples TARGET label "
            "FEATURES (x, z) WITH (epochs = 60)"
        )
        metrics = db.execute("EVALUATE evc ON samples")
        assert metrics["accuracy"] > 0.85


class TestHookDispatch:
    def test_plain_sql_still_works(self, ml_db):
        db, __ = ml_db
        assert db.query("SELECT COUNT(*) FROM samples")[0][0] == 400

    def test_create_table_not_intercepted(self, ml_db):
        db, __ = ml_db
        assert db.execute("CREATE TABLE other (a INT)") == "CREATE TABLE"

    def test_non_aisql_create_model_prefix(self, ml_db):
        db, __ = ml_db
        # CREATE MODELX... should NOT be treated as AISQL (word boundary).
        with pytest.raises(ParseError):
            db.execute("CREATE MODELING (a INT)")
