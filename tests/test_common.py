"""Tests for repro.common: errors, rng, timing, result tables."""

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common import (
    ParseError,
    ReproError,
    ResultTable,
    Stopwatch,
    ensure_rng,
    spawn_rngs,
    timed,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent(self):
        g1, g2 = spawn_rngs(0, 2)
        assert g1.integers(0, 10**9) != g2.integers(0, 10**9)

    def test_deterministic(self):
        a = spawn_rngs(7, 3)[2].integers(0, 10**9)
        b = spawn_rngs(7, 3)[2].integers(0, 10**9)
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestStopwatch:
    def test_accumulates(self):
        w = Stopwatch().start()
        time.sleep(0.01)
        w.stop()
        first = w.elapsed
        assert first >= 0.005
        w.start()
        time.sleep(0.01)
        w.stop()
        assert w.elapsed > first

    def test_reset(self):
        w = Stopwatch().start()
        w.stop()
        w.reset()
        assert w.elapsed == 0.0
        assert not w.running

    def test_running_property(self):
        w = Stopwatch()
        assert not w.running
        w.start()
        assert w.running
        w.stop()
        assert not w.running

    def test_timed_context_sink(self):
        sink = {}
        with timed(sink, "step"):
            time.sleep(0.005)
        assert sink["step"] >= 0.003


class TestResultTable:
    def test_positional_rows(self):
        t = ResultTable("t", ["a", "b"])
        t.add_row(1, 2.5)
        assert len(t) == 1
        assert t.column("a") == [1]

    def test_named_rows(self):
        t = ResultTable("t", ["a", "b"])
        t.add_row(b=2, a=1)
        assert t.rows[0] == [1, 2]

    def test_wrong_width_rejected(self):
        t = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_missing_named_rejected(self):
        t = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(a=1)

    def test_unknown_named_rejected(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ValueError):
            t.add_row(a=1, z=2)

    def test_mixing_styles_rejected(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, a=1)

    def test_unknown_column_lookup(self):
        t = ResultTable("t", ["a"])
        with pytest.raises(KeyError):
            t.column("zz")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable("t", [])

    def test_text_rendering_contains_everything(self):
        t = ResultTable("My Title", ["name", "value"])
        t.add_row("alpha", 1.25)
        text = t.to_text()
        assert "My Title" in text
        assert "alpha" in text
        assert "1.25" in text

    def test_markdown_shape(self):
        t = ResultTable("T", ["x"])
        t.add_row(3)
        md = t.to_markdown()
        assert md.startswith("### T")
        assert "| x |" in md
        assert "| 3 |" in md

    def test_csv_escaping(self):
        t = ResultTable("T", ["x"])
        t.add_row('he said "hi", twice')
        csv = t.to_csv()
        assert '"he said ""hi"", twice"' in csv

    def test_bool_rendering(self):
        t = ResultTable("T", ["ok"])
        t.add_row(True)
        assert "yes" in t.to_text()

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), min_size=1, max_size=8))
    def test_column_roundtrip_property(self, values):
        t = ResultTable("T", ["v"])
        for v in values:
            t.add_row(float(v))
        assert t.column("v") == [float(v) for v in values]


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)

    def test_parse_error_position(self):
        err = ParseError("bad", position=7)
        assert err.position == 7
