"""Session-layer tests: unified surface, policy, audit, dry-run, rollback.

The safety contract under test, per acceptance criteria:

* the three legacy entry points (``Database.execute``, ``db.snapshot()``,
  ``QueryServer.session``) behave exactly as before while being facades
  over :class:`SessionContext`;
* policies catch denied columns wherever they appear (projection,
  predicate, aggregate, AISQL feature list) and row/cost ceilings hold;
* the audit log records every statement — allowed, denied, and failed —
  with policy decision, version vector, and estimated vs. actual cost,
  and is queryable as a table;
* ``dry_run`` plans whole scripts (AISQL included) without executing;
* ``AgentSession.rollback()`` restores bit-identical state — rows,
  version vectors, COUNT(*) — in **all six** executor mode × fusion
  configurations, embedded and served.
"""

import pytest

from repro.common import CatalogError, ExecutionError, ParseError
from repro.engine import (
    AgentSession,
    AuditLog,
    Database,
    EngineError,
    Policy,
    PolicyError,
    QueryServer,
    SessionContext,
    SessionError,
    SessionResult,
    split_script,
)
from repro.engine.executor import EXECUTOR_MODES
from repro.engine.session.context import classify, sniff_kind

SEED_ROWS = [
    (1, "alice", 30), (2, "bob", 25), (3, "carol", 41),
    (4, "dave", 25), (5, "erin", 35),
]


def make_db(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE users (id INT, name TEXT, age INT)")
    db.execute(
        "INSERT INTO users VALUES "
        + ", ".join("(%d, '%s', %d)" % r for r in SEED_ROWS)
    )
    db.execute("ANALYZE users")
    return db


def table_state(db, name):
    """Bit-identity probe: ordered rows + version vector + COUNT(*)."""
    rows = db.query("SELECT * FROM %s" % name)
    vector = db.catalog.version_vector()
    count = db.query("SELECT COUNT(*) FROM %s" % name)[0][0]
    return rows, vector, count


# ----------------------------------------------------------------------
# Script splitting and classification
# ----------------------------------------------------------------------
class TestClassify:
    def test_split_script_respects_quotes(self):
        stmts = split_script(
            "INSERT INTO t VALUES (1, 'a;b');\n SELECT * FROM t;;"
        )
        assert stmts == ["INSERT INTO t VALUES (1, 'a;b')",
                         "SELECT * FROM t"]

    def test_sniff_kinds(self):
        assert sniff_kind("SELECT 1") == "SELECT"
        assert sniff_kind("  insert into t values (1)") == "INSERT"
        assert sniff_kind("CREATE TABLE t (a INT)") == "CREATE TABLE"
        assert sniff_kind("CREATE INDEX i ON t (a)") == "CREATE INDEX"
        assert sniff_kind("CREATE MODEL m ON t TARGET y") == "CREATE MODEL"
        assert sniff_kind("PREDICT m ON t") == "PREDICT"
        assert sniff_kind("gibberish") == "UNKNOWN"
        assert sniff_kind("") == "UNKNOWN"

    def test_deep_select_collects_all_column_references(self):
        db = make_db()
        info = classify(
            db,
            "SELECT name FROM users WHERE age > 30 ORDER BY id",
            deep=True,
        )
        assert info.kind == "SELECT"
        assert [t.lower() for t in info.tables] == ["users"]
        cols = {(t.lower(), c.lower()) for t, c in info.columns}
        assert ("users", "name") in cols      # projection
        assert ("users", "age") in cols       # predicate
        assert ("users", "id") in cols        # order key

    def test_select_star_expands_all_columns(self):
        db = make_db()
        info = classify(db, "SELECT * FROM users", deep=True)
        cols = {c.lower() for _, c in info.columns}
        assert cols == {"id", "name", "age"}

    def test_deep_insert_reports_rows_and_columns(self):
        db = make_db()
        info = classify(
            db, "INSERT INTO users VALUES (9, 'zed', 50)", deep=True)
        assert info.kind == "INSERT"
        assert info.row_estimate == 1
        assert {c.lower() for _, c in info.columns} == {"id", "name", "age"}


# ----------------------------------------------------------------------
# Facade equivalence: legacy surfaces are unchanged
# ----------------------------------------------------------------------
class TestFacades:
    def test_database_execute_returns_legacy_types(self):
        db = make_db()
        assert db.execute("CREATE TABLE t (a INT)") == "CREATE TABLE"
        assert db.execute("INSERT INTO t VALUES (1)") == "INSERT 1"
        assert db.execute("ANALYZE t") == "ANALYZE"
        result = db.execute("SELECT COUNT(*) FROM t")
        assert result.rows == [(1,)]
        # Hooked statements still return the hook's raw result.
        db.pipeline.statement_hooks.append(
            lambda d, text: "HOOKED" if text.startswith("MAGIC") else None)
        assert db.execute("MAGIC") == "HOOKED"

    def test_session_execute_wraps_same_raw(self):
        db = make_db()
        session = db.session()
        res = session.execute("SELECT name FROM users WHERE age = 25")
        assert isinstance(res, SessionResult)
        assert res.kind == "SELECT"
        assert res.rows == [("bob",), ("dave",)]
        assert res.raw.rows == res.rows

    def test_snapshot_facade_pins_and_rejects_writes(self):
        db = make_db()
        snap = db.snapshot()
        db.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        assert snap.query("SELECT COUNT(*) FROM users") == [(5,)]
        assert db.query("SELECT COUNT(*) FROM users") == [(6,)]
        with pytest.raises(ExecutionError, match="read-only"):
            snap.execute("INSERT INTO users VALUES (7, 'gail', 70)")
        # Gated snapshot session reads the same pinned state.
        gated = snap.session(policy=Policy.read_only())
        assert gated.execute("SELECT COUNT(*) FROM users").rows == [(5,)]

    def test_server_session_facade_unchanged(self):
        db = make_db()
        server = QueryServer(db)
        with server.session(tenant="t1") as session:
            result = session.execute("SELECT COUNT(*) FROM users")
            assert result.rows == [(5,)]
            assert session.execute(
                "INSERT INTO users VALUES (6, 'fred', 60)") == "INSERT 1"
        assert server.commit_history()[-1][1]["users"] > 0

    def test_server_session_context_gates(self):
        db = make_db()
        server = QueryServer(db)
        with server.session(tenant="t1") as session:
            gated = session.session_context(policy=Policy.read_only())
            assert gated.execute("SELECT COUNT(*) FROM users").rows == [(5,)]
            with pytest.raises(PolicyError):
                gated.execute("INSERT INTO users VALUES (9, 'x', 1)")


# ----------------------------------------------------------------------
# Policy edges
# ----------------------------------------------------------------------
class TestPolicy:
    def test_denied_column_inside_expression(self):
        """A deny-listed column is caught in WHERE, not just SELECT."""
        db = make_db()
        session = db.session(policy=Policy(deny_columns=("users.age",)))
        with pytest.raises(PolicyError, match="column-deny") as exc:
            session.execute("SELECT name FROM users WHERE age > 30")
        assert exc.value.decision.rule == "column-deny"
        # Aggregate argument is caught too.
        with pytest.raises(PolicyError, match="column-deny"):
            session.execute("SELECT AVG(age) FROM users")
        # Untainted statements pass — including aggregate-only queries,
        # which expose no columns (COUNT(*) is not a SELECT *).
        assert session.execute("SELECT name FROM users WHERE id = 1"
                               ).rows == [("alice",)]
        assert session.execute("SELECT COUNT(*) FROM users"
                               ).rows == [(5,)]

    def test_table_gates(self):
        db = make_db()
        session = db.session(policy=Policy(allow_tables=("users",)))
        db.execute("CREATE TABLE secrets (k TEXT)")
        with pytest.raises(PolicyError, match="table-allow"):
            session.execute("SELECT * FROM secrets")

    def test_statement_kind_gate(self):
        db = make_db()
        session = db.session(policy=Policy.read_only())
        with pytest.raises(PolicyError, match="statement-kind"):
            session.execute("CREATE INDEX i ON users (age)")
        with pytest.raises(PolicyError, match="statement-kind"):
            session.execute("ANALYZE users")

    def test_row_limit_on_read_enforced_after_execution(self):
        """Row ceilings bind on the realized result — including through
        the fused pipeline (fusion on is the default config)."""
        db = make_db()
        assert db.executor.fusion_enabled
        audit = AuditLog()
        session = db.session(policy=Policy(max_rows=3), audit=audit)
        with pytest.raises(PolicyError, match="row-limit"):
            session.execute("SELECT * FROM users")
        rec = audit.records()[-1]
        assert rec.decision == "deny" and rec.status == "denied"
        assert rec.n_rows == 5  # the overrun was measured, not guessed
        # Within the ceiling passes.
        assert len(session.execute(
            "SELECT * FROM users WHERE age = 25").rows) == 2

    def test_row_limit_on_insert_enforced_before_execution(self):
        db = make_db()
        session = db.session(policy=Policy(max_rows=2))
        with pytest.raises(PolicyError, match="row-limit"):
            session.execute(
                "INSERT INTO users VALUES (6,'x',1),(7,'y',2),(8,'z',3)")
        # Nothing was applied.
        assert db.query("SELECT COUNT(*) FROM users") == [(5,)]

    def test_cost_ceiling(self):
        db = make_db()
        session = db.session(policy=Policy(max_cost=0.5))
        with pytest.raises(PolicyError, match="cost-limit"):
            session.execute("SELECT * FROM users")

    def test_unknown_kind_rejected_in_policy(self):
        with pytest.raises(PolicyError, match="unknown statement kinds"):
            Policy(statement_kinds=("DROP",))


# ----------------------------------------------------------------------
# Audit log
# ----------------------------------------------------------------------
class TestAudit:
    def test_every_statement_recorded_with_est_vs_actual(self):
        db = make_db()
        audit = AuditLog()
        session = db.session(audit=audit)
        session.execute("SELECT name FROM users WHERE age > 30")
        session.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        assert len(audit) == 2
        read, write = audit.records()
        assert read.kind == "SELECT" and read.status == "ok"
        assert read.decision == "allow"
        assert read.est_cost is not None and read.est_cost > 0
        assert read.actual_work is not None and read.actual_work > 0
        assert read.versions["users"] > 0
        assert read.telemetry["mode"] in EXECUTOR_MODES
        assert write.kind == "INSERT" and write.n_rows == 1

    def test_audit_survives_execution_failure(self):
        db = make_db()
        audit = AuditLog()
        session = db.session(audit=audit)
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM missing")
        with pytest.raises(ParseError):
            session.execute("THIS IS NOT SQL")
        assert len(audit) == 2
        assert all(r.status == "error" for r in audit)
        assert audit.records()[0].error  # message captured
        assert audit.failed() == audit.records()

    def test_audit_queryable_as_table(self):
        db = make_db()
        audit = AuditLog()
        session = db.session(
            policy=Policy(deny_columns=("users.age",)), audit=audit)
        session.execute("SELECT name FROM users")
        with pytest.raises(PolicyError):
            session.execute("SELECT age FROM users")
        audit.attach(db.catalog, "session_audit")
        rows = db.query(
            "SELECT seq, kind, decision, status FROM session_audit")
        assert rows == [(1, "SELECT", "allow", "ok"),
                        (2, "SELECT", "deny", "denied")]
        # est vs actual landed in the table for the executed read.
        est, actual = db.query(
            "SELECT est_cost, actual_work FROM session_audit WHERE seq = 1"
        )[0]
        assert est > 0 and actual > 0
        # Re-attaching refreshes rather than erroring.
        session.execute("SELECT name FROM users")
        audit.attach(db.catalog, "session_audit")
        assert db.query("SELECT COUNT(*) FROM session_audit") == [(3,)]


# ----------------------------------------------------------------------
# Dry run
# ----------------------------------------------------------------------
class TestDryRun:
    def test_script_planned_not_executed(self):
        db = make_db()
        session = db.session(policy=Policy(deny_tables=("secrets",)))
        before = table_state(db, "users")
        report = session.dry_run(
            "SELECT name FROM users WHERE age > 30;"
            "INSERT INTO users VALUES (9, 'zed', 90);"
            "CREATE TABLE t2 (a INT)"
        )
        assert table_state(db, "users") == before  # nothing ran
        assert not db.catalog.has_table("t2")
        assert report.ok and len(report) == 3
        select, insert, ddl = report
        assert select.kind == "SELECT"
        assert select.est_cost > 0 and select.est_rows is not None
        assert insert.kind == "INSERT" and insert.est_rows == 1
        assert ddl.kind == "CREATE TABLE"
        assert report.total_est_cost > 0

    def test_dry_run_flags_denials_and_errors(self):
        db = make_db()
        session = db.session(policy=Policy.read_only())
        report = session.dry_run(
            "SELECT name FROM users;"
            "INSERT INTO users VALUES (9, 'zed', 90);"
            "SELECT * FROM missing"
        )
        assert not report.ok
        assert len(report.denied()) == 1
        assert report.denied()[0].kind == "INSERT"
        assert len(report.errors()) == 1
        assert "missing" in report.errors()[0].error


# ----------------------------------------------------------------------
# AgentSession transactions: the rollback acceptance criterion
# ----------------------------------------------------------------------
MODE_FUSION = [(m, f) for m in EXECUTOR_MODES for f in (True, False)]


class TestAgentRollback:
    @pytest.mark.parametrize("mode,fusion", MODE_FUSION)
    def test_misbehaving_script_fully_undone(self, mode, fusion):
        """Post-rollback tables, version vectors, and COUNT(*) are
        bit-identical in all six mode × fusion configs."""
        db = make_db(executor_mode=mode, fusion_enabled=fusion)
        before = table_state(db, "users")
        agent = db.agent_session(policy=Policy(deny_tables=("secrets",)))
        with pytest.raises(CatalogError):
            with agent:
                agent.run_script(
                    "INSERT INTO users VALUES (6, 'mallory', 66);"
                    "CREATE TABLE loot (k TEXT);"
                    "INSERT INTO loot VALUES ('swag');"
                    "CREATE INDEX ix ON users (age);"
                    "SELECT * FROM nonexistent"  # the misbehavior
                )
        assert table_state(db, "users") == before
        assert not db.catalog.has_table("loot")
        assert "ix" not in [ix.name for ix in db.catalog.indexes()]
        # The audit log survived the rollback and recorded the failure.
        kinds = [r.kind for r in agent.audit]
        assert "ROLLBACK" in kinds and "error" in [
            r.status for r in agent.audit]

    def test_rollback_after_partial_script(self):
        """Explicit begin/rollback mid-script: earlier statements are
        applied, rollback reverts all of them."""
        db = make_db()
        agent = db.agent_session()
        before = table_state(db, "users")
        agent.begin()
        agent.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        agent.execute("INSERT INTO users VALUES (7, 'gail', 70)")
        assert db.query("SELECT COUNT(*) FROM users") == [(7,)]
        agent.rollback()
        assert table_state(db, "users") == before
        # Plan caches were invalidated: a fresh query replans cleanly
        # and sees the restored data.
        assert db.query("SELECT COUNT(*) FROM users") == [(5,)]

    def test_commit_keeps_changes(self):
        db = make_db()
        with db.agent_session() as agent:
            agent.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        assert db.query("SELECT COUNT(*) FROM users") == [(6,)]

    def test_transaction_state_errors(self):
        db = make_db()
        agent = db.agent_session()
        with pytest.raises(SessionError, match="no transaction"):
            agent.rollback()
        agent.begin()
        with pytest.raises(SessionError, match="already active"):
            agent.begin()
        agent.commit()
        with pytest.raises(SessionError, match="no transaction"):
            agent.commit()

    def test_rollback_restores_stats_and_views(self):
        db = make_db()
        stats_before = db.catalog.stats("users").n_rows
        agent = db.agent_session()
        agent.begin()
        agent.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        agent.execute("ANALYZE users")
        assert db.catalog.stats("users").n_rows == 6
        agent.rollback()
        assert db.catalog.stats("users").n_rows == stats_before


class TestAgentOverServer:
    def test_server_rollback_bit_identical_and_logged(self):
        db = make_db()
        server = QueryServer(db)
        before = table_state(db, "users")
        history_before = len(server.commit_history())
        agent = server.agent_session(policy=Policy(max_rows=100))
        agent.begin()
        agent.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        agent.execute("CREATE TABLE scratch (x INT)")
        agent.rollback()
        agent.close()
        assert table_state(db, "users") == before
        assert not db.catalog.has_table("scratch")
        # The rollback appended the restored vector: the post-rollback
        # state is a committed state (no-torn-reads invariant holds).
        history = server.commit_history()
        assert len(history) > history_before
        assert history[-1][1] == dict(db.catalog.version_vector())
        with server.session() as session:
            assert session.execute(
                "SELECT COUNT(*) FROM users").rows == [(5,)]

    def test_server_agent_commit_visible_to_other_sessions(self):
        db = make_db()
        server = QueryServer(db)
        with server.agent_session() as agent:
            agent.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        with server.session() as session:
            assert session.execute(
                "SELECT COUNT(*) FROM users").rows == [(6,)]


# ----------------------------------------------------------------------
# AISQL under sessions
# ----------------------------------------------------------------------
class TestAISQLSessions:
    def _db_with_aisql(self):
        pytest.importorskip("repro.db4ai")
        from repro.db4ai.declarative.aisql import AISQLExtension
        db = make_db()
        AISQLExtension().install(db)
        return db

    def test_predict_denied_under_select_only_policy(self):
        db = self._db_with_aisql()
        db.execute(
            "CREATE MODEL m KIND linear ON users TARGET age FEATURES (id)")
        session = db.session(policy=Policy.read_only())
        with pytest.raises(PolicyError, match="statement-kind"):
            session.execute("PREDICT m ON users LIMIT 2")
        # A policy that allows PREDICT lets it through, with a planner
        # cost estimate from the inspector's feature query.
        open_session = db.session(
            policy=Policy(statement_kinds=("SELECT", "PREDICT")),
            audit=AuditLog())
        res = open_session.execute("PREDICT m ON users LIMIT 2")
        assert res.kind == "PREDICT"
        assert len(res.raw.rows) == 2
        assert res.est_cost is not None and res.est_cost > 0
        assert open_session.audit.records()[-1].decision == "allow"

    def test_create_model_feature_columns_gated(self):
        db = self._db_with_aisql()
        session = db.session(policy=Policy(deny_columns=("users.age",)))
        with pytest.raises(PolicyError, match="column-deny"):
            session.execute(
                "CREATE MODEL m KIND linear ON users TARGET age "
                "FEATURES (id)")

    def test_dry_run_plans_aisql_without_training(self):
        db = self._db_with_aisql()
        session = db.session()
        report = session.dry_run(
            "CREATE MODEL m KIND linear ON users TARGET age FEATURES (id);"
            "SELECT COUNT(*) FROM users"
        )
        assert report.ok
        create = report[0]
        assert create.kind == "CREATE MODEL"
        assert [t.lower() for t in create.tables] == ["users"]
        assert create.est_cost is not None and create.est_cost > 0
        # Nothing trained: the registry hook never fired.
        with pytest.raises(EngineError):
            db.execute("PREDICT m ON users LIMIT 1")

    def test_rollback_reverts_aisql_side_tables_not_registry(self):
        """Documented boundary: catalog state rolls back; the model
        registry (an extension object outside the catalog) does not."""
        db = self._db_with_aisql()
        before = table_state(db, "users")
        agent = db.agent_session()
        agent.begin()
        agent.execute(
            "CREATE MODEL m KIND linear ON users TARGET age FEATURES (id)")
        agent.execute("INSERT INTO users VALUES (6, 'fred', 60)")
        agent.rollback()
        assert table_state(db, "users") == before
        # The registry kept the model (out-of-catalog side effect).
        assert len(db.execute("PREDICT m ON users LIMIT 1").rows) == 1


# ----------------------------------------------------------------------
# Learned access control → session policy bridge
# ----------------------------------------------------------------------
class TestPolicyBridge:
    def test_derived_policy_enforces_learned_denials(self):
        pytest.importorskip("repro.ai4db")
        from repro.ai4db.security import (
            AccessRequestGenerator,
            LearnedAccessController,
            derive_policy,
        )
        db = Database()
        db.catalog.create_table(
            "people",
            [("id", "INT"), ("ssn", "TEXT"), ("region", "TEXT")],
            sensitive=("ssn",),
        )
        db.catalog.table("people").insert_rows(
            [(1, "123-45-6789", "west"), (2, "987-65-4321", "east")])
        requests, labels = AccessRequestGenerator(seed=0).generate(3000)
        controller = LearnedAccessController(seed=0).fit(requests, labels)
        # A marketing caller on an ad-hoc purpose must not see pii.
        policy = derive_policy(
            db.catalog, controller, role="marketing", purpose="ad_hoc")
        session = db.session(policy=policy)
        with pytest.raises(PolicyError, match="column-deny"):
            session.execute("SELECT ssn FROM people")
        assert session.execute("SELECT region FROM people").rows == [
            ("west",), ("east",)]
        # An admin sees everything (the hidden policy allows admin).
        admin = db.session(policy=derive_policy(
            db.catalog, controller, role="admin", purpose="reporting"))
        assert len(admin.execute("SELECT ssn FROM people").rows) == 2


# ----------------------------------------------------------------------
# SessionContext misc
# ----------------------------------------------------------------------
class TestSessionContextMisc:
    def test_ungated_session_is_transparent(self):
        db = make_db()
        session = db.session()
        assert not session.gated
        assert session.execute("INSERT INTO users VALUES (6, 'f', 1)"
                               ).raw == "INSERT 1"

    def test_agent_session_always_audits(self):
        db = make_db()
        agent = db.agent_session()
        assert isinstance(agent, AgentSession)
        assert isinstance(agent, SessionContext)
        agent.execute("SELECT COUNT(*) FROM users")
        assert len(agent.audit) == 1

    def test_prepare_respects_policy(self):
        db = make_db()
        session = db.session(policy=Policy(deny_columns=("users.age",)))
        with pytest.raises(PolicyError):
            session.prepare("SELECT age FROM users")
        prepared = session.prepare("SELECT name FROM users")
        assert prepared.est_cost > 0

    def test_explain_respects_policy(self):
        db = make_db()
        session = db.session(policy=Policy(deny_tables=("users",)))
        with pytest.raises(PolicyError):
            session.explain("SELECT name FROM users")
