"""Tests for engine core: types, storage, statistics, query model, catalog."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import CatalogError, PlanError
from repro.engine.catalog import Catalog, ViewDef
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.engine.stats import ColumnStats, EquiDepthHistogram
from repro.engine.storage import Table
from repro.engine.types import ColumnSchema, DataType, TableSchema


class TestDataType:
    def test_parse_aliases(self):
        assert DataType.parse("INTEGER") is DataType.INT
        assert DataType.parse("varchar") is DataType.TEXT
        assert DataType.parse("Double") is DataType.FLOAT

    def test_parse_unknown(self):
        with pytest.raises(CatalogError):
            DataType.parse("BLOB")

    def test_coerce(self):
        assert DataType.INT.coerce("7") == 7
        assert DataType.FLOAT.coerce(3) == 3.0
        assert DataType.TEXT.coerce(5) == "5"
        assert DataType.INT.coerce(None) is None


class TestSchema:
    def test_column_lookup_case_insensitive(self):
        schema = TableSchema("t", [ColumnSchema("Foo", DataType.INT)])
        assert schema.column("foo").name == "Foo"
        assert schema.column_index("FOO") == 0

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [ColumnSchema("a", DataType.INT),
                              ColumnSchema("A", DataType.INT)])

    def test_missing_column(self):
        schema = TableSchema("t", [ColumnSchema("a", DataType.INT)])
        with pytest.raises(CatalogError):
            schema.column("b")

    def test_sensitive_flag(self):
        col = ColumnSchema("ssn", DataType.TEXT, sensitive=True)
        assert col.sensitive


class TestTable:
    def _table(self):
        schema = TableSchema("t", [ColumnSchema("a", DataType.INT),
                                   ColumnSchema("b", DataType.TEXT)])
        return Table(schema)

    def test_insert_and_read(self):
        t = self._table()
        t.insert_rows([(1, "x"), (2, "y")])
        assert t.n_rows == 2
        assert t.rows() == [(1, "x"), (2, "y")]
        assert t.row(1) == (2, "y")

    def test_insert_coerces_types(self):
        t = self._table()
        t.insert_rows([("3", 42)])
        assert t.rows() == [(3, "42")]

    def test_wrong_width_rejected(self):
        t = self._table()
        with pytest.raises(CatalogError):
            t.insert_rows([(1,)])

    def test_column_array(self):
        t = self._table()
        t.insert_rows([(1, "x"), (5, "y")])
        assert np.array_equal(t.column_array("a"), [1, 5])

    def test_from_columns_mismatched_lengths(self):
        schema = TableSchema("t", [ColumnSchema("a", DataType.INT),
                                   ColumnSchema("b", DataType.INT)])
        with pytest.raises(CatalogError):
            Table(schema, columns={"a": [1, 2], "b": [1]})

    def test_rows_subset(self):
        t = self._table()
        t.insert_rows([(i, str(i)) for i in range(5)])
        assert t.rows([0, 4]) == [(0, "0"), (4, "4")]

    def test_page_model(self):
        t = self._table()
        assert t.n_pages() == 0
        t.insert_rows([(i, "x") for i in range(1000)])
        assert t.n_pages() >= 1
        assert t.column_pages("a") <= t.n_pages()


class TestHistogram:
    def test_build_and_bounds(self, rng):
        values = rng.uniform(0, 100, 5000)
        hist = EquiDepthHistogram.build(values, n_buckets=16)
        assert hist.min == pytest.approx(values.min())
        assert hist.max == pytest.approx(values.max())

    def test_range_selectivity_accuracy(self, rng):
        values = rng.uniform(0, 100, 20000)
        hist = EquiDepthHistogram.build(values, n_buckets=32)
        true_sel = float(np.mean((values >= 20) & (values <= 50)))
        assert hist.range_selectivity(20, 50) == pytest.approx(true_sel,
                                                               abs=0.03)

    def test_lt_plus_ge_is_one(self, rng):
        values = rng.normal(50, 10, 1000)
        hist = EquiDepthHistogram.build(values)
        for x in (30.0, 50.0, 70.0):
            total = hist.selectivity("<", x) + hist.selectivity(">=", x)
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_out_of_range_equality_zero(self, rng):
        hist = EquiDepthHistogram.build(rng.uniform(0, 10, 100))
        assert hist.selectivity("=", 99.0) == 0.0
        assert hist.selectivity("<", -5.0) == 0.0
        assert hist.selectivity(">", 100.0) == 0.0

    def test_skewed_distribution(self, rng):
        values = np.concatenate([np.zeros(900), rng.uniform(1, 100, 100)])
        hist = EquiDepthHistogram.build(values, n_buckets=16)
        # 90% of the mass sits at 0. Within-bucket linear interpolation
        # (no MCV list) underestimates point masses — the documented
        # limitation learned estimators fix — but the estimate must still
        # be far above uniform and bounded by the truth.
        sel = hist.selectivity("<=", 0.5)
        assert 0.3 < sel <= 0.9
        # And everything at/above 1 is seen as the remaining minority.
        assert hist.selectivity(">=", 1.0) < 0.7

    def test_empty_values(self):
        hist = EquiDepthHistogram.build(np.array([]))
        assert hist.selectivity("=", 1.0) == 0.0

    def test_bad_operator(self, rng):
        hist = EquiDepthHistogram.build(rng.uniform(0, 1, 10))
        with pytest.raises(CatalogError):
            hist.selectivity("~", 0.5)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=5,
                    max_size=200),
           st.floats(min_value=-1e4, max_value=1e4))
    def test_selectivity_in_unit_interval_property(self, values, x):
        hist = EquiDepthHistogram.build(np.asarray(values))
        for op in ("=", "!=", "<", "<=", ">", ">="):
            sel = hist.selectivity(op, x)
            assert 0.0 <= sel <= 1.0


class TestColumnStats:
    def test_text_stats_equality(self):
        values = np.array(["a"] * 80 + ["b"] * 15 + ["c"] * 5, dtype=object)
        stats = ColumnStats.build("col", DataType.TEXT, values)
        assert stats.selectivity("=", "a") == pytest.approx(0.8)
        assert stats.selectivity("!=", "a") == pytest.approx(0.2)

    def test_text_unknown_value_uses_ndv(self):
        values = np.array(["a", "b", "c", "d"], dtype=object)
        stats = ColumnStats.build("col", DataType.TEXT, values)
        assert stats.selectivity("=", "zzz") == pytest.approx(0.25)

    def test_numeric_stats(self, rng):
        values = rng.integers(0, 10, 1000)
        stats = ColumnStats.build("col", DataType.INT, values)
        assert stats.n_distinct == 10
        assert stats.selectivity("=", 3) == pytest.approx(0.1, abs=0.02)


class TestQueryModel:
    def _query(self):
        return ConjunctiveQuery(
            tables=["a", "b", "c"],
            join_edges=[JoinEdge("a", "x", "b", "y"),
                        JoinEdge("b", "y", "c", "z")],
            predicates=[Predicate("a", "x", "<", 5)],
        )

    def test_tables_deduplicated(self):
        q = ConjunctiveQuery(tables=["t", "T", "t"])
        assert q.tables == ["t"]

    def test_empty_tables_rejected(self):
        with pytest.raises(PlanError):
            ConjunctiveQuery(tables=[])

    def test_edge_must_reference_from_tables(self):
        with pytest.raises(PlanError):
            ConjunctiveQuery(tables=["a"],
                             join_edges=[JoinEdge("a", "x", "zz", "y")])

    def test_predicate_must_reference_from_tables(self):
        with pytest.raises(PlanError):
            ConjunctiveQuery(tables=["a"],
                             predicates=[Predicate("zz", "x", "=", 1)])

    def test_predicates_on(self):
        q = self._query()
        assert len(q.predicates_on("A")) == 1
        assert q.predicates_on("b") == []

    def test_edges_between(self):
        q = self._query()
        assert len(q.edges_between(["a"], "b")) == 1
        assert q.edges_between(["a"], "c") == []
        assert len(q.edges_between(["a", "b"], "c")) == 1

    def test_connectivity(self):
        assert self._query().is_connected()
        disconnected = ConjunctiveQuery(
            tables=["a", "b"], join_edges=[]
        )
        assert not disconnected.is_connected()

    def test_signature_order_independent(self):
        q1 = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", "=", 1),
                        Predicate("b", "y", ">", 2)],
        )
        q2 = ConjunctiveQuery(
            tables=["b", "a"],
            join_edges=[JoinEdge("b", "y", "a", "x")],
            predicates=[Predicate("b", "y", ">", 2),
                        Predicate("a", "x", "=", 1)],
        )
        assert q1.signature() == q2.signature()

    def test_bad_predicate_op(self):
        with pytest.raises(PlanError):
            Predicate("t", "c", "LIKE", "x")

    def test_aggregate_validation(self):
        with pytest.raises(PlanError):
            Aggregate("median", "t", "c")
        with pytest.raises(PlanError):
            Aggregate("sum")  # needs a column
        assert Aggregate("count").column is None

    def test_edge_other_side(self):
        e = JoinEdge("a", "x", "b", "y")
        assert e.other_side("a") == ("b", "y")
        assert e.other_side("B") == ("a", "x")
        with pytest.raises(PlanError):
            e.other_side("zzz")


class TestCatalog:
    def test_create_and_drop_table(self):
        cat = Catalog()
        cat.create_table("t", [("a", "INT")])
        assert cat.has_table("T")
        cat.drop_table("t")
        assert not cat.has_table("t")

    def test_duplicate_table_rejected(self):
        cat = Catalog()
        cat.create_table("t", [("a", "INT")])
        with pytest.raises(CatalogError):
            cat.create_table("T", [("a", "INT")])

    def test_analyze_and_stats(self):
        cat = Catalog()
        t = cat.create_table("t", [("a", "INT")])
        t.insert_rows([(i,) for i in range(100)])
        stats = cat.stats("t")  # lazy analyze
        assert stats.n_rows == 100
        assert stats.column("a").n_distinct == 100

    def test_index_lifecycle(self):
        cat = Catalog()
        t = cat.create_table("t", [("a", "INT")])
        t.insert_rows([(i % 10,) for i in range(50)])
        idx = cat.create_index("idx_a", "t", "a")
        assert not idx.hypothetical
        assert len(idx.structure.search(3)) > 0
        assert cat.index_on("t", "a") is idx
        cat.drop_index("idx_a")
        assert cat.index_on("t", "a") is None

    def test_hypothetical_index_has_no_structure(self):
        cat = Catalog()
        t = cat.create_table("t", [("a", "INT")])
        t.insert_rows([(1,)])
        idx = cat.create_index("h", "t", "a", hypothetical=True)
        assert idx.structure is None
        assert idx.size_bytes(1000) > 0

    def test_index_on_missing_column_rejected(self):
        cat = Catalog()
        cat.create_table("t", [("a", "INT")])
        with pytest.raises(CatalogError):
            cat.create_index("i", "t", "nope")

    def test_drop_table_drops_indexes(self):
        cat = Catalog()
        t = cat.create_table("t", [("a", "INT")])
        t.insert_rows([(1,)])
        cat.create_index("i", "t", "a")
        cat.drop_table("t")
        assert cat.indexes() == []

    def test_describe_lists_objects(self):
        cat = Catalog()
        t = cat.create_table("t", [("a", "INT")])
        t.insert_rows([(1,)])
        cat.create_index("i", "t", "a")
        text = cat.describe()
        assert "table t" in text
        assert "index i" in text


class TestViewMatching:
    def _view(self):
        from repro.engine.types import TableSchema, ColumnSchema

        query = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", ">", 0)],
        )
        schema = TableSchema("v", [ColumnSchema("a__x", DataType.INT)])
        table = Table(schema)
        table.insert_rows([(1,), (2,)])
        return ViewDef("v", query, table)

    def test_exact_match_with_residual(self):
        view = self._view()
        query = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", ">", 0),
                        Predicate("a", "x", "<", 10)],
        )
        residual = view.matches(query)
        assert residual is not None
        assert len(residual) == 1
        assert residual[0].op == "<"

    def test_missing_view_predicate_no_match(self):
        view = self._view()
        query = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
        )
        assert view.matches(query) is None

    def test_different_tables_no_match(self):
        view = self._view()
        query = ConjunctiveQuery(tables=["a"],
                                 predicates=[Predicate("a", "x", ">", 0)])
        assert view.matches(query) is None

    def test_catalog_prefers_smaller_view(self):
        cat = Catalog()
        small = self._view()
        big_table = Table(
            TableSchema("v2", [ColumnSchema("a__x", DataType.INT)])
        )
        big_table.insert_rows([(i,) for i in range(100)])
        big = ViewDef("v2", small.query, big_table)
        cat.register_view(big)
        cat.register_view(small)
        query = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", ">", 0)],
        )
        chosen, __ = cat.matching_view(query)
        assert chosen.name == "v"
