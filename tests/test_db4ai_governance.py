"""Tests for governance: discovery EKG, cleaning, labeling, lineage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import CatalogError, ReproError
from repro.db4ai.governance.cleaning import (
    ActiveCleanSession,
    CorruptedDataset,
    RandomCleanSession,
    cleaning_curve,
)
from repro.db4ai.governance.discovery import (
    EnterpriseKnowledgeGraph,
    joinable_pairs,
)
from repro.db4ai.governance.labeling import (
    DawidSkene,
    SimulatedCrowd,
    active_label_acquisition,
    majority_vote,
)
from repro.db4ai.governance.lineage import LineageTable, LineageTracker
from repro.engine import datagen
from repro.engine.catalog import Catalog


class TestEKG:
    @pytest.fixture(scope="class")
    def ekg(self):
        catalog = Catalog()
        datagen.make_star_schema(catalog, n_customers=300, n_products=80,
                                 n_dates=60, n_sales=2000, seed=0)
        return EnterpriseKnowledgeGraph().build(catalog)

    def test_fk_columns_joinable(self, ekg):
        matches = ekg.joinable_columns("sales", "s_customer")
        assert matches
        assert matches[0][0] == "customer.c_id"

    def test_keyword_search(self, ekg):
        hits = ekg.keyword_search("region")
        assert "customer.c_region" in hits

    def test_related_tables(self, ekg):
        related = ekg.related_tables("sales", max_hops=1)
        assert "customer" in related

    def test_unknown_column_rejected(self, ekg):
        with pytest.raises(CatalogError):
            ekg.joinable_columns("sales", "nope")

    def test_joinable_pairs_sorted(self, ekg):
        pairs = joinable_pairs(ekg, min_overlap=0.3)
        overlaps = [p[2] for p in pairs]
        assert overlaps == sorted(overlaps, reverse=True)

    def test_no_self_table_edges(self, ekg):
        for a, b in ekg.graph.edges():
            assert a.split(".")[0] != b.split(".")[0]


class TestCleaning:
    @pytest.fixture(scope="class")
    def dataset(self):
        return CorruptedDataset(seed=0)

    def test_corruption_hurts_model(self, dataset):
        dirty = ActiveCleanSession(dataset, seed=0).test_accuracy()
        # Fully cleaned reference:
        session = ActiveCleanSession(dataset, batch_size=10**6, seed=0)
        session.step()
        clean = session.test_accuracy()
        assert clean > dirty + 0.03

    def test_activeclean_dominates_random(self, dataset):
        counts, active = cleaning_curve(ActiveCleanSession, dataset,
                                        n_batches=6, seed=0)
        __, random_ = cleaning_curve(RandomCleanSession, dataset,
                                     n_batches=6, seed=0)
        # Compare areas under the accuracy curve (budget-efficiency).
        assert np.trapezoid(active, counts) > np.trapezoid(random_, counts)

    def test_cleaning_only_touches_dirty_pool(self, dataset):
        session = ActiveCleanSession(dataset, batch_size=30, seed=0)
        chosen = session.step()
        assert all(dataset.is_dirty[i] for i in chosen)

    def test_cleaning_is_idempotent_per_record(self, dataset):
        session = RandomCleanSession(dataset, batch_size=50, seed=0)
        seen = set()
        for __ in range(5):
            batch = session.step()
            assert not (set(batch) & seen)
            seen.update(batch)

    def test_curve_lengths(self, dataset):
        counts, accs = cleaning_curve(RandomCleanSession, dataset,
                                      n_batches=4, seed=1)
        assert len(counts) == len(accs) == 5
        assert counts[0] == 0


class TestLabeling:
    def test_dawid_skene_beats_majority_with_spammers(self, rng):
        crowd = SimulatedCrowd(n_workers=15, n_classes=3, n_spammers=5,
                               seed=0)
        truths = rng.integers(0, 3, 400)
        votes = crowd.collect(truths, redundancy=5)
        mv_acc = float(np.mean(majority_vote(votes, 3, seed=0) == truths))
        ds = DawidSkene(3).fit(votes, crowd.n_workers)
        ds_acc = float(np.mean(ds.predict() == truths))
        assert ds_acc > mv_acc

    def test_dawid_skene_identifies_spammers(self, rng):
        crowd = SimulatedCrowd(n_workers=12, n_classes=3, n_spammers=3,
                               seed=1)
        truths = rng.integers(0, 3, 500)
        votes = crowd.collect(truths, redundancy=5)
        ds = DawidSkene(3).fit(votes, crowd.n_workers)
        reliability = ds.worker_reliability()
        # The three spammers (workers 0-2) should rank lowest.
        worst3 = set(np.argsort(reliability)[:3].tolist())
        assert worst3 == {0, 1, 2}

    def test_perfect_workers_give_perfect_inference(self, rng):
        crowd = SimulatedCrowd(n_workers=8, n_classes=2,
                               reliability_range=(0.999, 1.0), n_spammers=0,
                               seed=2)
        truths = rng.integers(0, 2, 100)
        votes = crowd.collect(truths, redundancy=3)
        ds = DawidSkene(2).fit(votes, crowd.n_workers)
        assert np.array_equal(ds.predict(), truths)

    def test_accuracy_improves_with_redundancy(self, rng):
        crowd = SimulatedCrowd(n_workers=20, n_classes=3, seed=3)
        truths = rng.integers(0, 3, 300)
        accs = []
        for redundancy in (1, 7):
            votes = crowd.collect(truths, redundancy=redundancy)
            ds = DawidSkene(3).fit(votes, crowd.n_workers)
            accs.append(float(np.mean(ds.predict() == truths)))
        assert accs[1] > accs[0]

    def test_active_acquisition_beats_uniform_at_budget(self, rng):
        crowd = SimulatedCrowd(n_workers=15, n_classes=3, n_spammers=3,
                               seed=4)
        truths = rng.integers(0, 3, 200)
        budget = 200 * 3
        active_labels, votes = active_label_acquisition(
            crowd, truths, budget=budget, initial_redundancy=1, batch=100,
            seed=5,
        )
        total_votes = sum(len(v) for v in votes)
        assert total_votes <= budget
        uniform_votes = crowd.collect(truths, redundancy=3)
        ds = DawidSkene(3).fit(uniform_votes, crowd.n_workers)
        uniform_acc = float(np.mean(ds.predict() == truths))
        active_acc = float(np.mean(active_labels == truths))
        assert active_acc >= uniform_acc - 0.05  # at worst competitive


class TestLineage:
    def _pipeline(self):
        tracker = LineageTracker()
        src = tracker.source("raw", [{"id": i, "v": i} for i in range(10)])
        filtered = tracker.filter(src, lambda r: r["v"] % 2 == 0)
        mapped = tracker.map(filtered, lambda r: {"id": r["id"],
                                                  "sq": r["v"] ** 2})
        return tracker, src, filtered, mapped

    def test_filter_provenance(self):
        tracker, __, filtered, ___ = self._pipeline()
        assert len(filtered) == 5
        assert LineageTracker.backward(filtered, 0) == {"raw": [0]}
        assert LineageTracker.backward(filtered, 4) == {"raw": [8]}

    def test_map_preserves_provenance(self):
        tracker, __, ___, mapped = self._pipeline()
        assert LineageTracker.backward(mapped, 2) == {"raw": [4]}

    def test_forward_lineage(self):
        tracker, __, ___, mapped = self._pipeline()
        assert LineageTracker.forward(mapped, "raw", 4) == [2]
        assert LineageTracker.forward(mapped, "raw", 3) == []

    def test_join_unions_provenance(self):
        tracker = LineageTracker()
        left = tracker.source("l", [{"k": 1, "a": "x"}, {"k": 2, "a": "y"}])
        right = tracker.source("r", [{"k": 1, "b": "z"}])
        joined = tracker.join(left, right, lambda r: r["k"], lambda r: r["k"],
                              lambda a, b: {**a, **b})
        assert len(joined) == 1
        prov = LineageTracker.backward(joined, 0)
        assert prov == {"l": [0], "r": [0]}

    def test_aggregate_unions_members(self):
        tracker = LineageTracker()
        src = tracker.source("s", [{"g": i % 2, "v": i} for i in range(6)])
        agg = tracker.aggregate(src, lambda r: r["g"],
                                lambda key, members: {
                                    "g": key,
                                    "sum": sum(m["v"] for m in members),
                                })
        idx = next(i for i, row in enumerate(agg.rows) if row["g"] == 0)
        assert LineageTracker.backward(agg, idx) == {"s": [0, 2, 4]}

    def test_union_keeps_sources_distinct(self):
        tracker = LineageTracker()
        a = tracker.source("a", [{"v": 1}])
        b = tracker.source("b", [{"v": 2}])
        u = tracker.union(a, b)
        assert LineageTracker.backward(u, 0) == {"a": [0]}
        assert LineageTracker.backward(u, 1) == {"b": [0]}

    def test_log_records_steps(self):
        tracker, __, ___, ____ = self._pipeline()
        kinds = [entry[0] for entry in tracker.log]
        assert kinds == ["source", "filter", "map"]

    def test_out_of_range_index(self):
        tracker, src, __, ___ = self._pipeline()
        with pytest.raises(ReproError):
            LineageTracker.backward(src, 99)

    def test_derived_without_provenance_rejected(self):
        with pytest.raises(ReproError):
            LineageTable("x", [1, 2], provenance=None, source=False)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=50),
           st.integers(min_value=0, max_value=100))
    def test_filter_backward_forward_inverse_property(self, values, cutoff):
        """Property: backward(forward(x)) always contains x for survivors."""
        tracker = LineageTracker()
        src = tracker.source("src", values)
        out = tracker.filter(src, lambda v: v <= cutoff)
        for src_id, v in enumerate(values):
            hits = LineageTracker.forward(out, "src", src_id)
            if v <= cutoff:
                assert len(hits) == 1
                assert LineageTracker.backward(out, hits[0]) == {
                    "src": [src_id]
                }
            else:
                assert hits == []
