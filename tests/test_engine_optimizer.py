"""Tests for the optimizer: estimators, cost model, enumeration, rules,
planner."""

import pytest

from repro.common import PlanError
from repro.engine import plans as P
from repro.engine.catalog import Catalog
from repro.engine.executor import count_join_rows
from repro.engine.optimizer.cardinality import (
    SamplingEstimator,
    TraditionalEstimator,
    TrueCardinalityEstimator,
)
from repro.engine.optimizer.cost import CostModel
from repro.engine.optimizer.join_enum import (
    dp_left_deep,
    greedy_order,
    order_cost,
    random_order,
)
from repro.engine.optimizer.planner import Planner
from repro.engine.optimizer.rules import (
    DetectContradictions,
    EliminateRedundantJoins,
    PropagateEqualityConstants,
    RemoveDuplicatePredicates,
    TightenRangePredicates,
    apply_rules_fixed_order,
    default_rules,
)
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate
from repro.engine import datagen


class TestTraditionalEstimator:
    def test_single_table_filter(self, correlated_catalog):
        est = TraditionalEstimator(correlated_catalog)
        q = ConjunctiveQuery(tables=["facts"],
                             predicates=[Predicate("facts", "a", "<", 20)])
        true = count_join_rows(correlated_catalog, q, ["facts"])
        assert est.estimate_table(q, "facts") == pytest.approx(true, rel=0.2)

    def test_independence_assumption_underestimates_correlated(
        self, correlated_catalog
    ):
        est = TraditionalEstimator(correlated_catalog)
        q = ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", "<", 10),
                        Predicate("facts", "b", "<", 10)],
        )
        true = count_join_rows(correlated_catalog, q, ["facts"])
        est_rows = est.estimate_table(q, "facts")
        # a and b are 0.9-correlated: independence must underestimate.
        assert est_rows < true * 0.6

    def test_join_estimate_reasonable(self, chain_catalog):
        catalog, names, edges = chain_catalog
        est = TraditionalEstimator(catalog)
        q = ConjunctiveQuery(tables=names[:2], join_edges=[edges[0]])
        true = count_join_rows(catalog, q, names[:2])
        estimate = est.estimate_subset(q, names[:2])
        assert 0.2 * true <= estimate <= 5 * max(true, 1)

    def test_empty_subset(self, chain_catalog):
        catalog, names, __ = chain_catalog
        est = TraditionalEstimator(catalog)
        q = ConjunctiveQuery(tables=names[:2])
        assert est.estimate_subset(q, []) == 0.0


class TestSamplingEstimator:
    def test_full_sample_is_near_exact(self, correlated_catalog):
        est = SamplingEstimator(correlated_catalog, sample_size=10**6, seed=0)
        q = ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", "<", 10),
                        Predicate("facts", "b", "<", 10)],
        )
        true = count_join_rows(correlated_catalog, q, ["facts"])
        assert est.estimate_table(q, "facts") == pytest.approx(true)

    def test_captures_correlation_better_than_histogram(
        self, correlated_catalog
    ):
        sampling = SamplingEstimator(correlated_catalog, sample_size=800,
                                     seed=0)
        hist = TraditionalEstimator(correlated_catalog)
        q = ConjunctiveQuery(
            tables=["facts"],
            predicates=[Predicate("facts", "a", "<", 10),
                        Predicate("facts", "b", "<", 10)],
        )
        true = count_join_rows(correlated_catalog, q, ["facts"])
        err_sampling = abs(sampling.estimate_table(q, "facts") - true)
        err_hist = abs(hist.estimate_table(q, "facts") - true)
        assert err_sampling < err_hist

    def test_join_sampling(self, chain_catalog):
        catalog, names, edges = chain_catalog
        est = SamplingEstimator(catalog, sample_size=10**6, seed=0)
        q = ConjunctiveQuery(tables=names[:3], join_edges=edges[:2])
        true = count_join_rows(catalog, q, names[:3])
        assert est.estimate_subset(q, names[:3]) == pytest.approx(true)


class TestTrueEstimatorAndCache:
    def test_oracle_matches_execution(self, chain_catalog):
        catalog, names, edges = chain_catalog
        est = TrueCardinalityEstimator(
            lambda q, ts: count_join_rows(catalog, q, ts)
        )
        q = ConjunctiveQuery(tables=names[:2], join_edges=[edges[0]],
                             predicates=[Predicate(names[0], "val", "<", 50)])
        true = count_join_rows(catalog, q, names[:2])
        assert est.estimate_subset(q, names[:2]) == true

    def test_cache_hit(self, chain_catalog):
        catalog, names, edges = chain_catalog
        calls = []

        def counting(q, ts):
            calls.append(1)
            return count_join_rows(catalog, q, ts)

        est = TrueCardinalityEstimator(counting)
        q = ConjunctiveQuery(tables=names[:2], join_edges=[edges[0]])
        est.estimate_subset(q, names[:2])
        est.estimate_subset(q, names[:2])
        assert len(calls) == 1

    def test_cache_invalidated_on_epoch_change(self, chain_catalog):
        # Regression: the memo must observe Catalog.epoch — counts cached
        # before an INSERT/DDL were previously served stale forever.
        catalog, names, edges = chain_catalog
        est = TrueCardinalityEstimator(
            lambda q, ts: count_join_rows(catalog, q, ts), catalog=catalog
        )
        q = ConjunctiveQuery(tables=[names[0]])
        before = est.estimate_subset(q, [names[0]])
        table = catalog.table(names[0])
        table.insert_rows([(10**6 + i, 0, 0) for i in range(5)])
        after = est.estimate_subset(q, [names[0]])
        assert after == before + 5

    def test_cache_stale_without_catalog(self, chain_catalog):
        # Documents the legacy behavior the catalog kwarg exists to fix.
        catalog, names, edges = chain_catalog
        est = TrueCardinalityEstimator(
            lambda q, ts: count_join_rows(catalog, q, ts)
        )
        q = ConjunctiveQuery(tables=[names[0]])
        before = est.estimate_subset(q, [names[0]])
        table = catalog.table(names[0])
        table.insert_rows([(10**6 + i, 0, 0) for i in range(5)])
        assert est.estimate_subset(q, [names[0]]) == before


class TestCostModel:
    def test_hash_beats_nl_on_large_inputs(self):
        cm = CostModel()
        kind, __ = cm.choose_join(10000, 10000, 5000)
        assert kind == "hash"

    def test_nl_wins_on_tiny_inputs(self):
        cm = CostModel()
        kind, __ = cm.choose_join(2, 2, 1)
        assert kind == "nl"

    def test_spill_penalty_applies(self):
        cheap = CostModel({"work_mem_rows": 10**9})
        spilling = CostModel({"work_mem_rows": 10})
        assert spilling.hash_join(100, 1000, 100) > cheap.hash_join(100, 1000, 100)

    def test_unknown_param_rejected(self):
        with pytest.raises(PlanError):
            CostModel({"bogus": 1.0})

    def test_sort_superlinear(self):
        cm = CostModel()
        assert cm.sort(20000) > 2 * cm.sort(10000)

    def test_annotation_populates_all_nodes(self, star_db, star_workload):
        plan = star_db.planner.plan(star_workload[0])
        for node in plan.walk():
            assert node.est_rows is not None
            assert node.est_cost is not None
        # Root cost dominates children.
        for child in plan.children:
            assert plan.est_cost >= child.est_cost


class TestJoinEnumeration:
    def _setup(self, topology, n=5):
        catalog = Catalog()
        names, edges = datagen.make_join_graph_schema(
            catalog, topology, n_tables=n, rows_per_table=300, seed=1,
            prefix="e_%s" % topology,
        )
        queries = datagen.join_graph_workload(names, edges, n_queries=4,
                                              seed=2, min_tables=n)
        return catalog, queries

    def test_dp_never_worse_than_greedy_or_random(self):
        for topology in ("chain", "star", "clique"):
            catalog, queries = self._setup(topology)
            est = TraditionalEstimator(catalog)
            cm = CostModel()
            for q in queries:
                __, dp_cost = dp_left_deep(q, est, cm)
                __, greedy_cost = greedy_order(q, est, cm)
                __, rand_cost = random_order(q, est, cm, seed=3)
                assert dp_cost <= greedy_cost + 1e-6
                assert dp_cost <= rand_cost + 1e-6

    def test_order_cost_requires_full_cover(self):
        catalog, queries = self._setup("chain")
        est = TraditionalEstimator(catalog)
        cm = CostModel()
        q = queries[0]
        with pytest.raises(PlanError):
            order_cost(q, q.tables[:-1], est, cm)

    def test_orders_cover_all_tables(self):
        catalog, queries = self._setup("star")
        est = TraditionalEstimator(catalog)
        cm = CostModel()
        for q in queries:
            for fn in (dp_left_deep, greedy_order):
                order, __ = fn(q, est, cm)
                assert sorted(t.lower() for t in order) == sorted(
                    t.lower() for t in q.tables
                )

    def test_random_order_connected(self):
        catalog, queries = self._setup("chain")
        est = TraditionalEstimator(catalog)
        cm = CostModel()
        q = queries[0]
        order, __ = random_order(q, est, cm, seed=5)
        # Each prefix must stay connected on a chain graph.
        for i in range(1, len(order)):
            assert q.edges_between(order[:i], order[i])


class TestRewriteRules:
    def _base_query(self, extra_predicates=(), tables=("t",), edges=()):
        return ConjunctiveQuery(
            tables=list(tables),
            join_edges=list(edges),
            predicates=list(extra_predicates),
            aggregates=[Aggregate("count")],
        )

    def test_dedup(self):
        q = self._base_query([Predicate("t", "a", ">", 1),
                              Predicate("t", "a", ">", 1)])
        out = RemoveDuplicatePredicates().apply(q)
        assert out is not None and len(out.predicates) == 1

    def test_dedup_noop_returns_none(self):
        q = self._base_query([Predicate("t", "a", ">", 1)])
        assert RemoveDuplicatePredicates().apply(q) is None

    def test_tighten_lower_bounds(self):
        q = self._base_query([Predicate("t", "a", ">", 1),
                              Predicate("t", "a", ">", 5)])
        out = TightenRangePredicates().apply(q)
        assert out is not None
        assert out.predicates[0].value == 5

    def test_tighten_upper_bounds(self):
        q = self._base_query([Predicate("t", "a", "<=", 9),
                              Predicate("t", "a", "<", 12)])
        out = TightenRangePredicates().apply(q)
        assert out is not None
        assert len(out.predicates) == 1
        assert out.predicates[0].op == "<="
        assert out.predicates[0].value == 9

    def test_contradiction_eq_conflict(self):
        q = self._base_query([Predicate("t", "a", "=", 1),
                              Predicate("t", "a", "=", 2)])
        out = DetectContradictions().apply(q)
        assert out is not None and out.limit == 0

    def test_contradiction_empty_range(self):
        q = self._base_query([Predicate("t", "a", ">", 10),
                              Predicate("t", "a", "<", 5)])
        out = DetectContradictions().apply(q)
        assert out is not None and out.limit == 0

    def test_contradiction_eq_outside_range(self):
        q = self._base_query([Predicate("t", "a", "=", 3),
                              Predicate("t", "a", ">", 10)])
        out = DetectContradictions().apply(q)
        assert out is not None and out.limit == 0

    def test_no_false_contradiction(self):
        q = self._base_query([Predicate("t", "a", ">", 1),
                              Predicate("t", "a", "<", 10)])
        assert DetectContradictions().apply(q) is None

    def test_equality_propagation(self):
        q = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", "=", 7)],
            aggregates=[Aggregate("count")],
        )
        out = PropagateEqualityConstants().apply(q)
        assert out is not None
        keys = {p.key() for p in out.predicates}
        assert ("b", "y", "=", 7) in keys

    def test_join_elimination_on_unique_unused_dim(self, chain_catalog):
        catalog, names, edges = chain_catalog
        # Join t0 (unique id, unused) to t1, count only.
        q = ConjunctiveQuery(
            tables=[names[0], names[1]],
            join_edges=[edges[0]],
            predicates=[Predicate(names[1], "val", "<", 100)],
            aggregates=[Aggregate("count")],
        )
        out = EliminateRedundantJoins().apply(q, catalog=catalog)
        assert out is not None
        assert out.tables == [names[1]]
        # Semantics preserved under referential integrity:
        assert count_join_rows(catalog, q, q.tables) == count_join_rows(
            catalog, out, out.tables
        )

    def test_join_elimination_keeps_used_tables(self, chain_catalog):
        catalog, names, edges = chain_catalog
        q = ConjunctiveQuery(
            tables=[names[0], names[1]],
            join_edges=[edges[0]],
            predicates=[Predicate(names[0], "val", "<", 100)],
            aggregates=[Aggregate("count")],
        )
        assert EliminateRedundantJoins().apply(q, catalog=catalog) is None

    def test_fixed_order_reaches_fixpoint(self):
        q = self._base_query([
            Predicate("t", "a", ">", 1),
            Predicate("t", "a", ">", 1),
            Predicate("t", "a", ">", 5),
        ])
        out, applied = apply_rules_fixed_order(q, default_rules())
        assert len(out.predicates) == 1
        assert "dedup-predicates" in applied
        assert "tighten-ranges" in applied


class TestPlanner:
    def test_single_table_plan(self, tiny_db):
        from repro.engine.sql import parse_sql, lower_select

        q = lower_select(parse_sql("SELECT name FROM users WHERE age > 30"),
                         tiny_db.catalog)
        plan = tiny_db.planner.plan(q)
        kinds = [n.op_name for n in plan.walk()]
        assert "SeqScan" in kinds
        assert "Project" in kinds

    def test_index_scan_chosen_when_selective(self, star_db):
        star_db.catalog.create_index("idx_age", "customer", "c_age")
        q = ConjunctiveQuery(
            tables=["customer"],
            predicates=[Predicate("customer", "c_age", "<", 20)],
            aggregates=[Aggregate("count")],
        )
        plan = star_db.planner.plan(q)
        assert any(isinstance(n, P.IndexScan) for n in plan.walk())

    def test_seq_scan_for_unselective_predicate(self, star_db):
        star_db.catalog.create_index("idx_age2", "customer", "c_age")
        q = ConjunctiveQuery(
            tables=["customer"],
            predicates=[Predicate("customer", "c_age", "<", 1000)],
            aggregates=[Aggregate("count")],
        )
        plan = star_db.planner.plan(q)
        assert not any(isinstance(n, P.IndexScan) for n in plan.walk())

    def test_explicit_order_respected(self, star_db, star_workload):
        q = next(q for q in star_workload if len(q.tables) >= 3)
        order = list(reversed(q.tables))
        plan = star_db.planner.plan(q, order=order)
        scans = [n.table for n in plan.walk()
                 if isinstance(n, (P.SeqScan, P.IndexScan))]
        assert scans[0].lower() == order[0].lower() or scans[-1].lower() in {
            t.lower() for t in order
        }

    def test_explicit_order_must_cover(self, star_db, star_workload):
        q = next(q for q in star_workload if len(q.tables) >= 2)
        with pytest.raises(PlanError):
            star_db.planner.plan(q, order=[q.tables[0]])

    def test_limit_zero_gives_empty_plan(self, tiny_db):
        q = ConjunctiveQuery(tables=["users"], limit=0)
        plan = tiny_db.planner.plan(q)
        assert isinstance(plan, P.EmptyResult)

    def test_cross_join_for_disconnected(self, tiny_db):
        q = ConjunctiveQuery(tables=["users", "orders"],
                             aggregates=[Aggregate("count")])
        plan = tiny_db.planner.plan(q)
        assert any(isinstance(n, P.CrossJoin) for n in plan.walk())

    def test_hypothetical_index_used_only_when_enabled(self, star_db):
        star_db.catalog.create_index("hyp", "customer", "c_age",
                                     hypothetical=True)
        q = ConjunctiveQuery(
            tables=["customer"],
            predicates=[Predicate("customer", "c_age", "<", 20)],
            aggregates=[Aggregate("count")],
        )
        normal_plan = star_db.planner.plan(q)
        assert not any(isinstance(n, P.IndexScan) for n in normal_plan.walk())
        whatif = Planner(star_db.catalog, include_hypothetical=True)
        whatif_plan = whatif.plan(q)
        assert any(isinstance(n, P.IndexScan) for n in whatif_plan.walk())

    def test_plan_pretty_renders(self, star_db, star_workload):
        plan = star_db.planner.plan(star_workload[0])
        text = plan.pretty()
        assert "rows=" in text and "cost=" in text
