"""Staged-pipeline tests: plan cache, epoch invalidation, stage telemetry.

Extends the differential pattern of ``test_engine_executor_vectorized.py``:
cached-plan re-execution must return identical rows in identical order and
charge bit-identical work in **both** executor modes, and a cache entry
must be invalidated by every catalog mutation (INSERT / CREATE INDEX /
ANALYZE / DDL) — no test may ever observe a stale plan.
"""

import pytest

from repro.common import PlanError


def _approx_rows(actual, expected):
    """Row equality tolerating float summation-order drift across modes."""
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert len(got) == len(want)
        for g, w in zip(got, want):
            if isinstance(w, float):
                assert g == pytest.approx(w, rel=1e-9, abs=1e-9)
            else:
                assert g == w

from repro.engine import Database, datagen
from repro.engine.executor import EXECUTOR_MODES
from repro.engine.pipeline import PIPELINE_STAGES, PlanCache
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate


@pytest.fixture
def db():
    """A small two-table database built through SQL (vectorized mode)."""
    db = Database()
    db.execute("CREATE TABLE users (id INT, name TEXT, age INT, spend FLOAT)")
    db.execute(
        "INSERT INTO users VALUES "
        + ", ".join(
            "(%d, 'u%d', %d, %.1f)" % (i, i, 20 + (i * 7) % 40, float(i % 13))
            for i in range(200)
        )
    )
    db.execute("CREATE TABLE orders (o_id INT, o_user INT, amount FLOAT)")
    db.execute(
        "INSERT INTO orders VALUES "
        + ", ".join(
            "(%d, %d, %.1f)" % (i, i % 200, float((i * 3) % 50))
            for i in range(400)
        )
    )
    db.execute("ANALYZE")
    return db


# ----------------------------------------------------------------------
# Satellite: full query signature
# ----------------------------------------------------------------------
class TestSignature:
    def _base(self, **kw):
        return ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", ">", 1)],
            **kw
        )

    def test_structural_order_insensitive(self):
        q1 = ConjunctiveQuery(
            tables=["a", "b"],
            join_edges=[JoinEdge("a", "x", "b", "y")],
            predicates=[Predicate("a", "x", "=", 1),
                        Predicate("b", "y", ">", 2)],
        )
        q2 = ConjunctiveQuery(
            tables=["b", "a"],
            join_edges=[JoinEdge("b", "y", "a", "x")],
            predicates=[Predicate("b", "y", ">", 2),
                        Predicate("a", "x", "=", 1)],
        )
        assert q1.signature() == q2.signature()

    def test_limit_distinguishes(self):
        assert self._base().signature() != self._base(limit=10).signature()
        assert self._base(limit=10).signature() != \
            self._base(limit=20).signature()

    def test_projections_distinguish(self):
        assert self._base().signature() != \
            self._base(projections=[("a", "x")]).signature()
        # Projection order is output order — it must matter.
        assert self._base(projections=[("a", "x"), ("b", "y")]).signature() \
            != self._base(projections=[("b", "y"), ("a", "x")]).signature()

    def test_aggregates_distinguish(self):
        count = self._base(aggregates=[Aggregate("count")])
        summed = self._base(aggregates=[Aggregate("sum", "a", "x")])
        assert count.signature() != summed.signature()
        assert count.signature() != self._base().signature()

    def test_group_by_distinguishes(self):
        plain = self._base(aggregates=[Aggregate("count")])
        grouped = self._base(aggregates=[Aggregate("count")],
                             group_by=[("a", "x")])
        assert plain.signature() != grouped.signature()

    def test_order_by_and_direction_distinguish(self):
        asc = self._base(order_by=(("a", "x"), False))
        desc = self._base(order_by=(("a", "x"), True))
        assert self._base().signature() != asc.signature()
        assert asc.signature() != desc.signature()

    def test_distinct_distinguishes(self):
        assert self._base(projections=[("a", "x")]).signature() != \
            self._base(projections=[("a", "x")], distinct=True).signature()

    def test_case_insensitive(self):
        lo = self._base(projections=[("a", "x")], group_by=[])
        hi = ConjunctiveQuery(
            tables=["A", "B"],
            join_edges=[JoinEdge("A", "X", "B", "Y")],
            predicates=[Predicate("A", "X", ">", 1)],
            projections=[("A", "X")],
        )
        assert lo.signature() == hi.signature()


# ----------------------------------------------------------------------
# Satellite: catalog epoch
# ----------------------------------------------------------------------
class TestCatalogEpoch:
    def test_bumps_on_every_mutation(self, db):
        seen = [db.epoch]

        def bumped():
            seen.append(db.epoch)
            assert seen[-1] > seen[-2], "epoch did not advance"

        db.execute("CREATE TABLE t2 (a INT)")
        bumped()
        db.execute("INSERT INTO t2 VALUES (1), (2)")
        bumped()
        db.execute("CREATE INDEX idx_t2a ON t2 (a)")
        bumped()
        db.execute("ANALYZE t2")
        bumped()
        db.catalog.drop_index("idx_t2a")
        bumped()
        db.catalog.drop_table("t2")
        bumped()

    def test_direct_insert_rows_advances_epoch(self, db):
        """Bulk loads bypassing SQL (the datagen path) still move the epoch."""
        before = db.epoch
        db.catalog.table("users").insert_rows([(999, "zz", 30, 1.0)])
        assert db.epoch > before

    def test_drop_table_stays_monotonic(self, db):
        before = db.epoch
        db.catalog.drop_table("orders")  # removes 400 rows from the sum
        assert db.epoch > before

    def test_view_registration_bumps(self, db):
        from repro.ai4db.config.view_advisor import (
            enumerate_view_candidates,
            materialize_view,
        )

        db2 = Database()
        datagen.make_star_schema(
            db2.catalog, n_customers=100, n_products=20, n_dates=30,
            n_sales=500, seed=0,
        )
        workload = datagen.star_workload(n_queries=8, seed=1)
        cand = enumerate_view_candidates(workload)[0]
        before = db2.epoch
        materialize_view(db2, cand)
        assert db2.epoch > before

    def test_database_exposes_catalog_epoch(self, db):
        assert db.epoch == db.catalog.epoch


# ----------------------------------------------------------------------
# PlanCache unit behaviour
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_hit_miss_and_counters(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k", epoch=1) is None
        cache.put("k", "plan", epoch=1)
        assert cache.get("k", epoch=1) == "plan"
        assert cache.stats() == {
            "hits": 1, "misses": 1, "invalidations": 0, "size": 1,
            "capacity": 4,
        }

    def test_epoch_drift_invalidates(self):
        cache = PlanCache(capacity=4)
        cache.put("k", "plan", epoch=1)
        assert cache.get("k", epoch=2) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1, 0)
        cache.put("b", 2, 0)
        assert cache.get("a", 0) == 1  # refresh a; b is now LRU
        cache.put("c", 3, 0)
        assert "b" not in cache
        assert cache.get("a", 0) == 1 and cache.get("c", 0) == 3

    def test_clear_keeps_counters_reset_keeps_entries(self):
        cache = PlanCache(capacity=4)
        cache.put("k", 1, 0)
        cache.get("k", 0)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 1
        cache.put("k", 1, 0)
        cache.reset_counters()
        assert cache.hits == 0 and len(cache) == 1

    def test_capacity_validated(self):
        with pytest.raises(PlanError):
            PlanCache(capacity=0)


# ----------------------------------------------------------------------
# Tentpole: cached-plan differential behaviour
# ----------------------------------------------------------------------
def _mode_dbs(build):
    dbs = {}
    for mode in EXECUTOR_MODES:
        kwargs = {}
        if mode == "parallel":
            # Tiny morsels so the worker pool runs on these small fixtures.
            kwargs = {"morsel_rows": 64, "parallel_workers": 3}
        d = Database(executor_mode=mode, **kwargs)
        build(d)
        dbs[mode] = d
    return dbs


class TestCachedPlanParity:
    """Warm (cached) re-execution is observationally identical to cold."""

    SQL = ("SELECT tag, COUNT(*), SUM(v) FROM l WHERE k < 25 "
           "GROUP BY tag ORDER BY tag LIMIT 4")

    def _build(self, d):
        rng_rows = [
            (i, (i * 11) % 40, float((i * 7) % 23) / 7.0, "tag%d" % (i % 5))
            for i in range(500)
        ]
        d.execute("CREATE TABLE l (id INT, k INT, v FLOAT, tag TEXT)")
        d.catalog.table("l").insert_rows(rng_rows)
        d.execute("ANALYZE")

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_warm_equals_cold_single_mode(self, mode):
        d = Database(executor_mode=mode)
        self._build(d)
        cold = d.execute(self.SQL)
        assert cold.pipeline_telemetry.cache_hit is False
        warm = d.execute(self.SQL)
        assert warm.pipeline_telemetry.cache_hit is True
        assert warm.rows == cold.rows
        assert warm.columns == cold.columns
        assert warm.work == cold.work
        assert warm.operator_work == cold.operator_work

    def test_warm_parity_across_modes(self):
        dbs = _mode_dbs(self._build)
        results = {}
        for mode, d in dbs.items():
            d.execute(self.SQL)  # populate the cache
            results[mode] = d.execute(self.SQL)  # cached re-execution
            assert results[mode].pipeline_telemetry.cache_hit is True
        row_res = results["row"]
        for mode in EXECUTOR_MODES:
            if mode == "row":
                continue
            res = results[mode]
            _approx_rows(res.rows, row_res.rows)
            assert res.work == row_res.work, mode
            assert res.operator_work == row_res.operator_work, mode

    def test_structured_query_warm_parity(self):
        dbs = _mode_dbs(self._build)
        q = ConjunctiveQuery(
            tables=["l"],
            predicates=[Predicate("l", "k", "<", 20)],
            projections=[("l", "tag"), ("l", "k")],
            distinct=True,
        )
        for d in dbs.values():
            d.run_query_object(q)
        warm = {m: d.run_query_object(q) for m, d in dbs.items()}
        assert all(r.pipeline_telemetry.cache_hit for r in warm.values())
        for mode in EXECUTOR_MODES:
            assert warm[mode].rows == warm["row"].rows, mode
            assert warm[mode].work == warm["row"].work, mode


class TestInvalidation:
    """No stale plan — or stale result — survives a catalog mutation."""

    def test_insert_invalidates_and_result_is_fresh(self, db):
        sql = "SELECT COUNT(*) FROM users WHERE age >= 20"
        assert db.query(sql)[0][0] == 200
        assert db.pipeline.plan_cache.hits == 0
        db.execute("INSERT INTO users VALUES (1000, 'new', 33, 9.9)")
        assert db.query(sql)[0][0] == 201  # would be 200 from a stale plan
        assert db.pipeline.plan_cache.invalidations >= 1

    def test_create_index_replans(self, db):
        sql = "SELECT name FROM users WHERE id = 7"
        cold = db.explain(sql)
        assert "IndexScan" not in cold
        warm = db.explain(sql)
        assert warm == cold  # served from cache
        db.execute("CREATE INDEX idx_uid ON users (id)")
        after = db.explain(sql)
        assert "IndexScan" in after  # cached SeqScan plan was NOT served

    def test_analyze_invalidates(self, db):
        sql = "SELECT COUNT(*) FROM orders WHERE amount < 10"
        db.query(sql)
        db.query(sql)
        hits_before = db.pipeline.plan_cache.hits
        assert hits_before >= 1
        db.execute("ANALYZE orders")
        db.query(sql)
        assert db.pipeline.plan_cache.invalidations >= 1
        # The replanned query caches again under the new epoch.
        db.query(sql)
        assert db.pipeline.plan_cache.hits > hits_before

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_insert_freshness_both_modes(self, mode):
        d = Database(executor_mode=mode)
        d.execute("CREATE TABLE t (a INT)")
        d.execute("INSERT INTO t VALUES (1), (2), (3)")
        q = ConjunctiveQuery(tables=["t"],
                             aggregates=[Aggregate("sum", "t", "a")])
        assert d.run_query_object(q).rows == [(6,)]
        d.execute("INSERT INTO t VALUES (10)")
        assert d.run_query_object(q).rows == [(16,)]


class TestExplicitOrders:
    def test_order_is_part_of_the_key(self):
        d = Database()
        names, edges = datagen.make_join_graph_schema(
            d.catalog, "clique", n_tables=3, rows_per_table=120, seed=5,
            prefix="j",
        )
        q = datagen.join_graph_workload(
            names, edges, n_queries=1, seed=6, min_tables=3
        )[0]
        order_a = list(q.tables)
        order_b = list(reversed(q.tables))
        d.run_query_object(q, order=order_a)
        d.run_query_object(q, order=order_b)
        assert len(d.pipeline.plan_cache) >= 2
        # Re-running either order hits its own entry.
        r = d.run_query_object(q, order=order_a)
        assert r.pipeline_telemetry.cache_hit is True
        # And the implicit (enumerator-chosen) plan is a third entry.
        r2 = d.run_query_object(q)
        assert r2.pipeline_telemetry.cache_hit is False


# ----------------------------------------------------------------------
# Removed shims and stage hooks
# ----------------------------------------------------------------------
class TestShims:
    """The pre-pipeline ``db.rewriter``/``db.statement_hooks`` shims
    finished their deprecation cycle: the pipeline spelling is the only
    one, and the removed names fail loudly with a migration pointer."""

    def test_statement_hooks_on_pipeline(self, db):
        db.pipeline.statement_hooks.append(
            lambda d, text: "HOOKED" if text.startswith("MAGIC") else None
        )
        assert db.execute("MAGIC WORD") == "HOOKED"

    def test_rewriter_applied_on_sql_and_query_paths(self, db):
        calls = []

        def rewriter(query):
            calls.append(query)
            return query

        db.pipeline.rewriter = rewriter
        assert db.pipeline.rewriter is rewriter
        db.query("SELECT COUNT(*) FROM users")
        q = ConjunctiveQuery(tables=["users"],
                             aggregates=[Aggregate("count")])
        db.run_query_object(q)
        assert len(calls) == 2

    def test_setting_rewriter_clears_plan_cache(self, db):
        db.query("SELECT COUNT(*) FROM users")
        assert len(db.pipeline.plan_cache) == 1
        db.pipeline.rewriter = lambda q: q
        assert len(db.pipeline.plan_cache) == 0

    def test_removed_shims_raise_with_migration_pointer(self, db):
        with pytest.raises(AttributeError, match="db.pipeline.rewriter"):
            db.rewriter
        with pytest.raises(AttributeError, match="db.pipeline.rewriter"):
            db.rewriter = lambda q: q
        with pytest.raises(
            AttributeError, match="db.pipeline.statement_hooks"
        ):
            db.statement_hooks
        with pytest.raises(
            AttributeError, match="db.pipeline.statement_hooks"
        ):
            db.statement_hooks = []

    def test_stage_hooks_observe_and_replace(self, db):
        seen = {stage: 0 for stage in PIPELINE_STAGES}
        for stage in ("parse", "lower", "rewrite", "plan", "execute"):
            def make(stage):
                def hook(value):
                    seen[stage] += 1
                    return None  # observe only

                return hook

            db.pipeline.add_stage_hook(stage, make(stage))
        db.query("SELECT COUNT(*) FROM users WHERE age > 21")
        assert seen == {"parse": 1, "lower": 1, "rewrite": 1, "plan": 1,
                        "execute": 1}
        # Warm SQL path skips parse/lower but still rewrites and executes.
        db.query("SELECT COUNT(*) FROM users WHERE age > 21")
        assert seen["parse"] == 1 and seen["lower"] == 1
        assert seen["rewrite"] == 2 and seen["execute"] == 2

    def test_unknown_stage_rejected(self, db):
        with pytest.raises(PlanError):
            db.pipeline.add_stage_hook("optimize", lambda v: v)


# ----------------------------------------------------------------------
# Telemetry and stats
# ----------------------------------------------------------------------
class TestPipelineTelemetry:
    def test_per_run_record(self, db):
        res = db.execute("SELECT COUNT(*) FROM users WHERE spend > 3")
        tel = res.pipeline_telemetry
        assert set(tel.stages) == {"parse", "lower", "rewrite", "plan",
                                   "execute"}
        assert tel.planning_seconds > 0
        assert tel.execution_seconds > 0
        assert tel.cache_hit is False
        assert tel.execution is res.telemetry  # per-operator counters
        summary = tel.summary()
        assert summary["execution"]["mode"] == "vectorized"
        assert summary["cache_hit"] is False

    def test_warm_run_skips_parse_and_lower(self, db):
        sql = "SELECT COUNT(*) FROM users WHERE spend > 3"
        db.execute(sql)
        warm = db.execute(sql).pipeline_telemetry
        assert "parse" not in warm.stages
        assert warm.cache_hit is True

    def test_stats_shape_and_reset(self, db):
        db.pipeline.reset_stats()
        db.query("SELECT COUNT(*) FROM users")
        db.query("SELECT COUNT(*) FROM users")
        s = db.pipeline.stats()
        assert s["runs"] == 2
        assert s["plan_cache"]["hits"] == 1
        assert s["plan_cache"]["misses"] == 1
        assert s["planning_seconds"] > 0
        assert s["execution_seconds"] > 0
        assert s["stages"]["execute"]["count"] == 2
        db.pipeline.reset_stats()
        s2 = db.pipeline.stats()
        assert s2["runs"] == 0 and s2["plan_cache"]["hits"] == 0
        assert s2["plan_cache"]["size"] == 1  # entries survive a reset

    def test_explain_uses_cache_without_executing(self, db):
        sql = "SELECT name FROM users WHERE age > 30"
        db.pipeline.reset_stats()
        a = db.explain(sql)
        b = db.explain(sql)
        assert a == b
        s = db.pipeline.stats()
        assert s["plan_cache"]["hits"] == 1
        assert "execute" not in s["stages"]

    def test_ddl_counts_as_execute_stage(self, db):
        db.pipeline.reset_stats()
        db.execute("CREATE TABLE d (x INT)")
        s = db.pipeline.stats()
        assert s["stages"]["execute"]["count"] == 1
        assert "plan" not in s["stages"]


class TestAISQLThroughPipeline:
    def test_repeated_predict_hits_plan_cache(self):
        from repro.db4ai.declarative import AISQLExtension

        d = Database()
        d.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        d.catalog.table("pts").insert_rows(
            (float(i) / 10.0, 2.0 * i / 10.0 + 1.0) for i in range(100)
        )
        d.execute("ANALYZE pts")
        AISQLExtension().install(d)
        d.execute("CREATE MODEL m KIND linear ON pts TARGET y FEATURES (x)")
        d.execute("PREDICT m ON pts WHERE x > 0.5 LIMIT 10")
        hits_before = d.pipeline.plan_cache.hits
        r = d.execute("PREDICT m ON pts WHERE x > 0.5 LIMIT 10")
        assert len(r.rows) == 10
        assert d.pipeline.plan_cache.hits > hits_before
