"""Randomized differential query fuzzer across all executor modes.

A seeded generator produces random catalogs (2–4 tables with INT/FLOAT/
TEXT and nullable-TEXT columns) and random conjunctive queries over them
(equi-joins, predicates, GROUP BY, aggregates, ORDER BY, LIMIT — including
LIMIT 0 — and DISTINCT). Every query runs under ``mode="row"``,
``mode="vectorized"``, and ``mode="parallel"`` (with a tiny morsel size so
the worker pool really runs), each with operator fusion **on and off** —
six mode×fusion configurations — and twice per configuration, so the
suite asserts:

* identical rows in identical order across all six configurations,
* bit-identical ``work`` and ``operator_work`` (the mode- and
  fusion-independence invariant the cost-gap experiments rely on),
* identical per-operator **actual_rows** (the executor's per-node output
  counters, preorder over the unfused plan) — fused pipelines must
  attribute counts to the original nodes they replace,
* cold vs. warm plan cache parity (the second run must be a cache hit and
  observationally identical),
* encoded-segment storage vs a plain-encoding twin database (small
  ``segment_rows`` so every table seals several row groups): rows, order,
  ``work`` and per-node counts must be bit-identical — zone-map pruning
  and encoded-space predicate evaluation are pure optimizations.

Everything is deterministic: catalogs and queries derive from fixed seeds,
so a failure reproduces with its printed ``(catalog_seed, case_index)``.
``REPRO_FUZZ_CASES`` scales the number of generated cases (default ~200;
``make fuzz`` raises it).

Value-generation rules that keep the oracle honest (not workarounds —
engine-level NULL contracts): INT/FLOAT columns are never NULL (int64
arrays cannot hold None; float NaN breaks equality), so NULLs live in a
dedicated nullable TEXT column, which *is* exercised as a group-by /
distinct / join key. Predicates, sort keys, and aggregate arguments stick
to non-nullable columns, matching the comparison semantics both executors
implement.
"""

import os
import random
import threading

import pytest

from repro.engine import Database
from repro.engine.executor import EXECUTOR_MODES
from repro.engine.query import Aggregate, ConjunctiveQuery, JoinEdge, Predicate

#: Total fuzz budget, split across catalog seeds.
N_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "200"))
CATALOG_SEEDS = list(range(8))
CASES_PER_CATALOG = max(1, N_CASES // len(CATALOG_SEEDS))

#: Engine seed (``REPRO_SEED``): threaded into every Database the fuzzer
#: builds and offset into the query-stream rngs, so one knob diversifies
#: the whole campaign while the default stays byte-reproducible.
FUZZ_SEED = int(os.environ.get("REPRO_SEED", "0"))

#: Parallel-mode settings that force morsel splitting on fuzz-size tables.
MORSEL_ROWS = 64
N_WORKERS = 3

#: Small segments so every fuzz table seals multiple row groups and the
#: zone-map/encoding machinery is exercised by every case.
SEGMENT_ROWS = 32

#: Configs raced a third time against a plain-encoding twin database.
#: Same segment boundaries, so even float aggregation is bit-identical —
#: the twin runs are compared exactly, not approximately.
ENCODING_RACE_CONFIGS = [
    ("vectorized", False), ("vectorized", True), ("parallel", True),
]

#: Every executor mode raced with operator fusion off and on.  The
#: (row, fusion-off) configuration is the oracle everything else must match.
CONFIGS = [
    (mode, fusion) for mode in EXECUTOR_MODES for fusion in (False, True)
]
BASE_CONFIG = ("row", False)

AGG_FUNCS = ("count", "sum", "avg", "min", "max")
CMP_OPS = ("=", "!=", "<", "<=", ">", ">=")


# ----------------------------------------------------------------------
# Random catalog + query generation (pure functions of the seed)
# ----------------------------------------------------------------------
def _make_schema(rng):
    """Random table specs: name -> (n_rows, k_domain)."""
    n_tables = rng.randint(2, 4)
    return {
        "t%d" % i: (rng.randint(40, 150), rng.randint(3, 12))
        for i in range(n_tables)
    }


def _build_db(mode, seed, fusion=True, segment_encodings=None,
              plan_selector=None):
    """One database per (mode, fusion, seed); data identical across all."""
    kwargs = {
        "executor_mode": mode,
        "fusion_enabled": fusion,
        "segment_rows": SEGMENT_ROWS,
        "seed": FUZZ_SEED,
    }
    if segment_encodings is not None:
        kwargs["segment_encodings"] = segment_encodings
    if plan_selector is not None:
        kwargs["plan_selector"] = plan_selector
    if mode == "parallel":
        kwargs.update(morsel_rows=MORSEL_ROWS, parallel_workers=N_WORKERS)
    db = Database(**kwargs)
    rng = random.Random(seed)
    schema = _make_schema(rng)
    for name, (n_rows, k_domain) in schema.items():
        db.execute(
            "CREATE TABLE %s (id INT, k INT, v FLOAT, tag TEXT, ntag TEXT)"
            % name
        )
        rows = []
        for i in range(n_rows):
            rows.append((
                i,
                rng.randrange(k_domain),
                round(rng.uniform(-10.0, 10.0), 6),
                "tag%d" % rng.randrange(5),
                None if rng.random() < 0.3 else "n%d" % rng.randrange(3),
            ))
        db.catalog.table(name).insert_rows(rows)
    db.execute("ANALYZE")
    return db, sorted(schema)


def _random_query(rng, tables):
    """One random conjunctive query over a connected subset of ``tables``."""
    n = rng.randint(1, min(3, len(tables)))
    chosen = rng.sample(tables, n)
    edges = []
    for prev, nxt in zip(chosen, chosen[1:]):
        col = rng.choice(["k", "id"])
        edges.append(JoinEdge(prev, col, nxt, col))
    predicates = []
    for __ in range(rng.randint(0, 2)):
        t = rng.choice(chosen)
        col, value = rng.choice([
            ("k", rng.randrange(12)),
            ("v", round(rng.uniform(-8.0, 8.0), 3)),
            ("id", rng.randrange(150)),
            ("tag", "tag%d" % rng.randrange(5)),
        ])
        predicates.append(Predicate(t, col, rng.choice(CMP_OPS), value))
    shape = rng.random()
    group_by, aggregates, projections = [], [], []
    order_by, limit, distinct = None, None, False
    if shape < 0.4:
        # Aggregation query; ~half the time grouped, sometimes on the
        # nullable column (the latent all-NULL-group-key class).
        if rng.random() < 0.75:
            t = rng.choice(chosen)
            key = rng.choice(["k", "tag", "ntag", "ntag"])
            group_by.append((t, key))
        for __ in range(rng.randint(1, 3)):
            func = rng.choice(AGG_FUNCS)
            if func == "count":
                aggregates.append(Aggregate("count"))
            else:
                t = rng.choice(chosen)
                col = rng.choice(["k", "v", "id"])
                aggregates.append(Aggregate(func, t, col))
    else:
        # Projection query over 1–3 random columns; DISTINCT may include
        # the nullable column.
        for __ in range(rng.randint(1, 3)):
            t = rng.choice(chosen)
            projections.append((t, rng.choice(["id", "k", "v", "tag", "ntag"])))
        distinct = rng.random() < 0.4
        if rng.random() < 0.5:
            t, col = rng.choice(projections)
            if col != "ntag":  # sort keys must be totally ordered
                order_by = ((t, col), rng.random() < 0.5)
        if rng.random() < 0.35:
            limit = rng.choice([0, 1, 3, 10, 500])
    return ConjunctiveQuery(
        tables=chosen,
        join_edges=edges,
        predicates=predicates,
        projections=projections,
        aggregates=aggregates,
        group_by=group_by,
        order_by=order_by,
        limit=limit,
        distinct=distinct,
    )


def _node_counts(result):
    """Preorder ``(op, actual_rows)`` pairs from the execution telemetry."""
    return [
        (e["op"], e["actual_rows"]) for e in result.telemetry.node_stats
    ]


def _approx_equal_rows(rows_a, rows_b):
    """Row-list equality with float tolerance (sum association differs)."""
    if len(rows_a) != len(rows_b):
        return False
    for ra, rb in zip(rows_a, rows_b):
        if len(ra) != len(rb):
            return False
        for x, y in zip(ra, rb):
            if isinstance(x, float) and isinstance(y, float):
                if x != pytest.approx(y, rel=1e-9, abs=1e-12):
                    return False
            elif x != y:
                return False
    return True


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("catalog_seed", CATALOG_SEEDS)
def test_fuzz_differential(catalog_seed):
    dbs = {}
    plain_dbs = {}
    tables = None
    for cfg in CONFIGS:
        dbs[cfg], tables = _build_db(cfg[0], catalog_seed, fusion=cfg[1])
    for cfg in ENCODING_RACE_CONFIGS:
        plain_dbs[cfg], __ = _build_db(
            cfg[0], catalog_seed, fusion=cfg[1], segment_encodings=("plain",)
        )
    rng = random.Random(10_000 + catalog_seed + 1_000_003 * FUZZ_SEED)
    for case in range(CASES_PER_CATALOG):
        query = _random_query(rng, tables)
        label = "catalog_seed=%d case=%d query=%r" % (
            catalog_seed, case, query
        )
        cold, warm = {}, {}
        for cfg in CONFIGS:
            cold[cfg] = dbs[cfg].run_query_object(query)
            warm[cfg] = dbs[cfg].run_query_object(query)
            # Cold vs. warm: second run must hit the plan cache and be
            # observationally identical (same executor => exact equality).
            assert warm[cfg].pipeline_telemetry.cache_hit is True, label
            assert warm[cfg].rows == cold[cfg].rows, label
            assert warm[cfg].work == cold[cfg].work, label
            assert warm[cfg].operator_work == cold[cfg].operator_work, label
        base = cold[BASE_CONFIG]
        base_counts = _node_counts(base)
        # The oracle must have counted every node it executed.
        assert base_counts, label
        assert all(n is not None for __, n in base_counts), (
            "%s: uncounted plan node(s) in %r" % (label, base_counts)
        )
        for cfg in CONFIGS:
            if cfg == BASE_CONFIG:
                continue
            mode, fusion = cfg
            res = cold[cfg]
            assert res.columns == base.columns, label
            # Per-operator actual output cardinalities are part of the
            # observational contract: every mode×fusion config must count
            # the same rows out of the same (unfused) plan nodes.
            assert _node_counts(res) == base_counts, (
                "%s: %s/fusion=%s per-node actual_rows diverge\n"
                "base=%r\nthis=%r"
                % (label, mode, fusion, base_counts, _node_counts(res))
            )
            if mode == "row":
                # Same interpreter, same fold order: fusion must be
                # bit-identical, not just approximately equal.
                assert res.rows == base.rows, (
                    "%s: row-mode fusion diverges\nbase=%r\nfused=%r"
                    % (label, base.rows[:10], res.rows[:10])
                )
            else:
                assert _approx_equal_rows(res.rows, base.rows), (
                    "%s: %s/fusion=%s rows diverge from row mode\n"
                    "row=%r\n%s=%r"
                    % (label, mode, fusion, base.rows[:10], mode,
                       res.rows[:10])
                )
            assert res.work == base.work, label
            assert res.operator_work == base.operator_work, label
        # Encoded segments vs a plain-encoding twin: identical segment
        # boundaries mean identical morsel/partial boundaries, so the
        # comparison is exact — rows, order, work, per-node counts.
        for cfg in ENCODING_RACE_CONFIGS:
            enc = cold[cfg]
            plain = plain_dbs[cfg].run_query_object(query)
            assert plain.columns == enc.columns, label
            assert plain.rows == enc.rows, (
                "%s: %s/fusion=%s encoded vs plain rows diverge\n"
                "plain=%r\nencoded=%r"
                % (label, cfg[0], cfg[1], plain.rows[:10], enc.rows[:10])
            )
            assert plain.work == enc.work, label
            assert plain.operator_work == enc.operator_work, label
            assert _node_counts(plain) == _node_counts(enc), label


# ----------------------------------------------------------------------
# Plan-selector axis: cost vs bandit vs pessimistic must agree on results
# ----------------------------------------------------------------------
#: Catalog seeds and cases for the selector race (candidate generation
#: fans out several plans per cold query, so the budget is smaller).
SELECTOR_RACE_SEEDS = (0, 1)
SELECTOR_RACE_CASES = max(10, CASES_PER_CATALOG // 2)
PLAN_SELECTORS = ("cost", "bandit", "pessimistic")


def _canonical_rows(rows):
    """An order-independent, float-tolerant row-multiset fingerprint.

    Different join orders legitimately reorder unordered output and
    change float fold order, so selector parity is a multiset property
    (rounded to 6 decimals) rather than exact list equality.
    """
    return sorted(
        repr(tuple(round(x, 6) if isinstance(x, float) else x for x in r))
        for r in rows
    )


def _unlimited(query):
    """The query with a row-limiting LIMIT dropped.

    LIMIT n over unordered output is a pick-any-n contract: different
    join orders may legitimately return different subsets, so the
    selector race compares only fully-determined result multisets.
    LIMIT 0 stays (its result is exactly empty under every plan).
    """
    if query.limit in (None, 0):
        return query
    return ConjunctiveQuery(
        tables=query.tables,
        join_edges=query.join_edges,
        predicates=query.predicates,
        projections=query.projections,
        aggregates=query.aggregates,
        group_by=query.group_by,
        order_by=query.order_by,
        limit=None,
        distinct=query.distinct,
    )


@pytest.mark.parametrize("catalog_seed", SELECTOR_RACE_SEEDS)
def test_fuzz_selector_race(catalog_seed):
    """The three plan selectors race on identical data: whichever arm
    each one picks, the *results* may never diverge from the cost
    selector's (rows as a multiset, same columns) — measured work may
    differ (that is the point of racing plans), correctness may not.
    Warm reruns must hit the per-arm plan cache under every selector.
    """
    mode, fusion = BASE_CONFIG
    dbs, tables = {}, None
    for sel in PLAN_SELECTORS:
        dbs[sel], tables = _build_db(
            mode, catalog_seed, fusion=fusion, plan_selector=sel
        )
    rng = random.Random(55_000 + catalog_seed + 1_000_003 * FUZZ_SEED)
    for case in range(SELECTOR_RACE_CASES):
        query = _unlimited(_random_query(rng, tables))
        label = "catalog_seed=%d case=%d query=%r" % (
            catalog_seed, case, query
        )
        cold = {sel: dbs[sel].run_query_object(query)
                for sel in PLAN_SELECTORS}
        oracle = cold["cost"]
        oracle_rows = _canonical_rows(oracle.rows)
        assert oracle.pipeline_telemetry.arm is None, label
        for sel in ("bandit", "pessimistic"):
            res = cold[sel]
            assert res.columns == oracle.columns, label
            assert _canonical_rows(res.rows) == oracle_rows, (
                "%s: %s selector rows diverge from cost oracle\n"
                "cost=%r\n%s=%r"
                % (label, sel, oracle.rows[:10], sel, res.rows[:10])
            )
            # Selection ran: the run is attributed to a named arm.
            assert res.pipeline_telemetry.arm is not None, label
            warm = dbs[sel].run_query_object(query)
            assert warm.pipeline_telemetry.cache_outcome == "hit", label
            assert _canonical_rows(warm.rows) == oracle_rows, label
    # The bandit must actually have explored: every arm it races has
    # been pulled at least once over the campaign.
    stats = dbs["bandit"].plan_selector.stats()
    assert stats["selections"] >= SELECTOR_RACE_CASES
    assert all(st["picks"] > 0 for st in stats["arms"].values()), stats


#: Queries per config in the snapshot-isolation race below.
SNAPSHOT_RACE_CASES = 12


@pytest.mark.parametrize("config", CONFIGS)
def test_fuzz_snapshot_isolation(config):
    """A reader pinned to a snapshot races a writer appending to every
    table; its results must be bit-identical to a frozen copy.

    The frozen copy is an identically-seeded twin database that is never
    written — same data, same statistics, same segment boundaries, so
    within one mode×fusion config the comparison is exact, not
    approximate. The exact leg executes one shared plan against both the
    pinned snapshot and the twin (rows, work, and per-node counts must
    match bit-for-bit); the full-pipeline leg runs through
    ``snapshot.run_query_object`` and compares row *multisets*, since the
    planner reads live table sizes and may legitimately pick a different
    join order mid-race — the values it returns still may not drift.
    """
    mode, fusion = config
    db, tables = _build_db(mode, 0, fusion=fusion)
    frozen, __ = _build_db(mode, 0, fusion=fusion)
    snap = db.snapshot()
    stop = threading.Event()
    errors = []

    def writer():
        try:
            wrng = random.Random(777)
            while not stop.is_set():
                t = wrng.choice(tables)
                db.catalog.table(t).insert_rows([(
                    wrng.randrange(10_000),
                    wrng.randrange(12),
                    round(wrng.uniform(-10.0, 10.0), 6),
                    "tag%d" % wrng.randrange(5),
                    None if wrng.random() < 0.3 else "n%d" % wrng.randrange(3),
                ) for __ in range(5)])
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    wt = threading.Thread(target=writer)
    wt.start()
    try:
        rng = random.Random(31_337)
        for case in range(SNAPSHOT_RACE_CASES):
            query = _random_query(rng, tables)
            label = "config=%r case=%d query=%r" % (config, case, query)
            # Exact leg: one plan, two catalogs (pinned vs frozen twin).
            plan = db.planner.plan(query)
            pinned = db.executor.execute(plan, catalog=snap.catalog)
            oracle = frozen.executor.execute(plan)
            assert pinned.rows == oracle.rows, (
                "%s: pinned vs frozen rows diverge\npinned=%r\nfrozen=%r"
                % (label, pinned.rows[:10], oracle.rows[:10])
            )
            assert pinned.work == oracle.work, label
            assert _node_counts(pinned) == _node_counts(oracle), label
            # Pipeline leg: plan may differ (live stats move), values not.
            piped = snap.run_query_object(query)
            assert (sorted(map(repr, piped.rows))
                    == sorted(map(repr, oracle.rows))), label
    finally:
        stop.set()
        wt.join()
    assert not errors, errors[0]
    # The writer must actually have raced the reader, and the snapshot's
    # row counts must have stayed pinned at the frozen copy's.
    assert sum(db.catalog.table(t).n_rows for t in tables) > sum(
        frozen.catalog.table(t).n_rows for t in tables
    )
    for t in tables:
        assert (snap.catalog.table(t).n_rows
                == frozen.catalog.table(t).n_rows), t


#: Server-mode fuzz sizes: concurrent sessions and statements per session.
SERVER_SESSIONS = 4
SERVER_OPS = 10


def _add_private_tables(db, n_sessions, seed):
    """Identically-seeded per-session private tables, in db and twin."""
    for i in range(n_sessions):
        name = "priv%d" % i
        db.execute(
            "CREATE TABLE %s (id INT, k INT, v FLOAT, tag TEXT, ntag TEXT)"
            % name
        )
        prng = random.Random(seed * 31 + i)
        db.catalog.table(name).insert_rows([
            (
                j,
                prng.randrange(12),
                round(prng.uniform(-10.0, 10.0), 6),
                "tag%d" % prng.randrange(5),
                None if prng.random() < 0.3 else "n%d" % prng.randrange(3),
            )
            for j in range(40)
        ])
    db.execute("ANALYZE")


def _session_script(seed, idx, shared_tables, n_ops):
    """One session's deterministic statement mix (pure function of seed).

    Reads are random conjunctive queries over the shared tables plus the
    session's own private table; writes append seeded rows to that
    private table only. Because no session ever writes a table another
    session reads, a serial replay of the same script must observe
    bit-identical results — the property the server-mode fuzz asserts.
    """
    rng = random.Random(seed * 7001 + idx)
    private = "priv%d" % idx
    ops = []
    for __ in range(n_ops):
        if rng.random() < 0.3:
            rows = [
                (
                    rng.randrange(100_000),
                    rng.randrange(12),
                    round(rng.uniform(-10.0, 10.0), 6),
                    "tag%d" % rng.randrange(5),
                    None if rng.random() < 0.3 else "n%d" % rng.randrange(3),
                )
                for __ in range(rng.randint(1, 4))
            ]
            ops.append(("write", rows))
        else:
            ops.append(("read", _random_query(rng, shared_tables + [private])))
    return ops


def _replay_session(server, idx, ops):
    """Run one session's script; return its observable outcomes."""
    out = []
    with server.session(tenant="s%d" % idx) as sess:
        for kind, payload in ops:
            if kind == "write":
                sess.insert_rows("priv%d" % idx, payload)
                out.append(("write", len(payload)))
            else:
                res = sess.run_query_object(payload)
                out.append((
                    "read", res.rows, res.telemetry.total_work,
                    _node_counts(res),
                ))
    return out


@pytest.mark.parametrize("config", CONFIGS)
def test_fuzz_server_mode_matches_serial_oracle(config):
    """N sessions replay seeded statement mixes through the QueryServer
    concurrently; each session's results must be **bit-identical** to an
    identically-seeded serial replay on a frozen twin server.

    Sessions share read-only tables and privately own one writable table
    each, so per-session outcomes are deterministic even under real
    concurrency: plans, rows, ``total_work``, and per-node actual_rows
    must all match the serial oracle exactly, in every mode×fusion
    config. Admission is configured generously so scheduling never
    sheds or reorders anything — this isolates the snapshot-execution
    and single-writer-commit machinery.
    """
    from repro.engine import QueryServer

    mode, fusion = config
    db, shared = _build_db(mode, 0, fusion=fusion)
    twin, __ = _build_db(mode, 0, fusion=fusion)
    _add_private_tables(db, SERVER_SESSIONS, seed=0)
    _add_private_tables(twin, SERVER_SESSIONS, seed=0)

    scripts = [
        _session_script(0, idx, shared, SERVER_OPS)
        for idx in range(SERVER_SESSIONS)
    ]
    # The mix must actually exercise both paths.
    kinds = {kind for ops in scripts for kind, __ in ops}
    assert kinds == {"read", "write"}

    live = QueryServer(db, tenant_quota=1e15, quota_refill_rate=0.0)
    frozen = QueryServer(twin, tenant_quota=1e15, quota_refill_rate=0.0)

    concurrent_results = {}
    errors = []
    barrier = threading.Barrier(SERVER_SESSIONS)

    def worker(idx):
        try:
            barrier.wait()
            concurrent_results[idx] = _replay_session(live, idx, scripts[idx])
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(SERVER_SESSIONS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[0]

    for idx in range(SERVER_SESSIONS):
        oracle = _replay_session(frozen, idx, scripts[idx])
        label = "config=%r session=%d" % (config, idx)
        assert len(concurrent_results[idx]) == len(oracle), label
        for op_i, (got, want) in enumerate(
            zip(concurrent_results[idx], oracle)
        ):
            assert got == want, (
                "%s op=%d diverges from serial oracle\nconcurrent=%r\n"
                "serial=%r" % (label, op_i, got, want)
            )
        # Both replicas applied the same writes.
        name = "priv%d" % idx
        assert (db.catalog.table(name).n_rows
                == twin.catalog.table(name).n_rows), label
    # Every server write went through the single-writer commit log.
    writes = sum(
        1 for ops in scripts for kind, __ in ops if kind == "write"
    )
    assert live.commit_history()[-1][0] == writes


# ----------------------------------------------------------------------
# Agent-session arm: random scripts under random policies vs serial oracle
# ----------------------------------------------------------------------
#: Scripts per mode×fusion config in the agent-session arm.
AGENT_CASES = 6

AGENT_POLICY_KINDS = ("SELECT", "INSERT", "CREATE TABLE", "ANALYZE")


def _random_policy(rng):
    """A random session policy (or None for an audit-only session)."""
    from repro.engine import Policy

    roll = rng.random()
    if roll < 0.25:
        return None
    if roll < 0.45:
        return Policy.read_only()
    if roll < 0.60:
        return Policy(deny_tables=("t0",))
    if roll < 0.80:
        return Policy(max_rows=rng.choice([1, 3, 25]))
    kinds = tuple(k for k in AGENT_POLICY_KINDS if rng.random() < 0.7)
    return Policy(statement_kinds=kinds or ("SELECT",))


def _agent_script(rng, tables, case):
    """A random multi-statement SQL script (pure function of the rng).

    Mixes shared-table inserts, scratch DDL + inserts, reads, ANALYZE,
    and the occasional statement that is guaranteed to fail — the mix a
    misbehaving agent would produce. Scratch names embed ``case`` so a
    committed case never collides with the next one.
    """
    stmts = []
    scratch = []
    for __ in range(rng.randint(4, 9)):
        roll = rng.random()
        t = rng.choice(tables)
        if roll < 0.30:
            rows = ", ".join(
                "(%d, %d, %.3f, 'tag%d', 'n%d')" % (
                    rng.randrange(100_000), rng.randrange(12),
                    rng.uniform(-10.0, 10.0), rng.randrange(5),
                    rng.randrange(3))
                for __ in range(rng.randint(1, 3))
            )
            stmts.append("INSERT INTO %s VALUES %s" % (t, rows))
        elif roll < 0.45:
            name = "s%d_%d" % (case, len(scratch))
            scratch.append(name)
            stmts.append("CREATE TABLE %s (a INT, b TEXT)" % name)
        elif roll < 0.55 and scratch:
            stmts.append("INSERT INTO %s VALUES (%d, 'b%d')" % (
                rng.choice(scratch), rng.randrange(100),
                rng.randrange(4)))
        elif roll < 0.80:
            stmts.append(rng.choice([
                "SELECT COUNT(*) FROM %s" % t,
                "SELECT id, k FROM %s WHERE k < %d" % (t, rng.randrange(12)),
                "SELECT MIN(v), MAX(v) FROM %s" % t,
            ]))
        elif roll < 0.90:
            stmts.append("ANALYZE %s" % t)
        else:
            stmts.append("SELECT * FROM no_such_%d" % rng.randrange(10))
    return stmts


def _run_gated_statements(session, stmts):
    """Execute ``stmts`` one by one; return the observable outcomes."""
    from repro.engine import EngineError

    out = []
    for sql in stmts:
        try:
            res = session.execute(sql)
            raw = res.raw
            out.append((
                "ok", res.kind,
                raw.rows if hasattr(raw, "rows") else raw,
            ))
        except EngineError as exc:
            out.append(("error", type(exc).__name__))
    return out


def _full_state(db):
    """Bit-identity probe: every table's rows + the full version vector."""
    state = {
        name: db.query("SELECT * FROM %s" % name)
        for name in sorted(db.catalog.table_names())
    }
    return state, dict(db.catalog.version_vector())


@pytest.mark.parametrize("config", CONFIGS)
def test_fuzz_agent_session_rollback_matches_serial_oracle(config):
    """Random scripts under random policies through :class:`AgentSession`:

    * ``rollback()`` restores bit-identical state (all tables' rows and
      the version vector) in every mode×fusion config, regardless of
      how far the script got before failing or being denied;
    * re-running the same script and committing produces the **same
      per-statement outcomes** (rows, status strings, error classes,
      policy denials) as a serial gated-session oracle on a frozen
      twin, and leaves both databases bit-identical;
    * the audit log records every statement plus BEGIN/ROLLBACK.
    """
    mode, fusion = config
    db, tables = _build_db(mode, 3, fusion=fusion)
    twin, __ = _build_db(mode, 3, fusion=fusion)
    rng = random.Random(90_000 + 17 * CONFIGS.index(config))
    for case in range(AGENT_CASES):
        policy = _random_policy(rng)
        stmts = _agent_script(rng, tables, case)
        label = "config=%r case=%d policy=%r stmts=%r" % (
            config, case, policy and policy.describe(), stmts)
        before = _full_state(db)

        # Leg 1: run inside a transaction, then roll everything back.
        agent = db.agent_session(policy=policy)
        agent.begin()
        live = _run_gated_statements(agent, stmts)
        agent.rollback()
        assert _full_state(db) == before, label
        assert len(agent.audit) == len(stmts) + 2, label  # BEGIN/ROLLBACK
        assert [r.kind for r in agent.audit][0] == "BEGIN"
        assert [r.kind for r in agent.audit][-1] == "ROLLBACK"

        # Leg 2: serial oracle — same script, same policy, plain gated
        # session on the twin (no transaction machinery at all).
        oracle = _run_gated_statements(twin.session(policy=policy), stmts)
        assert live == oracle, (
            "%s\nagent=%r\noracle=%r" % (label, live, oracle))

        # Leg 3: replay + commit; outcomes repeat and states converge.
        with db.agent_session(policy=policy) as agent2:
            committed = _run_gated_statements(agent2, stmts)
        assert committed == live, label
        assert _full_state(db) == _full_state(twin), label


class TestEdgeCases:
    """Targeted regressions for the edge cases the fuzzer hunts.

    Two were real latent bugs fixed in this PR (both from sort-based
    ``np.unique`` on object arrays containing ``None``): vectorized
    group-by/DISTINCT/join on all-NULL or mixed-NULL keys crashed with
    ``TypeError``, and ANALYZE on a nullable TEXT column crashed in
    ``ColumnStats.build``. The rest pin down behaviour that must stay
    identical across modes.
    """

    def _mode_dbs(self, build):
        dbs = {}
        for mode, fusion in CONFIGS:
            kwargs = {"executor_mode": mode, "fusion_enabled": fusion}
            if mode == "parallel":
                kwargs.update(morsel_rows=MORSEL_ROWS,
                              parallel_workers=N_WORKERS)
            db = Database(**kwargs)
            build(db)
            dbs[(mode, fusion)] = db
        return dbs

    def _assert_parity(self, dbs, query):
        base = dbs[BASE_CONFIG].run_query_object(query)
        for cfg in CONFIGS:
            if cfg == BASE_CONFIG:
                continue
            res = dbs[cfg].run_query_object(query)
            assert res.columns == base.columns, cfg
            assert _approx_equal_rows(res.rows, base.rows), cfg
            assert res.work == base.work, cfg
            assert res.operator_work == base.operator_work, cfg
        return base

    @staticmethod
    def _null_build(db):
        db.execute("CREATE TABLE e (id INT, k INT, ntag TEXT)")
        db.catalog.table("e").insert_rows(
            [(i, i % 3, None) for i in range(60)]
        )
        db.execute("CREATE TABLE f (id INT, k INT)")
        db.execute("ANALYZE")

    def test_empty_relation_join(self):
        dbs = self._mode_dbs(self._null_build)
        q = ConjunctiveQuery(
            tables=["e", "f"],
            join_edges=[JoinEdge("e", "k", "f", "k")],
        )
        base = self._assert_parity(dbs, q)
        assert base.rows == []

    def test_all_null_group_keys(self):
        """Regression: all-NULL TEXT group key grouped via hash equality
        (sort-based factorization used to raise TypeError)."""
        dbs = self._mode_dbs(self._null_build)
        q = ConjunctiveQuery(
            tables=["e"],
            group_by=[("e", "ntag")],
            aggregates=[Aggregate("count"), Aggregate("sum", "e", "k")],
        )
        base = self._assert_parity(dbs, q)
        assert base.rows == [(None, 60, 60)]

    def test_distinct_over_all_null_column(self):
        dbs = self._mode_dbs(self._null_build)
        q = ConjunctiveQuery(
            tables=["e"], projections=[("e", "ntag")], distinct=True
        )
        base = self._assert_parity(dbs, q)
        assert base.rows == [(None,)]

    def test_mixed_null_group_and_join_keys(self):
        def build(db):
            db.execute("CREATE TABLE g (id INT, ntag TEXT)")
            db.catalog.table("g").insert_rows(
                [(i, None if i % 2 else "x%d" % (i % 4)) for i in range(80)]
            )
            db.execute("CREATE TABLE h (id INT, ntag TEXT)")
            db.catalog.table("h").insert_rows(
                [(i, None if i % 3 else "x%d" % (i % 4)) for i in range(60)]
            )
            db.execute("ANALYZE")

        dbs = self._mode_dbs(build)
        q = ConjunctiveQuery(
            tables=["g", "h"],
            join_edges=[JoinEdge("g", "ntag", "h", "ntag")],
            group_by=[("g", "ntag")],
            aggregates=[Aggregate("count")],
        )
        base = self._assert_parity(dbs, q)
        assert len(base.rows) > 0  # NULL == NULL joins, like the interpreter

    def test_limit_zero_identical_in_all_modes(self):
        dbs = self._mode_dbs(self._null_build)
        q = ConjunctiveQuery(tables=["e"], projections=[("e", "id")], limit=0)
        base = self._assert_parity(dbs, q)
        assert base.rows == []

    def test_raw_limit_zero_plan_node(self):
        """LIMIT 0 as a raw plan node too (the planner usually folds it
        into EmptyResult before the executor ever sees it)."""
        from repro.engine import plans as P
        from repro.engine.executor import Executor

        dbs = self._mode_dbs(self._null_build)
        results = {}
        for cfg, db in dbs.items():
            ex = db.executor
            plan = P.Limit(P.SeqScan("e"), 0)
            results[cfg] = ex.execute(plan)
        for cfg, res in results.items():
            assert res.rows == [], cfg
            assert res.work == results[BASE_CONFIG].work, cfg

    def test_analyze_nullable_text_column(self):
        """Regression: ANALYZE over a nullable TEXT column must not crash
        and must exclude NULLs from NDV/MCV stats."""
        db = Database()
        db.execute("CREATE TABLE n (id INT, ntag TEXT)")
        db.catalog.table("n").insert_rows(
            [(i, None if i % 2 else "v%d" % (i % 3)) for i in range(40)]
        )
        db.execute("ANALYZE")
        stats = db.catalog.stats("n").column("ntag")
        assert stats.n_distinct == 3
        assert None not in stats.top_values
        assert "None" not in stats.top_values


def test_parallel_mode_actually_splits_morsels():
    """Meta-check: the fuzz fixtures are big enough to dispatch morsels."""
    db, tables = _build_db("parallel", 0)
    rng = random.Random(99)
    dispatched = 0
    for __ in range(20):
        res = db.run_query_object(_random_query(rng, tables))
        dispatched += sum(
            v["morsels"] for v in res.telemetry.operators.values()
        )
    assert dispatched > 0


def test_fusion_actually_fires_on_fuzz_workload():
    """Meta-check: the generated queries include fusible tails, so the
    fusion=True half of the matrix is not vacuously equal to fusion=False."""
    fused_hits = 0
    for mode in EXECUTOR_MODES:
        db, tables = _build_db(mode, 0, fusion=True)
        rng = random.Random(4242)
        for __ in range(20):
            res = db.run_query_object(_random_query(rng, tables))
            fused_hits += res.telemetry.fused_ops
    assert fused_hits > 0
