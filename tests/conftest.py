"""Shared fixtures for the test suite."""

import faulthandler
import os

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.catalog import Catalog
from repro.engine import datagen

#: Per-test watchdog in seconds (0 disables). ``make test-concurrency``
#: sets it so a deadlocked thread test dumps every stack and dies instead
#: of hanging CI; implemented with the stdlib faulthandler (no plugin).
_TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "0") or 0.0)

if _TEST_TIMEOUT > 0:

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        faulthandler.dump_traceback_later(_TEST_TIMEOUT, exit=True)
        try:
            yield
        finally:
            faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def rng():
    """A fixed-seed generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def star_db():
    """A small star-schema database (analyzed) shared by planner tests."""
    db = Database()
    datagen.make_star_schema(
        db.catalog, n_customers=300, n_products=60, n_dates=60,
        n_sales=3000, seed=0,
    )
    return db


@pytest.fixture
def star_workload():
    """A small analytical workload over the star schema."""
    return datagen.star_workload(n_queries=12, seed=1)


@pytest.fixture
def correlated_catalog():
    """Catalog with the correlated 'facts' table for estimator tests."""
    catalog = Catalog()
    datagen.make_correlated_table(
        catalog, "facts", n_rows=3000, n_values=40, correlation=0.9, seed=0
    )
    return catalog


@pytest.fixture
def chain_catalog():
    """Catalog with a 4-table chain join graph."""
    catalog = Catalog()
    names, edges = datagen.make_join_graph_schema(
        catalog, "chain", n_tables=4, rows_per_table=400, seed=0
    )
    return catalog, names, edges


@pytest.fixture
def tiny_db():
    """A hand-populated two-table database with known contents."""
    db = Database()
    db.execute("CREATE TABLE users (id INT, name TEXT, age INT)")
    db.execute(
        "INSERT INTO users VALUES "
        "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 41), "
        "(4, 'dave', 25), (5, 'erin', 35)"
    )
    db.execute("CREATE TABLE orders (oid INT, user_id INT, amount FLOAT)")
    db.execute(
        "INSERT INTO orders VALUES "
        "(10, 1, 9.5), (11, 1, 20.0), (12, 2, 5.25), (13, 3, 7.75), "
        "(14, 9, 1.0)"
    )
    db.execute("ANALYZE")
    return db
