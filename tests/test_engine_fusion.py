"""Tests for operator fusion + the consolidated EngineConfig surface.

Covers the fusion pass as a unit (which tails fuse, which are refused,
how scan predicates lift), the fused execution path end to end (rows,
work parity, telemetry), the structured ``ExplainResult``, and the
``EngineConfig`` dataclass — including the contract that
``Database(config=...)`` and the legacy per-knob kwargs wire identical
engines.
"""

import dataclasses

import pytest

from repro.common import ExecutionError, ReproError
from repro.engine import Database, EngineConfig, fuse_plan
from repro.engine import plans as P
from repro.engine.config import default_fusion_enabled
from repro.engine.plans import PlanError
from repro.engine.query import Aggregate, Predicate


def _populated(**kwargs):
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (id INT, k INT, v FLOAT, tag TEXT)")
    rows = ", ".join(
        "(%d, %d, %.3f, 'g%d')" % (i, i % 7, (i * 37 % 100) / 10.0, i % 3)
        for i in range(200)
    )
    db.execute("INSERT INTO t VALUES " + rows)
    db.execute("ANALYZE")
    return db


FUSIBLE_SQL = "SELECT tag, COUNT(*), SUM(v) FROM t WHERE k < 5 GROUP BY tag"


# ----------------------------------------------------------------------
# EngineConfig: validation, immutability, env resolution
# ----------------------------------------------------------------------
class TestEngineConfig:
    def test_defaults_are_valid(self):
        cfg = EngineConfig()
        assert cfg.executor_mode == "vectorized"
        assert cfg.fusion_enabled is True

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.executor_mode = "row"

    def test_with_changes_derives_a_new_config(self):
        cfg = EngineConfig()
        other = cfg.with_changes(executor_mode="row", fusion_enabled=False)
        assert other.executor_mode == "row"
        assert other.fusion_enabled is False
        assert cfg.executor_mode == "vectorized"  # original untouched

    def test_cost_params_copied_defensively(self):
        params = {"cpu_tuple_cost": 2.0}
        cfg = EngineConfig(cost_params=params)
        params["cpu_tuple_cost"] = 99.0
        assert cfg.cost_params["cpu_tuple_cost"] == 2.0

    @pytest.mark.parametrize("bad_kwargs,exc", [
        ({"executor_mode": "turbo"}, ExecutionError),
        ({"enumerator": "exhaustive"}, ReproError),
        ({"morsel_rows": 0}, ExecutionError),
        ({"parallel_workers": 0}, ExecutionError),
        ({"plan_cache_size": 0}, ReproError),
    ])
    def test_validation_errors(self, bad_kwargs, exc):
        with pytest.raises(exc):
            EngineConfig(**bad_kwargs)

    def test_from_env_reads_repro_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_MODE", "row")
        monkeypatch.setenv("REPRO_MORSEL_SIZE", "128")
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "2")
        monkeypatch.setenv("REPRO_FUSION", "0")
        cfg = EngineConfig.from_env()
        assert cfg.executor_mode == "row"
        assert cfg.morsel_rows == 128
        assert cfg.parallel_workers == 2
        assert cfg.fusion_enabled is False

    def test_from_env_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_MODE", "row")
        monkeypatch.setenv("REPRO_FUSION", "off")
        cfg = EngineConfig.from_env(executor_mode="parallel",
                                    fusion_enabled=True)
        assert cfg.executor_mode == "parallel"
        assert cfg.fusion_enabled is True

    def test_from_env_none_overrides_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR_MODE", "row")
        cfg = EngineConfig.from_env(executor_mode=None)
        assert cfg.executor_mode == "row"

    @pytest.mark.parametrize("raw,expected", [
        ("0", False), ("false", False), ("OFF", False), ("no", False),
        ("1", True), ("on", True), ("", True),
    ])
    def test_fusion_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_FUSION", raw)
        assert default_fusion_enabled() is expected

    def test_executor_kwargs_shape(self):
        cfg = EngineConfig(executor_mode="parallel", morsel_rows=64,
                           parallel_workers=3, fusion_enabled=False)
        assert cfg.executor_kwargs() == {
            "mode": "parallel", "morsel_rows": 64, "n_workers": 3,
            "fusion_enabled": False, "pruning_enabled": True,
        }


# ----------------------------------------------------------------------
# Database(config=...) vs. legacy kwargs
# ----------------------------------------------------------------------
class TestConfigEquivalence:
    def test_config_and_kwargs_wire_identical_engines(self):
        cfg = EngineConfig(
            executor_mode="parallel", morsel_rows=64, parallel_workers=3,
            plan_cache_size=17, enumerator="greedy", use_views=False,
            cost_params={"cpu_tuple_cost": 2.0}, fusion_enabled=False,
        )
        via_config = Database(config=cfg)
        via_kwargs = Database(
            executor_mode="parallel", morsel_rows=64, parallel_workers=3,
            plan_cache_size=17, enumerator="greedy", use_views=False,
            cost_params={"cpu_tuple_cost": 2.0}, fusion_enabled=False,
        )
        for db in (via_config, via_kwargs):
            assert db.executor.mode == "parallel"
            assert db.executor.morsel_rows == 64
            assert db.executor.n_workers == 3
            assert db.executor.fusion_enabled is False
            assert db.planner.enumerator == "greedy"
            assert db.planner.use_views is False
            assert db.pipeline.plan_cache.capacity == 17
            assert db.cost_model.params["cpu_tuple_cost"] == 2.0
        assert via_config.config == via_kwargs.config

    def test_mixing_config_and_kwargs_is_an_error(self):
        with pytest.raises(ReproError, match="not both"):
            Database(config=EngineConfig(), executor_mode="row")

    def test_config_must_be_engineconfig(self):
        with pytest.raises(ReproError, match="EngineConfig"):
            Database(config={"executor_mode": "row"})

    def test_config_property_is_read_only(self):
        db = Database()
        with pytest.raises(AttributeError):
            db.config = EngineConfig()

    def test_default_database_exposes_config(self):
        db = Database(executor_mode="row")
        assert isinstance(db.config, EngineConfig)
        assert db.config.executor_mode == "row"


# ----------------------------------------------------------------------
# fuse_plan as a unit: what fuses, what is refused
# ----------------------------------------------------------------------
class TestFusePlan:
    def test_scan_predicates_lift_into_fused_op(self):
        pred = Predicate("t", "k", "<", 5)
        plan = P.HashAggregate(
            P.SeqScan("t", (pred,)), [("t", "tag")], [Aggregate("count")]
        )
        fused, n = fuse_plan(plan)
        assert isinstance(fused, P.FusedPipelineOp)
        assert n == fused.fused_ops == 2  # Filter + Aggregate stages
        assert list(fused.predicates) == [pred]
        source = fused.children[0]
        assert isinstance(source, P.SeqScan)
        assert list(source.predicates) == []  # stripped: the fused op masks

    def test_standalone_filter_absorbed(self):
        pred = Predicate("t", "k", "<", 5)
        plan = P.Limit(
            P.Project(P.Filter(P.SeqScan("t"), (pred,)), [("t", "tag")]),
            3,
        )
        fused, n = fuse_plan(plan)
        assert isinstance(fused, P.FusedPipelineOp)
        assert fused.stages == ["Filter", "Project", "Limit"]
        assert n == 3

    def test_sort_in_tail_refused(self):
        plan = P.Project(
            P.Sort(P.SeqScan("t"), ("t", "k")), [("t", "k")], distinct=True
        )
        out, n = fuse_plan(plan)
        assert out is plan and n == 0

    def test_bare_project_not_worth_it(self):
        plan = P.Project(P.SeqScan("t"), [("t", "k")])
        out, n = fuse_plan(plan)
        assert out is plan and n == 0

    def test_two_mask_stages_refused(self):
        """Pushed scan predicates + a standalone Filter: refuse."""
        plan = P.HashAggregate(
            P.Filter(
                P.SeqScan("t", (Predicate("t", "k", "<", 5),)),
                (Predicate("t", "v", ">", 1.0),),
            ),
            [], [Aggregate("count")],
        )
        out, n = fuse_plan(plan)
        assert out is plan and n == 0

    def test_empty_result_refused(self):
        plan = P.Limit(P.EmptyResult([("t", "k")]), 3)
        out, n = fuse_plan(plan)
        assert out is plan and n == 0

    def test_join_source_fuses(self):
        from repro.engine.query import JoinEdge

        join = P.HashJoin(P.SeqScan("a"), P.SeqScan("b"),
                          [JoinEdge("a", "k", "b", "k")])
        plan = P.HashAggregate(join, [], [Aggregate("count")])
        fused, n = fuse_plan(plan)
        assert isinstance(fused, P.FusedPipelineOp)
        assert fused.children[0] is join

    def test_fused_node_ctor_validation(self):
        scan = P.SeqScan("t")
        with pytest.raises(PlanError):
            P.FusedPipelineOp(scan)  # neither project nor aggregate
        with pytest.raises(PlanError):
            P.FusedPipelineOp(
                scan,
                project_node=P.Project(scan, [("t", "k")]),
                agg_node=P.HashAggregate(scan, [], [Aggregate("count")]),
            )


# ----------------------------------------------------------------------
# Fused execution end to end: rows, parity, telemetry, EXPLAIN
# ----------------------------------------------------------------------
class TestFusedExecution:
    def test_fused_matches_unfused_rows_and_work(self):
        fused_db = _populated(fusion_enabled=True)
        plain_db = _populated(fusion_enabled=False)
        for sql in (
            FUSIBLE_SQL,
            "SELECT MIN(v), MAX(v), AVG(v) FROM t WHERE tag = 'g1'",
            "SELECT DISTINCT tag FROM t WHERE k != 3",
            "SELECT id, v FROM t WHERE v > 5.0 LIMIT 7",
        ):
            a = fused_db.execute(sql)
            b = plain_db.execute(sql)
            assert a.rows == b.rows, sql
            assert a.work == b.work, sql
            assert a.operator_work == b.operator_work, sql
            assert a.telemetry.fused_ops > 0, sql
            assert b.telemetry.fused_ops == 0, sql

    def test_telemetry_summary_has_fused_ops(self):
        db = _populated(fusion_enabled=True)
        res = db.execute(FUSIBLE_SQL)
        assert res.telemetry.summary()["fused_ops"] == res.telemetry.fused_ops

    def test_repro_fusion_env_gates_default_database(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSION", "0")
        db = _populated()
        assert db.executor.fusion_enabled is False
        assert db.execute(FUSIBLE_SQL).telemetry.fused_ops == 0

    def test_explain_result_structure(self):
        db = _populated(fusion_enabled=True)
        res = db.explain(FUSIBLE_SQL)
        # Back-compat: behaves like the classic plan text.
        assert str(res) == res.text
        assert "SeqScan" in res
        assert res == res.text
        # The plan itself stays unfused; fusion is previewed as a count.
        assert not any(
            isinstance(n, P.FusedPipelineOp) for n in res.plan.walk()
        )
        assert res.fused_ops > 0
        assert res.cache_hit is False
        assert db.explain(FUSIBLE_SQL).cache_hit is True

    def test_explain_fused_ops_zero_when_disabled(self):
        db = _populated(fusion_enabled=False)
        assert db.explain(FUSIBLE_SQL).fused_ops == 0

    def test_plan_cache_stays_unfused(self):
        """Fusion must not leak into cached plans: a warm run through the
        cache still reports fused_ops (i.e. fusion re-applies per
        execution, not per plan)."""
        db = _populated(fusion_enabled=True)
        cold = db.execute(FUSIBLE_SQL)
        warm = db.execute(FUSIBLE_SQL)
        assert warm.pipeline_telemetry.cache_hit is True
        assert warm.telemetry.fused_ops == cold.telemetry.fused_ops > 0
        assert warm.rows == cold.rows
