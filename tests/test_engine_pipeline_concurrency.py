"""Thread-safety stress tests for the PR 2 plan cache and pipeline.

The plan cache is shared by every thread that calls ``Database.execute``.
These tests hammer it from N query threads while a mutation thread bumps
``Catalog.epoch`` (INSERT + ANALYZE on a *different* table, so the queried
data never changes but every cached plan goes stale), asserting:

* no thread ever observes a wrong result (a stale plan served after an
  epoch bump would still be correct here by construction — what we check
  is that nothing crashes, results stay exact, and invalidations are
  actually recorded);
* the cache's counters stay consistent with the operations performed
  (``hits + misses == lookups``), which the pre-lock implementation could
  violate via its lookup-then-delete race;
* concurrent execution works in every executor mode, including the
  parallel mode whose morsel pool is shared process-wide.
"""

import threading

import pytest

from repro.engine import Database
from repro.engine.executor import EXECUTOR_MODES
from repro.engine.pipeline import PlanCache

N_THREADS = 4
ROUNDS_PER_THREAD = 30


def _build_db(mode):
    kwargs = {"executor_mode": mode}
    if mode == "parallel":
        kwargs.update(morsel_rows=64, parallel_workers=3)
    db = Database(**kwargs)
    db.execute("CREATE TABLE a (id INT, k INT, v FLOAT)")
    db.catalog.table("a").insert_rows(
        [(i, i % 7, float(i % 11)) for i in range(400)]
    )
    db.execute("CREATE TABLE b (id INT)")
    db.catalog.table("b").insert_rows([(i,) for i in range(10)])
    db.execute("ANALYZE")
    return db


QUERIES = [
    ("SELECT COUNT(*) FROM a", [(400,)]),
    ("SELECT COUNT(*) FROM a WHERE k = 3", [(57,)]),
    ("SELECT k, COUNT(*) FROM a WHERE k < 2 GROUP BY k ORDER BY k",
     [(0, 58), (1, 57)]),
]


class TestConcurrentExecution:
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_queries_with_concurrent_epoch_bumps(self, mode):
        db = _build_db(mode)
        errors = []
        stop = threading.Event()

        def query_loop():
            try:
                for i in range(ROUNDS_PER_THREAD):
                    sql, expected = QUERIES[i % len(QUERIES)]
                    res = db.execute(sql)
                    assert res.rows == expected, (sql, res.rows)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            finally:
                stop.set()

        def mutation_loop():
            # Bump the epoch via a table the queries never touch: every
            # cached plan goes stale without changing any expected result.
            while not stop.is_set():
                db.catalog.table("b").insert_rows([(999,)])
                db.execute("ANALYZE b")

        threads = [threading.Thread(target=query_loop)
                   for __ in range(N_THREADS)]
        mutator = threading.Thread(target=mutation_loop)
        for t in threads:
            t.start()
        mutator.start()
        for t in threads:
            t.join()
        stop.set()
        mutator.join()
        assert not errors, errors[0]
        stats = db.pipeline.plan_cache.stats()
        # The mutator must actually have raced the queries at least once.
        assert stats["invalidations"] + stats["misses"] >= len(QUERIES)
        assert stats["hits"] + stats["misses"] > 0

    def test_no_stale_result_after_mutation_barrier(self):
        """Sequential check the stress test can't do: after the mutation
        thread is quiesced, a fresh query must see the new data."""
        db = _build_db("vectorized")
        assert db.query("SELECT COUNT(*) FROM a")[0][0] == 400

        done = threading.Event()

        def mutate():
            db.catalog.table("a").insert_rows([(1000, 3, 1.0)])
            db.execute("ANALYZE a")
            done.set()

        t = threading.Thread(target=mutate)
        t.start()
        done.wait()
        t.join()
        assert db.query("SELECT COUNT(*) FROM a")[0][0] == 401


class TestPerTableIsolation:
    """The PR 7 contract: a writer hammering table ``b`` must never evict
    cached plans for queries that touch only table ``a``."""

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_writer_on_b_never_evicts_plans_for_a(self, mode):
        db = _build_db(mode)
        # Warm every a-only plan, then zero the counters so the assertion
        # window covers exactly the raced phase.
        for sql, __ in QUERIES:
            db.execute(sql)
        db.pipeline.plan_cache.reset_counters()

        errors = []
        stop = threading.Event()

        def query_loop():
            try:
                for i in range(ROUNDS_PER_THREAD):
                    sql, expected = QUERIES[i % len(QUERIES)]
                    res = db.execute(sql)
                    assert res.rows == expected, (sql, res.rows)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            finally:
                stop.set()

        def mutation_loop():
            while not stop.is_set():
                db.catalog.table("b").insert_rows([(999,)])
                db.execute("ANALYZE b")

        threads = [threading.Thread(target=query_loop)
                   for __ in range(N_THREADS)]
        mutator = threading.Thread(target=mutation_loop)
        for t in threads:
            t.start()
        mutator.start()
        for t in threads:
            t.join()
        stop.set()
        mutator.join()
        assert not errors, errors[0]
        stats = db.pipeline.plan_cache.stats()
        # Every raced query ran against a warm plan: the writer on b bumps
        # only b's version, so a-scoped tokens never drift.
        assert stats["invalidations"] == 0, stats
        assert stats["misses"] == 0, stats
        assert stats["hits"] == N_THREADS * ROUNDS_PER_THREAD, stats

    def test_global_scope_shows_the_old_behaviour(self):
        """Control: under ``cache_scope="global"`` the same writer *does*
        invalidate a-only plans — the contrast the benchmark measures."""
        db = _build_db("vectorized")
        gdb = Database(executor_mode="vectorized", cache_scope="global")
        gdb.execute("CREATE TABLE a (id INT, k INT, v FLOAT)")
        gdb.catalog.table("a").insert_rows(
            [(i, i % 7, float(i % 11)) for i in range(400)]
        )
        gdb.execute("CREATE TABLE b (id INT)")
        gdb.execute("ANALYZE")
        sql = QUERIES[0][0]
        gdb.execute(sql)
        gdb.pipeline.plan_cache.reset_counters()
        gdb.catalog.table("b").insert_rows([(1,)])
        gdb.execute(sql)
        assert gdb.pipeline.plan_cache.stats()["invalidations"] == 1
        # ... while the default per-table scope keeps the plan warm.
        db.execute(sql)
        db.pipeline.plan_cache.reset_counters()
        db.catalog.table("b").insert_rows([(1,)])
        db.execute(sql)
        assert db.pipeline.plan_cache.stats()["invalidations"] == 0
        assert db.pipeline.plan_cache.stats()["hits"] == 1


class TestPlanCacheHammer:
    """Raw PlanCache under concurrent get/put/clear from many threads."""

    def test_counters_stay_consistent(self):
        cache = PlanCache(capacity=8)
        n_threads, n_ops = 8, 400
        lookups = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(wid):
            try:
                barrier.wait()
                local_lookups = 0
                for i in range(n_ops):
                    key = "q%d" % (i % 12)
                    epoch = (i // 50) % 3  # epochs drift => invalidations
                    if cache.get(key, epoch) is None:
                        cache.put(key, "plan-%d-%d" % (wid, i), epoch)
                    local_lookups += 1
                    if i % 97 == 0:
                        cache.clear()
                with lock:
                    lookups.append(local_lookups)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == sum(lookups)
        assert stats["invalidations"] >= 1
        assert len(cache) <= cache.capacity

    def test_concurrent_epoch_churn_never_serves_stale(self):
        """Entries stored under one epoch must never be returned under
        another, no matter how the threads interleave."""
        cache = PlanCache(capacity=32)
        errors = []
        n_threads = 6

        def worker(wid):
            try:
                for i in range(300):
                    epoch = i % 5
                    value = ("v", epoch)
                    got = cache.get("shared", epoch)
                    if got is not None:
                        # The entry must have been stored under this epoch.
                        assert got[1] == epoch, got
                    else:
                        cache.put("shared", value, epoch)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
