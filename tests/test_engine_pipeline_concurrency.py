"""Thread-safety stress tests for the PR 2 plan cache and pipeline.

The plan cache is shared by every thread that calls ``Database.execute``.
These tests hammer it from N query threads while a mutation thread bumps
``Catalog.epoch`` (INSERT + ANALYZE on a *different* table, so the queried
data never changes but every cached plan goes stale), asserting:

* no thread ever observes a wrong result (a stale plan served after an
  epoch bump would still be correct here by construction — what we check
  is that nothing crashes, results stay exact, and invalidations are
  actually recorded);
* the cache's counters stay consistent with the operations performed
  (``hits + misses == lookups``), which the pre-lock implementation could
  violate via its lookup-then-delete race;
* concurrent execution works in every executor mode, including the
  parallel mode whose morsel pool is shared process-wide.

Synchronization discipline (PR 8): all threads release from one
``threading.Barrier`` so the race window opens simultaneously, and query
threads wait on a ``first_mutation`` event before their final rounds —
the overlap is *proven* by events, never assumed from sleeps. Tier-1
sizes stay small; the ``slow``-marked variants turn the same harness up
for ``make test-concurrency``.
"""

import threading

import pytest

from repro.engine import Database
from repro.engine.executor import EXECUTOR_MODES
from repro.engine.pipeline import PlanCache

N_THREADS = 4
ROUNDS_PER_THREAD = 20
#: Rounds every query thread runs *after* the first epoch bump has
#: provably happened (it waits on the mutator's event).
POST_MUTATION_ROUNDS = 3

HEAVY_THREADS = 8
HEAVY_ROUNDS = 100


def _build_db(mode):
    kwargs = {"executor_mode": mode}
    if mode == "parallel":
        kwargs.update(morsel_rows=64, parallel_workers=3)
    db = Database(**kwargs)
    db.execute("CREATE TABLE a (id INT, k INT, v FLOAT)")
    db.catalog.table("a").insert_rows(
        [(i, i % 7, float(i % 11)) for i in range(400)]
    )
    db.execute("CREATE TABLE b (id INT)")
    db.catalog.table("b").insert_rows([(i,) for i in range(10)])
    db.execute("ANALYZE")
    return db


QUERIES = [
    ("SELECT COUNT(*) FROM a", [(400,)]),
    ("SELECT COUNT(*) FROM a WHERE k = 3", [(57,)]),
    ("SELECT k, COUNT(*) FROM a WHERE k < 2 GROUP BY k ORDER BY k",
     [(0, 58), (1, 57)]),
]


def _race_queries_against_mutator(db, n_threads, rounds):
    """Race ``n_threads`` query loops against an epoch-bumping mutator.

    Every thread starts from one barrier; the mutator sets
    ``first_mutation`` after its first INSERT+ANALYZE and keeps mutating
    until the query threads finish, and each query thread waits for that
    event before running its last ``POST_MUTATION_ROUNDS`` rounds — so
    mutation provably overlaps querying in every run, no sleeps involved.

    Returns the number of query rounds executed (all threads combined).
    """
    errors = []
    stop = threading.Event()
    first_mutation = threading.Event()
    barrier = threading.Barrier(n_threads + 1)

    def query_loop():
        try:
            barrier.wait()
            for i in range(rounds):
                sql, expected = QUERIES[i % len(QUERIES)]
                res = db.execute(sql)
                assert res.rows == expected, (sql, res.rows)
            # The provably-raced phase: these rounds run strictly after
            # at least one epoch bump, while bumps keep coming.
            assert first_mutation.wait(timeout=30.0), "mutator never ran"
            for i in range(POST_MUTATION_ROUNDS):
                sql, expected = QUERIES[i % len(QUERIES)]
                res = db.execute(sql)
                assert res.rows == expected, (sql, res.rows)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    def mutation_loop():
        # Bump the epoch via a table the queries never touch: every
        # cached plan goes stale without changing any expected result.
        try:
            barrier.wait()
            while not stop.is_set():
                db.catalog.table("b").insert_rows([(999,)])
                db.execute("ANALYZE b")
                first_mutation.set()
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)
            first_mutation.set()  # never leave query threads waiting

    threads = [threading.Thread(target=query_loop)
               for __ in range(n_threads)]
    mutator = threading.Thread(target=mutation_loop)
    mutator.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    mutator.join()
    assert not errors, errors[0]
    assert first_mutation.is_set()
    return n_threads * (rounds + POST_MUTATION_ROUNDS)


class TestConcurrentExecution:
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_queries_with_concurrent_epoch_bumps(self, mode):
        db = _build_db(mode)
        _race_queries_against_mutator(db, N_THREADS, ROUNDS_PER_THREAD)
        stats = db.pipeline.plan_cache.stats()
        # The mutator provably raced the queries (the event-ordered
        # post-mutation rounds), so stale plans were really invalidated.
        assert stats["invalidations"] + stats["misses"] >= len(QUERIES)
        assert stats["hits"] + stats["misses"] > 0

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_heavy_epoch_bump_race(self, mode):
        db = _build_db(mode)
        total = _race_queries_against_mutator(
            db, HEAVY_THREADS, HEAVY_ROUNDS
        )
        stats = db.pipeline.plan_cache.stats()
        assert stats["hits"] + stats["misses"] == total

    def test_no_stale_result_after_mutation_barrier(self):
        """Sequential check the stress test can't do: after the mutation
        thread is quiesced, a fresh query must see the new data."""
        db = _build_db("vectorized")
        assert db.query("SELECT COUNT(*) FROM a")[0][0] == 400

        done = threading.Event()

        def mutate():
            db.catalog.table("a").insert_rows([(1000, 3, 1.0)])
            db.execute("ANALYZE a")
            done.set()

        t = threading.Thread(target=mutate)
        t.start()
        done.wait()
        t.join()
        assert db.query("SELECT COUNT(*) FROM a")[0][0] == 401


class TestPerTableIsolation:
    """The PR 7 contract: a writer hammering table ``b`` must never evict
    cached plans for queries that touch only table ``a``."""

    def _race_warm(self, db, n_threads, rounds):
        # Warm every a-only plan, then zero the counters so the assertion
        # window covers exactly the raced phase.
        for sql, __ in QUERIES:
            db.execute(sql)
        db.pipeline.plan_cache.reset_counters()
        return _race_queries_against_mutator(db, n_threads, rounds)

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_writer_on_b_never_evicts_plans_for_a(self, mode):
        db = _build_db(mode)
        total = self._race_warm(db, N_THREADS, ROUNDS_PER_THREAD)
        stats = db.pipeline.plan_cache.stats()
        # Every raced query ran against a warm plan: the writer on b bumps
        # only b's version, so a-scoped tokens never drift.
        assert stats["invalidations"] == 0, stats
        assert stats["misses"] == 0, stats
        assert stats["hits"] == total, stats

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_heavy_writer_isolation(self, mode):
        db = _build_db(mode)
        total = self._race_warm(db, HEAVY_THREADS, HEAVY_ROUNDS)
        stats = db.pipeline.plan_cache.stats()
        assert stats["invalidations"] == 0, stats
        assert stats["misses"] == 0, stats
        assert stats["hits"] == total, stats

    def test_global_scope_shows_the_old_behaviour(self):
        """Control: under ``cache_scope="global"`` the same writer *does*
        invalidate a-only plans — the contrast the benchmark measures."""
        db = _build_db("vectorized")
        gdb = Database(executor_mode="vectorized", cache_scope="global")
        gdb.execute("CREATE TABLE a (id INT, k INT, v FLOAT)")
        gdb.catalog.table("a").insert_rows(
            [(i, i % 7, float(i % 11)) for i in range(400)]
        )
        gdb.execute("CREATE TABLE b (id INT)")
        gdb.execute("ANALYZE")
        sql = QUERIES[0][0]
        gdb.execute(sql)
        gdb.pipeline.plan_cache.reset_counters()
        gdb.catalog.table("b").insert_rows([(1,)])
        gdb.execute(sql)
        assert gdb.pipeline.plan_cache.stats()["invalidations"] == 1
        # ... while the default per-table scope keeps the plan warm.
        db.execute(sql)
        db.pipeline.plan_cache.reset_counters()
        db.catalog.table("b").insert_rows([(1,)])
        db.execute(sql)
        assert db.pipeline.plan_cache.stats()["invalidations"] == 0
        assert db.pipeline.plan_cache.stats()["hits"] == 1


class TestPlanCacheHammer:
    """Raw PlanCache under concurrent get/put/clear from many threads."""

    def _hammer_counters(self, n_threads, n_ops):
        cache = PlanCache(capacity=8)
        lookups = []
        lock = threading.Lock()
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(wid):
            try:
                barrier.wait()
                local_lookups = 0
                for i in range(n_ops):
                    key = "q%d" % (i % 12)
                    epoch = (i // 50) % 3  # epochs drift => invalidations
                    if cache.get(key, epoch) is None:
                        cache.put(key, "plan-%d-%d" % (wid, i), epoch)
                    local_lookups += 1
                    if i % 97 == 0:
                        cache.clear()
                with lock:
                    lookups.append(local_lookups)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == sum(lookups)
        assert stats["invalidations"] >= 1
        assert len(cache) <= cache.capacity

    def test_counters_stay_consistent(self):
        self._hammer_counters(n_threads=8, n_ops=400)

    @pytest.mark.slow
    def test_counters_stay_consistent_heavy(self):
        self._hammer_counters(n_threads=16, n_ops=4000)

    def test_concurrent_epoch_churn_never_serves_stale(self):
        """Entries stored under one epoch must never be returned under
        another, no matter how the threads interleave."""
        cache = PlanCache(capacity=32)
        errors = []
        n_threads = 6
        barrier = threading.Barrier(n_threads)

        def worker(wid):
            try:
                barrier.wait()
                for i in range(300):
                    epoch = i % 5
                    value = ("v", epoch)
                    got = cache.get("shared", epoch)
                    if got is not None:
                        # The entry must have been stored under this epoch.
                        assert got[1] == epoch, got
                    else:
                        cache.put("shared", value, epoch)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
