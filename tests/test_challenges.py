"""Tests for the §2.3 challenge modules: validation, drift, convergence,
fault-tolerant training."""

import numpy as np
import pytest

from repro.ai4db.config.knob_tuning import GridSearchTuner, TuningResult
from repro.ai4db.optimization.cardinality import (
    LearnedCardinalityEstimator,
    QueryFeaturizer,
    generate_training_queries,
)
from repro.ai4db.validation import (
    ConvergenceGuard,
    DriftDetector,
    ValidatedEstimator,
)
from repro.common import ModelError
from repro.db4ai.training.fault_tolerance import (
    CheckpointableMLPTrainer,
    CheckpointedTrainer,
    CheckpointStore,
    SimulatedCrash,
)
from repro.engine import datagen
from repro.engine.catalog import Catalog
from repro.engine.knobs import KnobResponseSimulator, standard_workloads
from repro.engine.optimizer.cardinality import TraditionalEstimator


@pytest.fixture(scope="module")
def estimators():
    catalog = Catalog()
    datagen.make_correlated_table(catalog, "facts", n_rows=2500, n_values=40,
                                  correlation=0.9, seed=0)
    queries, cards = generate_training_queries(
        catalog, "facts", ["a", "b", "c"], n_queries=220, n_values=40, seed=1
    )
    featurizer = QueryFeaturizer(catalog, ["facts"], [])
    good = LearnedCardinalityEstimator(featurizer, epochs=60, seed=0)
    good.fit(queries[:160], cards[:160])
    broken = LearnedCardinalityEstimator(featurizer, epochs=1, seed=0)
    broken.fit(queries[:4], cards[:4])
    fallback = TraditionalEstimator(catalog)
    return catalog, good, broken, fallback, queries[160:], cards[160:]


class TestValidatedEstimator:
    def test_good_model_deploys(self, estimators):
        __, good, ___, fallback, val_q, val_c = estimators
        gate = ValidatedEstimator(good, fallback)
        report = gate.validate(val_q, val_c)
        assert report["deployed"]

    def test_broken_model_rejected(self, estimators):
        __, ___, broken, fallback, val_q, val_c = estimators
        gate = ValidatedEstimator(broken, fallback)
        report = gate.validate(val_q, val_c)
        assert not report["deployed"]

    def test_rejected_model_uses_fallback_estimates(self, estimators):
        __, ___, broken, fallback, val_q, val_c = estimators
        gate = ValidatedEstimator(broken, fallback)
        gate.validate(val_q, val_c)
        q = val_q[0]
        assert gate.estimate_subset(q, q.tables) == pytest.approx(
            fallback.estimate_subset(q, q.tables)
        )

    def test_disagreement_falls_back_per_query(self, estimators):
        __, good, ___, fallback, val_q, val_c = estimators
        gate = ValidatedEstimator(good, fallback, disagreement_threshold=1.0)
        gate.validate(val_q, val_c)
        # threshold 1.0 -> any disagreement falls back.
        q = val_q[1]
        assert gate.estimate_subset(q, q.tables) == pytest.approx(
            fallback.estimate_subset(q, q.tables)
        )

    def test_estimate_before_validate_raises(self, estimators):
        __, good, ___, fallback, val_q, ____ = estimators
        gate = ValidatedEstimator(good, fallback)
        with pytest.raises(ModelError):
            gate.estimate_subset(val_q[0], val_q[0].tables)

    def test_empty_validation_set_rejected(self, estimators):
        __, good, ___, fallback, ____, _____ = estimators
        with pytest.raises(ModelError):
            ValidatedEstimator(good, fallback).validate([], [])


class _StuckTuner:
    name = "stuck"

    def tune(self, simulator, workload, budget):
        x = simulator.default_vector()
        history = [simulator.throughput(x, workload) for __ in range(budget)]
        return TuningResult(x, max(history), history)


class TestConvergenceGuard:
    def test_rescues_stuck_learner(self):
        sim = KnobResponseSimulator(seed=7, noise=0.0)
        wl = standard_workloads()[0]
        stuck = _StuckTuner().tune(sim, wl, 50)
        guard = ConvergenceGuard(_StuckTuner(), GridSearchTuner(), patience=10)
        guarded = guard.tune(sim, wl, 50)
        assert guard.fell_back_
        assert guarded.best_throughput > stuck.best_throughput

    def test_keeps_converging_learner(self):
        sim = KnobResponseSimulator(seed=7, noise=0.0)
        wl = standard_workloads()[0]
        from repro.ai4db.config.knob_tuning import RandomSearchTuner

        guard = ConvergenceGuard(RandomSearchTuner(seed=0), _StuckTuner(),
                                 patience=15)
        guard.tune(sim, wl, 50)
        assert guard.fell_back_ is False

    def test_budget_smaller_than_patience(self):
        sim = KnobResponseSimulator(seed=7, noise=0.0)
        wl = standard_workloads()[0]
        guard = ConvergenceGuard(_StuckTuner(), GridSearchTuner(),
                                 patience=100)
        result = guard.tune(sim, wl, 10)
        assert result.evaluations <= 10


class TestDriftDetector:
    def _catalog(self):
        catalog = Catalog()
        datagen.make_correlated_table(catalog, "facts", n_rows=1000,
                                      n_values=50, seed=0)
        return catalog

    def test_no_drift_initially(self):
        catalog = self._catalog()
        detector = DriftDetector().fit(catalog, ["facts"])
        assert detector.check(catalog) == {}
        assert not detector.needs_retraining(catalog)

    def test_shift_detected(self):
        catalog = self._catalog()
        detector = DriftDetector(threshold=0.5).fit(catalog, ["facts"])
        table = catalog.table("facts")
        table.replace_column("a", table.column_array("a") + 100)
        drifted = detector.check(catalog)
        assert ("facts", "a") in drifted
        assert detector.needs_retraining(catalog)

    def test_small_jitter_ignored(self):
        catalog = self._catalog()
        detector = DriftDetector(threshold=0.5).fit(catalog, ["facts"])
        table = catalog.table("facts")
        table.replace_column("a", table.column_array("a") + 1)
        assert ("facts", "a") not in detector.check(catalog)

    def test_text_columns_skipped(self):
        catalog = Catalog()
        datagen.make_star_schema(catalog, n_customers=100, n_products=30,
                                 n_dates=20, n_sales=200, seed=0)
        detector = DriftDetector().fit(catalog, ["customer"])
        keys = {c for __, c in detector._fingerprints}
        assert "c_segment" not in keys
        assert "c_age" in keys


class TestFaultTolerantTraining:
    def _data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        return X, X[:, 0] + 2 * X[:, 1]

    def test_crash_resume_bit_identical(self):
        X, y = self._data()
        clean = CheckpointableMLPTrainer(X, y, seed=1)
        CheckpointedTrainer(clean, checkpoint_every=25).train(150)
        crashed = CheckpointableMLPTrainer(X, y, seed=1)
        harness = CheckpointedTrainer(crashed, checkpoint_every=25)
        with pytest.raises(SimulatedCrash):
            harness.train(150, crash_at=80)
        harness.recover_and_resume(150)
        assert harness.recoveries == 1
        assert np.array_equal(clean.predict(X), crashed.predict(X))

    def test_crash_loses_at_most_one_interval(self):
        X, y = self._data()
        trainer = CheckpointableMLPTrainer(X, y, seed=0)
        harness = CheckpointedTrainer(trainer, checkpoint_every=30)
        with pytest.raises(SimulatedCrash):
            harness.train(120, crash_at=70)
        # Crash at 70: last checkpoint at 60, so at most 30 steps lost.
        step, __ = harness.store.latest()
        assert 70 - step <= harness.lost_steps_bound

    def test_store_keeps_last_n(self):
        store = CheckpointStore(keep_last=2)
        for i in range(5):
            store.save(i, {"w": i})
        assert len(store) == 2
        step, state = store.latest()
        assert step == 4 and state["w"] == 4
        assert store.writes == 5

    def test_recover_without_checkpoint_raises(self):
        X, y = self._data()
        trainer = CheckpointableMLPTrainer(X, y, seed=0)
        harness = CheckpointedTrainer(trainer, store=CheckpointStore())
        with pytest.raises(ModelError):
            harness.recover_and_resume(10)

    def test_training_actually_learns(self):
        X, y = self._data()
        trainer = CheckpointableMLPTrainer(X, y, hidden=(32,), seed=0)
        CheckpointedTrainer(trainer, checkpoint_every=100).train(600)
        mse = float(np.mean((trainer.predict(X) - y) ** 2))
        assert mse < 0.2

    def test_state_roundtrip(self):
        X, y = self._data()
        trainer = CheckpointableMLPTrainer(X, y, seed=0)
        trainer.train_steps(10)
        state = trainer.get_state()
        pred_before = trainer.predict(X)
        trainer.train_steps(50)
        trainer.set_state(state)
        assert trainer.step == 10
        assert np.array_equal(trainer.predict(X), pred_before)

    def test_invalid_params(self):
        X, y = self._data()
        with pytest.raises(ModelError):
            CheckpointedTrainer(CheckpointableMLPTrainer(X, y),
                                checkpoint_every=0)
        with pytest.raises(ModelError):
            CheckpointStore(keep_last=0)
        with pytest.raises(ModelError):
            CheckpointableMLPTrainer(X, y[:5])
